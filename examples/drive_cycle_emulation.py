#!/usr/bin/env python3
"""Long-window emulation of the Sensor Node over realistic drive cycles.

Plays urban, NEDC-like and highway cruising-speed profiles against the node,
its scavenger and a supercapacitor buffer; reports how much of each drive the
monitoring system could cover, where the operating windows fall, and shows
the instant-power burst pattern of the paper's Fig. 3.

Run with::

    python examples/drive_cycle_emulation.py
"""

from __future__ import annotations

from repro import (
    NodeEmulator,
    PiezoelectricScavenger,
    TyreThermalModel,
    baseline_node,
    highway_cycle,
    nedc_like_cycle,
    reference_power_database,
    supercapacitor,
    urban_cycle,
)
from repro.core.operating_window import find_operating_windows, summarize_windows
from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.tables import render_table


def emulate_cycle(label, cycle):
    node = baseline_node()
    emulator = NodeEmulator(
        node,
        reference_power_database(),
        PiezoelectricScavenger(),
        supercapacitor(initial_fraction=0.2),
        thermal_model=TyreThermalModel(ambient_celsius=30.0),
    )
    result = emulator.emulate(cycle)
    windows = find_operating_windows(result)
    summary = summarize_windows(windows, result.duration_s)
    return {
        "cycle": label,
        "duration [s]": result.duration_s,
        "revolutions": result.revolutions,
        "monitored revolutions [%]": result.revolution_coverage * 100.0,
        "moving time covered [%]": result.moving_active_fraction * 100.0,
        "operating windows": summary.window_count,
        "longest window [s]": summary.longest_s,
        "brownouts": result.brownout_events,
    }


def main() -> None:
    rows = [
        emulate_cycle("urban stop-and-go", urban_cycle(repetitions=4)),
        emulate_cycle("NEDC-like composite", nedc_like_cycle()),
        emulate_cycle("highway", highway_cycle()),
    ]
    print(render_table(rows, title="Operating windows per drive cycle", float_digits=1))
    print()

    # Fig. 3 style view: instant power over half a second of steady cruise.
    node = baseline_node()
    emulator = NodeEmulator(
        node,
        reference_power_database(),
        PiezoelectricScavenger(),
        supercapacitor(),
    )
    trace = emulator.steady_state_trace(60.0, window_s=0.5)
    times, powers = trace.sample(0.5e-3)
    print(
        ascii_plot(
            times * 1e3,
            {"instant power [mW]": powers * 1e3},
            x_label="time [ms] (60 km/h cruise)",
            y_label="Sensor Node instant power",
            height=16,
        )
    )
    print()
    print(
        f"peak power {trace.peak_power_w() * 1e3:.2f} mW, "
        f"average {trace.average_power_w() * 1e6:.1f} uW, "
        f"sleep floor {trace.min_power_w() * 1e6:.1f} uW"
    )


if __name__ == "__main__":
    main()
