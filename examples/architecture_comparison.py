#!/usr/bin/env python3
"""Architecture comparison: legacy TPMS vs Cyber Tyre baseline vs optimized node.

Uses the dynamic-spreadsheet facade to compare custom architectures against
the same power characterization — the "evaluate custom architectures of the
chip in order to strike a balance between energy requirement and system
performance" use case — and sweeps the working conditions for the winner.

Run with::

    python examples/architecture_comparison.py
"""

from __future__ import annotations

from repro import (
    EnergyBalanceAnalysis,
    OperatingPoint,
    PiezoelectricScavenger,
    RadioConfig,
    Spreadsheet,
    baseline_node,
    legacy_tpms_node,
    optimized_node,
    reference_power_database,
)
from repro.reporting.tables import render_table


def main() -> None:
    database = reference_power_database()
    scavenger = PiezoelectricScavenger()
    baseline = baseline_node()

    # A custom what-if architecture built on the public API: keep the full
    # sensing capability but only report once every eight revolutions.
    sparse_reporting = baseline.with_radio(
        RadioConfig(tx_interval_revs=8, payload_bits=256)
    ).renamed("sparse-reporting")

    catalogue = [legacy_tpms_node(), optimized_node(), sparse_reporting]

    sheet = Spreadsheet(baseline, database)
    rows = sheet.compare_architectures(catalogue, point=OperatingPoint(speed_kmh=60.0))
    print(render_table(rows, title="Architecture comparison at 60 km/h", float_digits=1))
    print()

    break_even_rows = []
    for node in [baseline, *catalogue]:
        analysis = EnergyBalanceAnalysis(node, database, scavenger)
        break_even = analysis.break_even_speed_kmh()
        break_even_rows.append(
            {
                "architecture": node.name,
                "break-even [km/h]": break_even if break_even is not None else float("nan"),
                "samples per rev @60": node.samples_per_revolution(60.0),
                "tx every N rev": node.radio.tx_interval_revs,
            }
        )
    print(render_table(break_even_rows, title="Minimum activation speed per architecture", float_digits=1))
    print()

    # Working-condition sweep for the most energy-hungry architecture.
    sweep_rows = [
        {
            "temperature [degC]": row.value,
            "energy per rev [uJ]": row.energy_per_rev_j * 1e6,
            "leakage share [%]": row.static_fraction * 100.0,
        }
        for row in sheet.temperature_sweep([-40.0, 0.0, 25.0, 60.0, 85.0, 125.0])
    ]
    print(render_table(sweep_rows, title="Baseline node vs junction temperature (60 km/h)", float_digits=1))


if __name__ == "__main__":
    main()
