#!/usr/bin/env python3
"""Scavenger sizing and sensitivity: which knob buys the lowest activation speed.

Answers the designer's two follow-up questions after seeing Fig. 2:

* how large must the scavenging device be to activate the monitoring system
  at a given cruising speed (e.g. urban driving at 30 km/h)?
* which parameter — scavenger size, payload, transmission interval, ADC rate,
  MCU workload, temperature — moves the break-even speed the most?

Everything rides the batch paths: the harvest profile below is one
``energy_sweep_j`` call, and the sizing table shares one compiled power
table across all targets.

Run with::

    python examples/scavenger_sizing.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PiezoelectricScavenger,
    baseline_node,
    optimized_node,
    reference_power_database,
)
from repro.optimization.sensitivity import break_even_sensitivity
from repro.reporting.tables import render_table
from repro.scavenger.sizing import sizing_table


def main() -> None:
    database = reference_power_database()
    scavenger = PiezoelectricScavenger()

    # The harvest curve of Fig. 2's supply side: one vectorized sweep.
    speeds = np.arange(10.0, 130.0, 20.0)
    energies_uj = scavenger.energy_sweep_j(speeds) * 1e6
    print(
        render_table(
            [
                {"speed_kmh": float(v), "harvest_uj_per_rev": float(e)}
                for v, e in zip(speeds, energies_uj)
            ],
            title=f"Harvested energy per revolution — {scavenger.describe()}",
            float_digits=2,
        )
    )
    print()

    targets = [25.0, 30.0, 40.0, 50.0, 60.0]
    for node in (baseline_node(), optimized_node()):
        rows = sizing_table(node, database, scavenger, targets)
        print(
            render_table(
                rows,
                title=f"Scavenger size needed per activation-speed target — {node.name}",
                float_digits=2,
            )
        )
        print()

    entries = break_even_sensitivity(baseline_node(), database, scavenger)
    rows = [entry.as_row() for entry in entries]
    print(
        render_table(
            rows,
            title="Break-even sensitivity to a +10% change of each parameter (baseline node)",
            float_digits=2,
        )
    )
    print()
    strongest = entries[0]
    print(
        f"The strongest lever is '{strongest.parameter}': a +10% change moves the "
        f"minimum activation speed by {strongest.delta_kmh:+.1f} km/h "
        f"(elasticity {strongest.elasticity:+.2f})."
    )


if __name__ == "__main__":
    main()
