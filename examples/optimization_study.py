#!/usr/bin/env python3
"""Optimization study: the duty-cycle-driven technique selection in action.

Reproduces the methodological argument of Section II: look at each block's
power figures *and* its duty cycle within the wheel round, select the
optimization techniques accordingly, apply them to the power database,
re-estimate, and show how the break-even speed moves.  Also prints the
comparison against a naive dynamic-only policy.

Run with::

    python examples/optimization_study.py
"""

from __future__ import annotations

from repro import (
    EnergyBalanceAnalysis,
    EnergyEvaluator,
    OperatingPoint,
    PiezoelectricScavenger,
    baseline_node,
    reference_power_database,
)
from repro.optimization import SelectionPolicy, apply_assignments, select_techniques
from repro.reporting.tables import render_table

# A warm in-tyre working condition: this is where static power earns its
# place in the optimization plan.
POINT = OperatingPoint(speed_kmh=60.0, temperature_c=85.0)


def main() -> None:
    node = baseline_node()
    database = reference_power_database()
    scavenger = PiezoelectricScavenger()
    evaluator = EnergyEvaluator(node, database)

    duty = evaluator.duty_cycles(POINT)
    duty_rows = [
        {
            "block": entry.block,
            "duty cycle [%]": entry.duty_cycle * 100.0,
            "active power [uW]": entry.active_power_w * 1e6,
            "leakage share [%]": entry.static_energy_fraction * 100.0,
            "short duty cycle": entry.is_short_duty_cycle,
        }
        for entry in sorted(duty.entries, key=lambda e: e.total_energy_j, reverse=True)
    ]
    print(render_table(duty_rows, title=f"Per-block duty cycles at {POINT.describe()}", float_digits=1))
    print()

    assignments = select_techniques(duty, database=database)
    outcome = apply_assignments(node, database, assignments, point=POINT)
    print(render_table(outcome.as_rows(), title="Selected techniques (duty-cycle aware)"))
    print()

    naive_outcome = apply_assignments(
        node,
        database,
        select_techniques(duty, policy=SelectionPolicy(), gateable_blocks=frozenset(),
                          database=database),
        point=POINT,
    )

    balance_before = EnergyBalanceAnalysis(node, database, scavenger)
    balance_after = EnergyBalanceAnalysis(node, outcome.database, scavenger)
    rows = [
        {
            "design point": "as characterized",
            "energy per rev [uJ]": outcome.energy_before_j * 1e6,
            "break-even [km/h]": balance_before.break_even_speed_kmh(),
        },
        {
            "design point": "dynamic-only optimization",
            "energy per rev [uJ]": naive_outcome.energy_after_j * 1e6,
            "break-even [km/h]": EnergyBalanceAnalysis(
                node, naive_outcome.database, scavenger
            ).break_even_speed_kmh(),
        },
        {
            "design point": "duty-cycle-aware optimization",
            "energy per rev [uJ]": outcome.energy_after_j * 1e6,
            "break-even [km/h]": balance_after.break_even_speed_kmh(),
        },
    ]
    print(render_table(rows, title="Energy and minimum activation speed", float_digits=1))


if __name__ == "__main__":
    main()
