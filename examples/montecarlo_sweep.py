"""Monte-Carlo workload sweep over the scenario grid.

A nominal operating point tells you what the node draws at exactly 60 km/h
and 25 degC; a real drive is a distribution.  This example samples seeded
(speed, temperature, activity, phase-pattern) populations around each grid
point and pushes them through the workload-vectorized batch engine
(``EnergyEvaluator.schedule_energy_sweep``), so thousands of revolution
energies evaluate in a handful of array expressions.

Run with::

    PYTHONPATH=src python examples/montecarlo_sweep.py

or, equivalently, through the CLI front door::

    tpms-energy run --scenario examples/scenarios/quickstart.json \\
        --kind montecarlo --mc-samples 2000 --workers 4 --set temperature=-20,25,85
"""

from __future__ import annotations

from repro.scenario import MonteCarloConfig, ScenarioSpec, Study


def main() -> None:
    spec = ScenarioSpec(
        name="montecarlo-sweep",
        architecture="baseline",
        scavenger="piezoelectric",
        temperature_c=25.0,
        speed_kmh=60.0,
    )
    config = MonteCarloConfig(
        samples=2000,
        seed=2011,
        speed_rel_std=0.2,
        temperature_std_c=10.0,
        activity_range=(0.5, 1.0),
    )
    study = Study(
        spec,
        axes={
            "temperature": [-20.0, 25.0, 85.0],
            "architecture": ["baseline", "optimized"],
        },
        montecarlo=config,
    )
    # workers=4 runs grid points on a thread pool; rows are identical (order
    # and values) to a sequential run because every random stream is derived
    # from (seed, scenario), never from execution order.
    result = study.run("montecarlo", workers=4)
    print(result.as_table(title="Monte-Carlo workload sweep", float_digits=2))
    print(
        f"\n{result.metadata['grid_points']} grid points x {config.samples} samples "
        f"in {result.metadata['wall_time_s']:.2f} s "
        f"({result.metadata['workers']} workers, "
        f"{result.metadata['evaluator_builds']} evaluator builds)"
    )

    # The p95 column is the sizing figure: a scavenger/storage pairing that
    # covers the 95th percentile revolution keeps the node alive through
    # workload bursts, not just on the average round.
    worst = max(result.rows, key=lambda row: row["p95_uj_per_rev"])
    print(
        f"sizing case: {worst['architecture']} at {worst['temperature']:g} degC "
        f"-> p95 {worst['p95_uj_per_rev']:.1f} uJ/rev "
        f"(mean {worst['mean_uj_per_rev']:.1f} uJ/rev)"
    )


if __name__ == "__main__":
    main()
