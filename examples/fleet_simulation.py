#!/usr/bin/env python3
"""Fleet simulation: does the TPMS survive across a whole vehicle population?

The paper answers "does one node survive one drive cycle?"; a fleet spec
scales the question to a population.  Every vehicle derives from one base
scenario through named per-vehicle distributions — log-normal drive-style
speed scales, fleet-correlated ambient temperature, a categorical drive-cycle
mix, Gaussian manufacturing tolerance on the scavenger size and storage
capacity — and the :class:`~repro.fleet.FleetRunner` shares compiled power
tables, materialized cycles and quantized energy bins across all of them
(one cross-vehicle sweep before emulation), so hundreds of vehicles emulate
in the time a handful used to take.

The same simulation runs from the shell::

    tpms-energy fleet --fleet examples/scenarios/fleet.json --workers 4
    tpms-energy fleet --scenario examples/scenarios/quickstart.json --vehicles 500

Run with::

    python examples/fleet_simulation.py
"""

from __future__ import annotations

from pathlib import Path

from repro.fleet import FleetRunner, load_fleet

FLEET_DOCUMENT = Path(__file__).parent / "scenarios" / "fleet.json"


def main() -> None:
    fleet = load_fleet(FLEET_DOCUMENT)
    print(f"fleet {fleet.name}: {fleet.describe()}\n")

    result = FleetRunner(fleet, workers=4).run()

    print(result.as_table())
    print()
    # The survival curve: what fraction of the fleet is still operational at
    # each point of its (normalized) drive.
    for row in result.survival[::10]:
        bar = "#" * int(row["surviving_pct"] / 2.5)
        print(f"  t={row['time_pct']:5.1f}%  {row['surviving_pct']:5.1f}%  {bar}")

    metadata = result.metadata
    print(
        f"\n{metadata['vehicles']} vehicles in {metadata['cohorts']} cohorts "
        f"({metadata['groups']} evaluator group(s)); "
        f"{metadata['shared_energy_bins']} energy bins swept once; "
        f"{metadata['wall_time_s']:.2f} s wall time"
    )

    # Aggregates ride the ordinary StudyResult export path.
    study_result = result.to_study_result()
    print(f"\nexportable as StudyResult: kind={study_result.kind!r}, "
          f"{list(study_result.rows[0])[:4]}...")


if __name__ == "__main__":
    main()
