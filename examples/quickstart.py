#!/usr/bin/env python3
"""Quickstart: run the full energy analysis flow on the baseline Sensor Node.

This is the five-minute tour of the toolkit, driven through the declarative
scenario API: describe the experiment as a :class:`~repro.scenario.ScenarioSpec`
(architecture, power characterization, scavenger, storage, drive cycle,
environment — all by registry name), build the Fig. 1 flow from it and print
the headline numbers.  The same spec, saved as JSON
(``examples/scenarios/quickstart.json``), reproduces this output through::

    tpms-energy run --scenario examples/scenarios/quickstart.json

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.report import render_flow_headlines
from repro.scenario import ScenarioSpec
from repro import EnergyAnalysisFlow


def quickstart_spec() -> ScenarioSpec:
    """The quickstart experiment as a declarative scenario."""
    return ScenarioSpec(
        name="quickstart",
        architecture="baseline",
        power_database="reference",
        scavenger="piezoelectric",
        storage="supercapacitor",
        drive_cycle={"name": "urban", "params": {"repetitions": 2}},
        temperature_c=25.0,
        speed_kmh=60.0,
    )


def main() -> None:
    spec = quickstart_spec()
    flow = EnergyAnalysisFlow.from_spec(spec)

    print(flow.node.describe())
    print()
    print(flow.scavenger.describe())
    print()

    report = flow.run()
    print(render_flow_headlines(report))


if __name__ == "__main__":
    main()
