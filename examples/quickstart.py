#!/usr/bin/env python3
"""Quickstart: run the full energy analysis flow on the baseline Sensor Node.

This is the five-minute tour of the toolkit: build the reference
architecture, load the power characterization, pick a scavenger and a storage
element, run the Fig. 1 flow (estimate, evaluate, optimize, re-estimate,
integrate the source model, emulate) and print the headline numbers.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EnergyAnalysisFlow,
    PiezoelectricScavenger,
    baseline_node,
    reference_power_database,
    supercapacitor,
    urban_cycle,
)
from repro.reporting.tables import render_table


def main() -> None:
    node = baseline_node()
    database = reference_power_database()
    scavenger = PiezoelectricScavenger()

    print(node.describe())
    print()
    print(scavenger.describe())
    print()

    flow = EnergyAnalysisFlow(node, database, scavenger, storage=supercapacitor())
    report = flow.run(drive_cycle=urban_cycle(repetitions=2))

    print("Per-block energy over one wheel round at 60 km/h")
    print(render_table(report.energy_report.as_rows(), float_digits=2))
    print()

    print("Selected optimization techniques")
    print(render_table(report.optimization.as_rows()))
    print()

    summary_rows = [{"figure": key, "value": value} for key, value in report.summary().items()]
    print(render_table(summary_rows, title="Flow summary", float_digits=2))


if __name__ == "__main__":
    main()
