#!/usr/bin/env python3
"""Grid study: sweep temperature x architecture with one scenario document.

The declarative API's main payoff: one :class:`~repro.scenario.ScenarioSpec`
plus axis overrides expands into a scenario grid, and the
:class:`~repro.scenario.Study` runner executes the energy-balance analysis
over every point on the vectorized batch path — grid points sharing an
architecture and power database reuse one compiled power table.

The same study runs from the shell::

    tpms-energy run --scenario examples/scenarios/quickstart.json \\
        --set temperature=-20,25,85 --set architecture=baseline,optimized

Run with::

    python examples/scenario_grid.py
"""

from __future__ import annotations

from repro.scenario import ScenarioSpec, Study


def main() -> None:
    spec = ScenarioSpec(name="winter-vs-summer")
    study = Study(
        spec,
        axes={
            "temperature": [-20.0, 25.0, 85.0],
            "architecture": ["baseline", "optimized"],
        },
    )

    result = study.run("balance")
    print(result.as_table(title="Break-even speed across the grid"))
    print(
        f"\n{len(result)} scenarios, "
        f"{result.metadata['evaluator_builds']} evaluator builds, "
        f"{result.metadata['evaluator_cache_hits']} cache hits"
    )

    # The emulation kind reuses the same grid; the spec just needs a cycle.
    emulation = Study(
        spec.with_axes(cycle={"name": "urban", "params": {"repetitions": 2}}),
        axes={"architecture": ["baseline", "optimized"]},
    ).run("emulate")
    print()
    print(emulation.as_table(title="Urban-cycle emulation per architecture"))


if __name__ == "__main__":
    main()
