"""Setuptools shim.

The project is fully described in ``pyproject.toml``; this file only exists
so that environments without the ``wheel`` package (where PEP 660 editable
installs are unavailable) can still install the library with
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
