"""repro — energy analysis methods and tools for tyre monitoring systems.

A reproduction of A. Bonanno, A. Bocca, M. Sabatini, *"Energy Analysis
Methods and Tools for Modeling and Optimizing Monitoring Tyre Systems"*,
DATE 2011.  The library models a self-powered in-tyre Sensor Node (sensors,
ADC, data-computing system, memories, radio, power management), its energy
scavenger and storage, and implements the paper's analysis flow: per-block
power estimation, duty-cycle-aware energy evaluation over the wheel round,
optimization-technique selection, energy-balance analysis versus cruising
speed (break-even point) and long-window emulation against drive cycles.

Quickstart — the declarative scenario API is the front door::

    from repro import EnergyAnalysisFlow, ScenarioSpec, Study

    spec = ScenarioSpec(architecture="baseline", drive_cycle="nedc")
    report = EnergyAnalysisFlow.from_spec(spec).run()
    print(report.summary())

    grid = Study(spec, axes={"temperature": [-20.0, 25.0, 85.0]})
    print(grid.run("balance").as_table())

The objects behind the registries remain directly constructible::

    from repro import (
        EnergyAnalysisFlow, baseline_node, reference_power_database,
        PiezoelectricScavenger, supercapacitor, nedc_like_cycle,
    )

    flow = EnergyAnalysisFlow(
        node=baseline_node(),
        database=reference_power_database(),
        scavenger=PiezoelectricScavenger(),
        storage=supercapacitor(),
    )
    report = flow.run(drive_cycle=nedc_like_cycle())
    print(report.summary())
"""

from repro.blocks import (
    AdcConfig,
    McuConfig,
    MemoryConfig,
    PmuConfig,
    RadioConfig,
    SensorNode,
    SensorSuiteConfig,
    baseline_node,
    legacy_tpms_node,
    optimized_node,
)
from repro.conditions import (
    ConstantTemperature,
    OperatingPoint,
    ProcessCorner,
    ProcessVariation,
    SupplyCondition,
    SupplyRail,
    TyreThermalModel,
)
from repro.core import (
    EnergyAnalysisFlow,
    EnergyBalanceAnalysis,
    EnergyBalanceCurve,
    EnergyEvaluator,
    EmulationResult,
    FlowReport,
    NodeEmulator,
    PowerTrace,
    RevolutionEnergyReport,
    Spreadsheet,
    find_operating_windows,
)
from repro.optimization import (
    SelectionPolicy,
    apply_assignments,
    default_technique_catalogue,
    select_techniques,
)
from repro.fleet import (
    DistributionSpec,
    FleetResult,
    FleetRunner,
    FleetSpec,
    load_fleet,
    run_fleet,
)
from repro.power import PowerDatabase, PowerEntry, reference_power_database
from repro.scenario import (
    ComponentRef,
    ScenarioSpec,
    Study,
    StudyResult,
    load_scenario,
    run_study,
)
from repro.scavenger import (
    ElectromagneticScavenger,
    ElectrostaticScavenger,
    PiezoelectricScavenger,
    StorageElement,
    TabulatedScavenger,
    supercapacitor,
    thin_film_battery,
)
from repro.timing import RevolutionSchedule, duty_cycle_report
from repro.vehicle import (
    DriveCycle,
    Tyre,
    Wheel,
    constant_cruise,
    highway_cycle,
    nedc_like_cycle,
    tyre_from_etrto,
    urban_cycle,
)

__version__ = "1.0.0"

__all__ = [
    # architecture
    "SensorNode",
    "SensorSuiteConfig",
    "AdcConfig",
    "McuConfig",
    "MemoryConfig",
    "RadioConfig",
    "PmuConfig",
    "baseline_node",
    "optimized_node",
    "legacy_tpms_node",
    # conditions
    "OperatingPoint",
    "ConstantTemperature",
    "TyreThermalModel",
    "SupplyRail",
    "SupplyCondition",
    "ProcessCorner",
    "ProcessVariation",
    # vehicle
    "Tyre",
    "tyre_from_etrto",
    "Wheel",
    "DriveCycle",
    "constant_cruise",
    "urban_cycle",
    "highway_cycle",
    "nedc_like_cycle",
    # power
    "PowerDatabase",
    "PowerEntry",
    "reference_power_database",
    # timing
    "RevolutionSchedule",
    "duty_cycle_report",
    # scavenging
    "PiezoelectricScavenger",
    "ElectromagneticScavenger",
    "ElectrostaticScavenger",
    "TabulatedScavenger",
    "StorageElement",
    "supercapacitor",
    "thin_film_battery",
    # core methodology
    "EnergyEvaluator",
    "RevolutionEnergyReport",
    "EnergyBalanceAnalysis",
    "EnergyBalanceCurve",
    "NodeEmulator",
    "EmulationResult",
    "PowerTrace",
    "find_operating_windows",
    "Spreadsheet",
    "EnergyAnalysisFlow",
    "FlowReport",
    # optimization
    "SelectionPolicy",
    "select_techniques",
    "apply_assignments",
    "default_technique_catalogue",
    # scenario front door
    "ScenarioSpec",
    "ComponentRef",
    "load_scenario",
    "Study",
    "StudyResult",
    "run_study",
    # fleet
    "FleetSpec",
    "FleetRunner",
    "FleetResult",
    "DistributionSpec",
    "load_fleet",
    "run_fleet",
    "__version__",
]
