"""Plain-text report builder for a full analysis run.

The original tools reported through spreadsheet charts; the library
equivalent is a self-contained text report that a designer can archive next
to the characterization data.  :func:`render_flow_report` turns a
:class:`~repro.core.flow.FlowReport` into that document.
"""

from __future__ import annotations

from repro.core.flow import FlowReport
from repro.errors import AnalysisError
from repro.reporting.tables import render_table
from repro.units import format_energy, format_power

_RULE = "=" * 78
_SUBRULE = "-" * 78


def _section(title: str) -> list[str]:
    return ["", _RULE, title, _RULE]


def render_flow_report(report: FlowReport, max_power_rows: int = 40) -> str:
    """Render a complete analysis report as plain text.

    Args:
        report: the artifact bundle produced by
            :meth:`~repro.core.flow.EnergyAnalysisFlow.run`.
        max_power_rows: cap on the number of power-table rows included (the
            full table is available programmatically; reports stay readable).

    Raises:
        AnalysisError: if the report holds no evaluation artifacts at all.
    """
    if report.energy_report is None:
        raise AnalysisError("the flow report holds no evaluation results to render")

    lines: list[str] = []
    lines.append(_RULE)
    lines.append(f"ENERGY ANALYSIS REPORT — architecture {report.node_name!r}")
    lines.append(f"working condition: {report.point.describe()}")
    lines.append(_RULE)

    # -- step 1: power estimation ------------------------------------------------
    lines.extend(_section("Step 1 — per-block power estimation (dynamic spreadsheet)"))
    power_rows = report.power_table[:max_power_rows]
    if power_rows:
        lines.append(
            render_table(
                power_rows,
                columns=["block", "mode", "dynamic_uw", "static_uw", "total_uw"],
                float_digits=2,
            )
        )
        if len(report.power_table) > max_power_rows:
            lines.append(
                f"... {len(report.power_table) - max_power_rows} further rows omitted"
            )

    # -- step 2: energy evaluation -----------------------------------------------
    lines.extend(_section("Step 2 — energy per wheel round and duty cycles"))
    energy = report.energy_report
    lines.append(
        f"total energy per wheel round: {format_energy(energy.total_energy_j)} "
        f"(dynamic {format_energy(energy.dynamic_energy_j)}, "
        f"static {format_energy(energy.static_energy_j)})"
    )
    lines.append(f"average power while rolling: {format_power(energy.average_power_w)}")
    lines.append("")
    lines.append(render_table(energy.as_rows(), float_digits=2,
                              title="Per-block energy (average wheel round)"))
    if report.duty_cycles is not None:
        duty_rows = [
            {
                "block": entry.block,
                "duty_cycle_pct": entry.duty_cycle * 100.0,
                "static_share_pct": entry.static_energy_fraction * 100.0,
                "short_duty_cycle": entry.is_short_duty_cycle,
            }
            for entry in sorted(
                report.duty_cycles.entries, key=lambda e: e.total_energy_j, reverse=True
            )
        ]
        lines.append("")
        lines.append(render_table(duty_rows, float_digits=1,
                                  title="Per-block duty cycles within the wheel round"))

    # -- steps 3/4: optimization and re-estimation --------------------------------
    if report.optimization is not None:
        lines.extend(_section("Steps 3-4 — technique selection and re-estimation"))
        if report.optimization.assignments:
            lines.append(render_table(report.optimization.as_rows(),
                                      title="Applied techniques"))
        lines.append("")
        lines.append(
            "energy per wheel round: "
            f"{format_energy(report.optimization.energy_before_j)} -> "
            f"{format_energy(report.optimization.energy_after_j)} "
            f"({report.optimization.saving_fraction * 100.0:.1f}% saving)"
        )
        if report.optimization.skipped:
            lines.append("")
            lines.append("skipped assignments:")
            for assignment, reason in report.optimization.skipped:
                lines.append(f"  - {assignment.block}/{assignment.technique.name}: {reason}")

    # -- step 5: energy-balance integration ---------------------------------------
    if report.balance_before is not None:
        lines.extend(_section("Step 5 — energy balance vs cruising speed (Fig. 2)"))
        before = report.break_even_before_kmh
        lines.append(
            "break-even speed (as characterized): "
            + (f"{before:.1f} km/h" if before is not None else "not reached")
        )
        if report.balance_after is not None:
            after = report.break_even_after_kmh
            lines.append(
                "break-even speed (after optimization): "
                + (f"{after:.1f} km/h" if after is not None else "not reached")
            )
        deficit = report.balance_before.deficit_region_kmh()
        if deficit is not None:
            lines.append(
                f"deficit region (sampled): {deficit[0]:.0f} - {deficit[1]:.0f} km/h"
            )

    # -- step 6: emulation ---------------------------------------------------------
    if report.emulation is not None:
        lines.extend(_section("Step 6 — long-window emulation and operating windows"))
        summary_rows = [
            {"figure": key, "value": value}
            for key, value in report.emulation.summary().items()
        ]
        lines.append(render_table(summary_rows, float_digits=2))
        if report.window_summary is not None:
            lines.append("")
            lines.append(
                f"operating windows: {report.window_summary.window_count} "
                f"covering {report.window_summary.covered_s:.0f} s "
                f"({report.window_summary.coverage_fraction * 100.0:.1f}% of the window), "
                f"longest {report.window_summary.longest_s:.0f} s"
            )

    lines.append("")
    lines.append(_SUBRULE)
    lines.append("end of report")
    return "\n".join(lines)


def render_flow_headlines(report: FlowReport) -> str:
    """The quickstart-style headline view of a flow run.

    Three sections: the per-block energy table at the evaluation point, the
    selected optimization techniques, and the scalar flow summary.  Shared by
    ``examples/quickstart.py`` and ``tpms-energy run`` so a scenario document
    and the hand-wired quickstart produce byte-identical tables.

    Raises:
        AnalysisError: if the report holds no evaluation artifacts.
    """
    if report.energy_report is None:
        raise AnalysisError("the flow report holds no evaluation results to render")
    lines: list[str] = []
    lines.append(
        "Per-block energy over one wheel round at "
        f"{report.point.speed_kmh:.0f} km/h"
    )
    lines.append(render_table(report.energy_report.as_rows(), float_digits=2))
    lines.append("")
    if report.optimization is not None:
        lines.append("Selected optimization techniques")
        lines.append(render_table(report.optimization.as_rows()))
        lines.append("")
    summary_rows = [
        {"figure": key, "value": value} for key, value in report.summary().items()
    ]
    lines.append(render_table(summary_rows, title="Flow summary", float_digits=2))
    return "\n".join(lines)
