"""Identification of the operating windows of the monitoring system.

The last step of the paper's flow is *"useful for identifying operating
windows of the conceived monitoring system"*: the stretches of a drive over
which the energy balance allows the node to stay active.  This module
extracts those windows from an emulation result and summarizes them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.emulator import EmulationResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class OperatingWindow:
    """One contiguous interval with the node operational."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise AnalysisError("an operating window must have positive duration")

    @property
    def duration_s(self) -> float:
        """Duration of the window."""
        return self.end_s - self.start_s


def find_operating_windows(
    result: EmulationResult, minimum_duration_s: float = 0.0
) -> list[OperatingWindow]:
    """Extract the operating windows from an emulation result.

    Consecutive recorded samples with ``node_active`` true are merged into
    windows; windows shorter than ``minimum_duration_s`` are dropped.

    Args:
        result: the emulation to analyse (must contain recorded samples).
        minimum_duration_s: discard windows shorter than this.
    """
    if minimum_duration_s < 0.0:
        raise AnalysisError("minimum duration must be non-negative")
    if result.sample_count == 0:
        raise AnalysisError("the emulation result holds no recorded samples")

    arrays = result.sample_arrays()
    times = arrays["time_s"]
    active = arrays["node_active"]

    # Vectorized run-length extraction over the (columnar) activity log: a
    # window starts at the first sample of each active run and ends at the
    # first inactive sample after it; a run still open at the last sample is
    # closed at the cycle end.
    edges = np.diff(active.astype(np.int8))
    start_indices = np.flatnonzero(edges == 1) + 1
    end_indices = np.flatnonzero(edges == -1) + 1
    if active[0]:
        start_indices = np.concatenate(([0], start_indices))

    starts = times[start_indices]
    ends = times[end_indices]
    if len(start_indices) > len(end_indices):
        tail_end = float(max(times[-1], result.duration_s))
        ends = np.concatenate((ends, [tail_end]))

    durations = ends - starts
    keep = (durations >= minimum_duration_s) & (durations > 0.0)
    return [
        OperatingWindow(start_s=float(start), end_s=float(end))
        for start, end in zip(starts[keep], ends[keep])
    ]


@dataclass(frozen=True)
class OperatingWindowSummary:
    """Aggregate statistics over the operating windows of one emulation."""

    window_count: int
    covered_s: float
    longest_s: float
    shortest_s: float
    mean_s: float
    coverage_fraction: float

    @classmethod
    def empty(cls) -> "OperatingWindowSummary":
        """Summary of an emulation with no operating windows."""
        return cls(
            window_count=0,
            covered_s=0.0,
            longest_s=0.0,
            shortest_s=0.0,
            mean_s=0.0,
            coverage_fraction=0.0,
        )


def summarize_windows(
    windows: list[OperatingWindow], total_duration_s: float
) -> OperatingWindowSummary:
    """Aggregate statistics for a list of operating windows."""
    if total_duration_s <= 0.0:
        raise AnalysisError("total duration must be positive")
    if not windows:
        return OperatingWindowSummary.empty()
    durations = np.array([w.duration_s for w in windows])
    covered = float(durations.sum())
    return OperatingWindowSummary(
        window_count=len(windows),
        covered_s=covered,
        longest_s=float(durations.max()),
        shortest_s=float(durations.min()),
        mean_s=float(durations.mean()),
        coverage_fraction=min(1.0, covered / total_duration_s),
    )
