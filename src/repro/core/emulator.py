"""Long-window emulation of the Sensor Node against a drive cycle.

The paper's final flow step: *"integrate the model of the energy source with
the estimation of total load current and emulate the energy balance for a
long timing window"*.  The emulator plays a cruising-speed profile revolution
by revolution, charges the storage element with the scavenger output,
discharges it with the node load, tracks the in-tyre temperature, and records
whether the monitoring system could stay active — which is exactly the
information needed to identify the operating windows and to plot the instant
power of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.conditions.temperature import TyreThermalModel
from repro.core.evaluator import EnergyEvaluator
from repro.core.trace import PowerTrace
from repro.errors import EmulationError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger
from repro.scavenger.storage import StorageElement
from repro.timing.wheel_round import IdleInterval, WheelRound, iter_wheel_rounds
from repro.vehicle.drive_cycle import DriveCycle

#: Quantization used by the revolution-energy cache: speeds within 0.5 km/h
#: and temperatures within 1 degC share a cache entry.  The resulting energy
#: error is well below the modelling uncertainty and makes hour-long cycles
#: emulate in well under a second.
_SPEED_QUANTUM_KMH = 0.5
_TEMPERATURE_QUANTUM_C = 1.0


@dataclass(frozen=True)
class EmulationSample:
    """One recorded sample of the emulation state."""

    time_s: float
    speed_kmh: float
    temperature_c: float
    state_of_charge: float
    node_active: bool


@dataclass
class EmulationResult:
    """Outcome of one long-window emulation."""

    node_name: str
    cycle_name: str
    duration_s: float
    samples: list[EmulationSample] = field(default_factory=list)
    harvested_j: float = 0.0
    consumed_j: float = 0.0
    discarded_j: float = 0.0
    revolutions: int = 0
    active_revolutions: int = 0
    brownout_events: int = 0
    moving_time_s: float = 0.0
    active_time_s: float = 0.0
    trace: PowerTrace | None = None

    # -- derived figures -----------------------------------------------------------

    @property
    def net_energy_j(self) -> float:
        """Harvested minus consumed energy over the window."""
        return self.harvested_j - self.consumed_j

    @property
    def active_fraction(self) -> float:
        """Fraction of the whole window with the node operational."""
        if self.duration_s == 0.0:
            return 0.0
        return self.active_time_s / self.duration_s

    @property
    def moving_active_fraction(self) -> float:
        """Fraction of the *moving* time with the node operational.

        This is the figure of merit the paper cares about: stationary time is
        lost by construction (nothing to harvest, nothing to sense), so the
        quality of an architecture/scavenger pairing shows in how much of the
        rolling time the monitoring system covers.
        """
        if self.moving_time_s == 0.0:
            return 0.0
        return min(1.0, self.active_time_s / self.moving_time_s)

    @property
    def revolution_coverage(self) -> float:
        """Fraction of wheel revolutions that were actually monitored."""
        if self.revolutions == 0:
            return 0.0
        return self.active_revolutions / self.revolutions

    def sample_arrays(self) -> dict[str, np.ndarray]:
        """Recorded samples as parallel numpy arrays for plotting/export."""
        return {
            "time_s": np.array([s.time_s for s in self.samples]),
            "speed_kmh": np.array([s.speed_kmh for s in self.samples]),
            "temperature_c": np.array([s.temperature_c for s in self.samples]),
            "state_of_charge": np.array([s.state_of_charge for s in self.samples]),
            "node_active": np.array([s.node_active for s in self.samples], dtype=bool),
        }

    def summary(self) -> dict[str, float]:
        """Scalar summary used by reports and benches."""
        return {
            "duration_s": self.duration_s,
            "harvested_mj": self.harvested_j * 1e3,
            "consumed_mj": self.consumed_j * 1e3,
            "net_mj": self.net_energy_j * 1e3,
            "discarded_mj": self.discarded_j * 1e3,
            "revolutions": float(self.revolutions),
            "revolution_coverage_pct": 100.0 * self.revolution_coverage,
            "active_fraction_pct": 100.0 * self.active_fraction,
            "moving_active_fraction_pct": 100.0 * self.moving_active_fraction,
            "brownout_events": float(self.brownout_events),
        }


class NodeEmulator:
    """Plays a drive cycle against a node, a scavenger and a storage element.

    Args:
        node: the Sensor Node architecture.
        database: power characterization (re-targeted to the node's clocks).
        scavenger: energy source model.
        storage: storage element buffering harvest and load; the emulator
            resets it at the start of every run.
        base_point: template operating point providing the supply and process
            conditions; speed and temperature are overridden while emulating.
        thermal_model: optional in-tyre thermal model driven by the emulated
            speed; when omitted, the base point's temperature is used
            throughout.
    """

    def __init__(
        self,
        node: SensorNode,
        database: PowerDatabase,
        scavenger: EnergyScavenger,
        storage: StorageElement,
        base_point: OperatingPoint | None = None,
        thermal_model: TyreThermalModel | None = None,
    ) -> None:
        self.node = node
        self.evaluator = EnergyEvaluator(node, database)
        self.scavenger = scavenger
        self.storage = storage
        self.base_point = base_point or OperatingPoint()
        self.thermal_model = thermal_model
        self._energy_cache: dict[tuple, tuple[float, tuple[tuple[str, float, float], ...]]] = {}

    # -- internal helpers -------------------------------------------------------------

    def _operating_point(self, speed_kmh: float, temperature_c: float) -> OperatingPoint:
        return self.base_point.at_speed(speed_kmh).at_temperature(temperature_c)

    def _revolution_energy(
        self, unit: WheelRound, temperature_c: float
    ) -> tuple[float, tuple[tuple[str, float, float], ...]]:
        """Energy of one revolution plus its per-phase (label, duration, power) list.

        Cached on quantized speed/temperature and on the conditional-phase
        pattern of the revolution index, because those five values fully
        determine the schedule energy.
        """
        transmits = self.node.radio.transmits(unit.index)
        refreshes = self.node.sensors.refreshes_slow_sensors(unit.index)
        writes_nvm = self.node.memory.writes_nvm(unit.index)
        key = (
            round(unit.speed_kmh / _SPEED_QUANTUM_KMH),
            round(temperature_c / _TEMPERATURE_QUANTUM_C),
            transmits,
            refreshes,
            writes_nvm,
        )
        cached = self._energy_cache.get(key)
        if cached is not None:
            return cached

        point = self._operating_point(unit.speed_kmh, temperature_c)
        # Reconstruct a representative revolution index with the same pattern.
        report = self.evaluator.schedule_report(
            self.node.schedule_for(unit.speed_kmh, unit.index), point
        )
        phases = tuple(
            (phase.phase, phase.duration_s, phase.average_power_w)
            for phase in report.phases
        )
        value = (report.total_energy_j, phases)
        self._energy_cache[key] = value
        return value

    def _record_trace_revolution(
        self,
        trace: PowerTrace,
        unit: WheelRound,
        phases: tuple[tuple[str, float, float], ...],
        active: bool,
        sleep_power_w: float,
    ) -> None:
        if not active:
            trace.append(unit.start_s, unit.period_s, 0.0, "inactive")
            return
        cursor = unit.start_s
        for label, duration, power in phases:
            duration = min(duration, unit.end_s - cursor)
            if duration <= 0.0:
                break
            trace.append(cursor, duration, power, label)
            cursor += duration
        if cursor < unit.end_s - 1e-12:
            trace.append(cursor, unit.end_s - cursor, sleep_power_w, "sleep")

    # -- main entry point ----------------------------------------------------------------

    def emulate(
        self,
        cycle: DriveCycle,
        record_interval_s: float = 1.0,
        trace_window: tuple[float, float] | None = None,
        idle_step_s: float = 1.0,
    ) -> EmulationResult:
        """Run the emulation over ``cycle``.

        Args:
            cycle: the cruising-speed profile.
            record_interval_s: sampling interval of the state-of-charge /
                activity log.
            trace_window: optional ``(start_s, end_s)`` window over which the
                instant-power trace (Fig. 3) is recorded.
            idle_step_s: time step used while the vehicle is stationary.

        Returns:
            An :class:`EmulationResult` with totals, the sampled state log and
            (when requested) the instant-power trace.
        """
        if record_interval_s <= 0.0:
            raise EmulationError("record interval must be positive")
        if trace_window is not None:
            trace_start, trace_end = trace_window
            if trace_end <= trace_start:
                raise EmulationError("trace window end must be after its start")

        self.storage.reset()
        if self.thermal_model is not None:
            self.thermal_model.reset()
        self._energy_cache.clear()

        result = EmulationResult(
            node_name=self.node.name,
            cycle_name=cycle.name,
            duration_s=cycle.duration_s,
            trace=PowerTrace() if trace_window is not None else None,
        )
        node_active = not self.storage.is_depleted
        next_record_s = 0.0
        temperature_c = (
            self.thermal_model.current_celsius
            if self.thermal_model is not None
            else self.base_point.temperature_c
        )

        for unit in iter_wheel_rounds(cycle, self.node.wheel, idle_step_s=idle_step_s):
            duration = (
                unit.period_s if isinstance(unit, WheelRound) else unit.duration_s
            )
            speed = unit.speed_kmh if isinstance(unit, WheelRound) else 0.0

            if self.thermal_model is not None:
                temperature_c = self.thermal_model.advance(duration, speed / 3.6)
            point = self._operating_point(max(speed, 0.0), temperature_c)
            sleep_power = self.evaluator.standstill_power_w(point)

            # -- restart hysteresis --------------------------------------------------
            if not node_active and self.storage.can_restart:
                node_active = True

            if isinstance(unit, WheelRound):
                result.revolutions += 1
                result.moving_time_s += duration

                harvested = self.scavenger.energy_per_revolution_j(unit.speed_kmh)
                banked = self.storage.deposit(harvested)
                result.harvested_j += banked
                result.discarded_j += max(0.0, harvested - banked)

                if node_active:
                    energy, phases = self._revolution_energy(unit, temperature_c)
                    drawn = self.node.pmu.referred_to_storage(energy)
                    if self.storage.withdraw(drawn):
                        result.consumed_j += drawn
                        result.active_revolutions += 1
                        result.active_time_s += duration
                        if result.trace is not None and trace_window is not None:
                            if unit.start_s < trace_window[1] and unit.end_s > trace_window[0]:
                                self._record_trace_revolution(
                                    result.trace, unit, phases, True, sleep_power
                                )
                    else:
                        node_active = False
                        result.brownout_events += 1
                elif result.trace is not None and trace_window is not None:
                    if unit.start_s < trace_window[1] and unit.end_s > trace_window[0]:
                        self._record_trace_revolution(result.trace, unit, (), False, sleep_power)
            else:
                # Stationary: nothing harvested, the node sits in its resting
                # modes (if it still has energy to do so).
                if node_active:
                    drawn = self.node.pmu.referred_to_storage(sleep_power * duration)
                    if self.storage.withdraw(drawn):
                        result.consumed_j += drawn
                        result.active_time_s += duration
                    else:
                        node_active = False
                        result.brownout_events += 1
                if result.trace is not None and trace_window is not None:
                    if unit.start_s < trace_window[1] and unit.end_s > trace_window[0]:
                        result.trace.append(
                            unit.start_s,
                            duration,
                            sleep_power if node_active else 0.0,
                            "standstill" if node_active else "inactive",
                        )

            self.storage.leak(duration)

            end_time = unit.end_s
            while next_record_s <= end_time:
                result.samples.append(
                    EmulationSample(
                        time_s=next_record_s,
                        speed_kmh=speed,
                        temperature_c=temperature_c,
                        state_of_charge=self.storage.state_of_charge,
                        node_active=node_active,
                    )
                )
                next_record_s += record_interval_s

        if result.trace is not None and trace_window is not None and not result.trace.is_empty:
            result.trace = result.trace.windowed(*trace_window)
        return result

    def steady_state_trace(
        self,
        speed_kmh: float,
        window_s: float,
        temperature_c: float | None = None,
        start_revolution: int = 0,
    ) -> PowerTrace:
        """Instant-power trace of a constant-speed cruise (the Fig. 3 view).

        Unlike :meth:`emulate`, the storage element is ignored: the node is
        assumed powered throughout, which matches the paper's "limited timing
        window" snapshot of the consumption profile.
        """
        if speed_kmh <= 0.0:
            raise EmulationError("a steady-state trace requires a positive speed")
        if window_s <= 0.0:
            raise EmulationError("window must be positive")
        temperature = (
            temperature_c if temperature_c is not None else self.base_point.temperature_c
        )
        point = self._operating_point(speed_kmh, temperature)
        sleep_power = self.evaluator.standstill_power_w(point)
        period = self.node.wheel.revolution_period_s(speed_kmh)

        trace = PowerTrace()
        time_s = 0.0
        revolution = start_revolution
        while time_s < window_s:
            unit = WheelRound(
                index=revolution, start_s=time_s, period_s=period, speed_kmh=speed_kmh
            )
            _, phases = self._revolution_energy(unit, temperature)
            self._record_trace_revolution(trace, unit, phases, True, sleep_power)
            time_s += period
            revolution += 1
        return trace.windowed(0.0, window_s)
