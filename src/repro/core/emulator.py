"""Long-window emulation of the Sensor Node against a drive cycle.

The paper's final flow step: *"integrate the model of the energy source with
the estimation of total load current and emulate the energy balance for a
long timing window"*.  The emulator plays a cruising-speed profile revolution
by revolution, charges the storage element with the scavenger output,
discharges it with the node load, tracks the in-tyre temperature, and records
whether the monitoring system could stay active — which is exactly the
information needed to identify the operating windows and to plot the instant
power of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.blocks.node import SensorNode
from repro.conditions.batch import BatchConditions
from repro.conditions.operating_point import TEMPERATURE_RANGE_C, OperatingPoint
from repro.conditions.temperature import TyreThermalModel
from repro.core.evaluator import EnergyEvaluator
from repro.core.quantize import (
    speed_bin,
    speed_bin_center_kmh,
    speed_bin_upper_edge_kmh,
    temperature_bin,
    temperature_bin_center_c,
    temperature_bins,
)
from repro.core.trace import PowerTrace
from repro.errors import ConfigurationError, EmulationError, ScheduleError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger
from repro.scavenger.storage import (
    StorageElement,
    StorageTrajectory,
    deposit_step,
    leak_step,
    trajectory,
    withdraw_step,
)
from repro.timing.schedule import RevolutionSchedule
from repro.timing.wheel_round import WheelRound, iter_wheel_rounds
from repro.vehicle.drive_cycle import DriveCycle

#: Quantization used by the revolution-energy cache: speeds within
#: ``SPEED_QUANTUM_KMH`` and temperatures within ``TEMPERATURE_QUANTUM_C``
#: share a cache entry.  The quanta (and the bin arithmetic) are
#: single-sourced in :mod:`repro.core.quantize` so consumers that share bins
#: across emulators — the fleet runner's cross-vehicle sweep — can never
#: drift from the cache keys used here.
from repro.core.quantize import (
    SPEED_QUANTUM_KMH as _SPEED_QUANTUM_KMH,  # noqa: F401  (compatibility re-export)
    TEMPERATURE_QUANTUM_C as _TEMPERATURE_QUANTUM_C,
)

#: Upper bound on revolution-energy cache entries.  Ordinary cycles produce a
#: few dozen (binned) entries; only exact-keyed boundary/sub-quantum rounds
#: with continuously varying speeds can accumulate, and the cap keeps the
#: run-persistent cache from growing without bound over an emulator's life.
_MAX_ENERGY_CACHE_ENTRIES = 65536

#: Upper bound on the number of bins the pre-integration batch prefill
#: collects from one drive cycle.  Cycles with more unique quantized bins
#: (pathological continuously-varying boundary speeds) fill the remainder
#: through the ordinary per-miss path inside the integration loop.
_MAX_PREFILL_KEYS = 8192


@dataclass(frozen=True)
class EmulationSample:
    """One recorded sample of the emulation state."""

    time_s: float
    speed_kmh: float
    temperature_c: float
    state_of_charge: float
    node_active: bool


class SampleLog:
    """Columnar, preallocated record buffer for the emulation state log.

    Hour-long emulations record tens of thousands of samples; appending one
    frozen dataclass per sample and re-listing all of them for every
    ``sample_arrays()`` call dominated the logging cost.  The log keeps one
    preallocated numpy column per field (grown by doubling) so appends are
    amortized O(1) scalar stores and :meth:`arrays` returns views, not
    copies.
    """

    __slots__ = ("_time", "_speed", "_temperature", "_soc", "_active", "_size")

    def __init__(self, capacity: int = 1024) -> None:
        capacity = max(1, int(capacity))
        self._time = np.empty(capacity)
        self._speed = np.empty(capacity)
        self._temperature = np.empty(capacity)
        self._soc = np.empty(capacity)
        self._active = np.zeros(capacity, dtype=bool)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        capacity = 2 * len(self._time)
        for name in ("_time", "_speed", "_temperature", "_soc", "_active"):
            column = getattr(self, name)
            grown = np.empty(capacity, dtype=column.dtype)
            grown[: self._size] = column[: self._size]
            setattr(self, name, grown)

    def append(
        self,
        time_s: float,
        speed_kmh: float,
        temperature_c: float,
        state_of_charge: float,
        node_active: bool,
    ) -> None:
        """Record one sample."""
        if self._size == len(self._time):
            self._grow()
        index = self._size
        self._time[index] = time_s
        self._speed[index] = speed_kmh
        self._temperature[index] = temperature_c
        self._soc[index] = state_of_charge
        self._active[index] = node_active
        self._size = index + 1

    def arrays(self) -> dict[str, np.ndarray]:
        """The recorded columns as parallel array *views* (no copies).

        The views are marked read-only so a consumer mutating them in place
        (safe under the old copy semantics) fails loudly instead of silently
        corrupting the log; copy before transforming.
        """
        size = self._size
        columns = {
            "time_s": self._time[:size],
            "speed_kmh": self._speed[:size],
            "temperature_c": self._temperature[:size],
            "state_of_charge": self._soc[:size],
            "node_active": self._active[:size],
        }
        for view in columns.values():
            view.setflags(write=False)
        return columns

    def to_samples(self) -> list[EmulationSample]:
        """Materialize the log as row objects (compatibility view)."""
        return [
            EmulationSample(
                time_s=float(self._time[i]),
                speed_kmh=float(self._speed[i]),
                temperature_c=float(self._temperature[i]),
                state_of_charge=float(self._soc[i]),
                node_active=bool(self._active[i]),
            )
            for i in range(self._size)
        ]

    @classmethod
    def from_samples(cls, samples) -> "SampleLog":
        """Build a log from an iterable of :class:`EmulationSample` rows."""
        samples = list(samples)
        log = cls(capacity=max(1, len(samples)))
        for sample in samples:
            log.append(
                sample.time_s,
                sample.speed_kmh,
                sample.temperature_c,
                sample.state_of_charge,
                sample.node_active,
            )
        return log


class EmulationResult:
    """Outcome of one long-window emulation.

    Samples are stored column-wise in :attr:`log` (a :class:`SampleLog`);
    :meth:`sample_arrays` returns views into it.  The ``samples`` property
    materializes row objects for compatibility and should stay off hot
    paths.
    """

    def __init__(
        self,
        node_name: str,
        cycle_name: str,
        duration_s: float,
        samples: list[EmulationSample] | None = None,
        harvested_j: float = 0.0,
        consumed_j: float = 0.0,
        discarded_j: float = 0.0,
        revolutions: int = 0,
        active_revolutions: int = 0,
        brownout_events: int = 0,
        moving_time_s: float = 0.0,
        active_time_s: float = 0.0,
        trace: PowerTrace | None = None,
    ) -> None:
        self.node_name = node_name
        self.cycle_name = cycle_name
        self.duration_s = duration_s
        self.log = SampleLog.from_samples(samples) if samples else SampleLog()
        self.harvested_j = harvested_j
        self.consumed_j = consumed_j
        self.discarded_j = discarded_j
        self.revolutions = revolutions
        self.active_revolutions = active_revolutions
        self.brownout_events = brownout_events
        self.moving_time_s = moving_time_s
        self.active_time_s = active_time_s
        self.trace = trace

    @property
    def samples(self) -> tuple[EmulationSample, ...]:
        """Row-object view of the recorded samples (materialized on access).

        Returned as a tuple so that accidental in-place mutation (the old
        list attribute allowed ``result.samples.append(...)``) fails loudly
        instead of silently editing a throwaway copy; record through
        ``result.log.append`` or assign a full list to ``result.samples``.
        """
        return tuple(self.log.to_samples())

    @samples.setter
    def samples(self, values) -> None:
        self.log = SampleLog.from_samples(values)

    @property
    def sample_count(self) -> int:
        """Number of recorded samples (cheap, unlike ``len(self.samples)``)."""
        return len(self.log)

    _SCALAR_FIELDS = (
        "node_name",
        "cycle_name",
        "duration_s",
        "harvested_j",
        "consumed_j",
        "discarded_j",
        "revolutions",
        "active_revolutions",
        "brownout_events",
        "moving_time_s",
        "active_time_s",
    )

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self._SCALAR_FIELDS)
        return f"EmulationResult({fields}, samples={len(self.log)}, trace={self.trace!r})"

    def __eq__(self, other: object) -> bool:
        # Field-based equality, preserved from the former dataclass: scalar
        # totals, the recorded sample columns, and the trace must all match.
        if not isinstance(other, EmulationResult):
            return NotImplemented
        if any(
            getattr(self, name) != getattr(other, name) for name in self._SCALAR_FIELDS
        ):
            return False
        ours, theirs = self.log.arrays(), other.log.arrays()
        if any(not np.array_equal(ours[key], theirs[key]) for key in ours):
            return False
        return self.trace == other.trace

    # -- derived figures -----------------------------------------------------------

    @property
    def net_energy_j(self) -> float:
        """Harvested minus consumed energy over the window."""
        return self.harvested_j - self.consumed_j

    @property
    def active_fraction(self) -> float:
        """Fraction of the whole window with the node operational."""
        if self.duration_s == 0.0:
            return 0.0
        return self.active_time_s / self.duration_s

    @property
    def moving_active_fraction(self) -> float:
        """Fraction of the *moving* time with the node operational.

        This is the figure of merit the paper cares about: stationary time is
        lost by construction (nothing to harvest, nothing to sense), so the
        quality of an architecture/scavenger pairing shows in how much of the
        rolling time the monitoring system covers.
        """
        if self.moving_time_s == 0.0:
            return 0.0
        return min(1.0, self.active_time_s / self.moving_time_s)

    @property
    def revolution_coverage(self) -> float:
        """Fraction of wheel revolutions that were actually monitored."""
        if self.revolutions == 0:
            return 0.0
        return self.active_revolutions / self.revolutions

    def sample_arrays(self) -> dict[str, np.ndarray]:
        """Recorded samples as parallel numpy array views (zero-copy)."""
        return self.log.arrays()

    def summary(self) -> dict[str, float]:
        """Scalar summary used by reports and benches."""
        return {
            "duration_s": self.duration_s,
            "harvested_mj": self.harvested_j * 1e3,
            "consumed_mj": self.consumed_j * 1e3,
            "net_mj": self.net_energy_j * 1e3,
            "discarded_mj": self.discarded_j * 1e3,
            "revolutions": float(self.revolutions),
            "revolution_coverage_pct": 100.0 * self.revolution_coverage,
            "active_fraction_pct": 100.0 * self.active_fraction,
            "moving_active_fraction_pct": 100.0 * self.moving_active_fraction,
            "brownout_events": float(self.brownout_events),
        }


class NodeEmulator:
    """Plays a drive cycle against a node, a scavenger and a storage element.

    Args:
        node: the Sensor Node architecture.
        database: power characterization (re-targeted to the node's clocks).
        scavenger: energy source model.
        storage: storage element buffering harvest and load; the emulator
            resets it at the start of every run.
        base_point: template operating point providing the supply and process
            conditions; speed and temperature are overridden while emulating.
        thermal_model: optional in-tyre thermal model driven by the emulated
            speed; when omitted, the base point's temperature is used
            throughout.
        evaluator: optional prebuilt evaluator for ``node``/``database``;
            lets scenario studies share one compiled power table across
            emulation runs.
    """

    def __init__(
        self,
        node: SensorNode,
        database: PowerDatabase,
        scavenger: EnergyScavenger,
        storage: StorageElement,
        base_point: OperatingPoint | None = None,
        thermal_model: TyreThermalModel | None = None,
        evaluator: EnergyEvaluator | None = None,
    ) -> None:
        self.node = node
        # A study sweeping only the environment can pass a prebuilt evaluator
        # so the re-targeted database and the compiled power table are shared
        # across emulation runs instead of rebuilt per run.
        if evaluator is not None and (
            evaluator.node is not node or evaluator.source_database is not database
        ):
            raise EmulationError(
                "the shared evaluator was built for a different node or database"
            )
        self.evaluator = evaluator or EnergyEvaluator(node, database)
        self.scavenger = scavenger
        self.storage = storage
        self.base_point = base_point or OperatingPoint()
        self.thermal_model = thermal_model
        # Both caches are keyed on quantized conditions and stay valid for the
        # lifetime of the emulator: the evaluator and the database are fixed
        # per instance, so the caches persist across emulate() runs.
        self._energy_cache: dict[tuple, tuple[float, tuple[tuple[str, float, float], ...]]] = {}
        self._standstill_cache: dict[int, float] = {}
        #: (speed bin, phase pattern) keys whose bin-*center* schedule proved
        #: infeasible (feasibility is a step function of speed, so the center
        #: can fail while the upper edge passes); keyed per pattern so one
        #: pattern's infeasible center never forces other patterns in the
        #: same bin off their valid bin entries.
        self._infeasible_center_keys: set[tuple] = set()
        #: (speed bin, phase pattern) keys whose schedule was validated at
        #: the bin's *upper edge*: every speed that rounds into the bin is
        #: then covered by one schedule build (up to sub-quantum feasibility
        #: pockets, the same approximation class as the energy quantization
        #: itself — and a deterministic one, so warm and fresh emulators
        #: always agree).
        self._trusted_speed_keys: set[tuple] = set()
        #: (speed bin, phase pattern) keys whose upper edge is infeasible:
        #: these straddle the node's feasibility limit, so their rounds are
        #: evaluated and keyed on the exact speed — an unsustainable actual
        #: speed then raises naturally on its own schedule build.
        self._exact_speed_keys: set[tuple] = set()
        #: (id(cycle), idle step) pairs whose prefill pre-scan completed
        #: against the current caches; re-scanning them would walk the whole
        #: cycle to find nothing pending (see ``_prefill_energy_cache``).
        self._prefilled_cycles: set[tuple] = set()
        self._cache_node = self.node
        self._cache_evaluator = self.evaluator
        self._cache_database = self.evaluator.database
        self._cache_database_version = self.evaluator.database._version
        self._cache_base_point = self.base_point

    def _ensure_caches_fresh(self) -> None:
        """Drop cached energies if an input they bake in has changed.

        Cache keys quantize speed/temperature/phase pattern, but the cached
        values also depend on the node, the evaluator and its database
        coefficients, and the supply/process conditions of ``base_point`` —
        all publicly reachable between runs, so all are checked here.
        """
        version = self.evaluator.database._version
        if (
            self.node is not self._cache_node
            or self.evaluator is not self._cache_evaluator
            or self.evaluator.database is not self._cache_database
            or version != self._cache_database_version
            or self.base_point != self._cache_base_point
        ):
            self._energy_cache.clear()
            self._standstill_cache.clear()
            self._infeasible_center_keys.clear()
            self._trusted_speed_keys.clear()
            self._exact_speed_keys.clear()
            self._prefilled_cycles.clear()
            self._cache_node = self.node
            self._cache_evaluator = self.evaluator
            self._cache_database = self.evaluator.database
            self._cache_database_version = version
            self._cache_base_point = self.base_point

    # -- internal helpers -------------------------------------------------------------

    def _operating_point(self, speed_kmh: float, temperature_c: float) -> OperatingPoint:
        return self.base_point.at_speed(speed_kmh).at_temperature(temperature_c)

    def _temperature_bin(self, temperature_c: float) -> int:
        """Quantized temperature bin, validating the *actual* temperature.

        The range check happens before binning so an out-of-range temperature
        fails on the value the thermal model actually produced (the old
        per-round OperatingPoint construction gave the same guarantee);
        in-range temperatures always map to in-range bin centers because the
        range bounds are whole multiples of the quantum.
        """
        low, high = TEMPERATURE_RANGE_C
        if not low <= temperature_c <= high:
            raise ConfigurationError(
                f"temperature {temperature_c} degC is outside the modelled range"
            )
        return temperature_bin(temperature_c)

    def _standstill_power(self, temperature_c: float) -> float:
        """Resting-mode node power, memoized on the quantized temperature.

        The resting power depends only on the (fixed) supply/process
        conditions and the temperature, so recomputing it every wheel round
        is pure overhead.  Each 1 degC bin is evaluated at its representative
        (bin-center) temperature, which keeps the cached value a pure
        function of the bin — results cannot depend on which temperature
        inside the bin an earlier run happened to see first.
        """
        key = self._temperature_bin(temperature_c)
        cached = self._standstill_cache.get(key)
        if cached is None:
            point = self._operating_point(0.0, temperature_bin_center_c(key))
            cached = self.evaluator.standstill_power_w(point)
            self._standstill_cache[key] = cached
        return cached

    def _speed_key_for(
        self, speed_kmh: float, revolution_index: int, pattern: tuple[bool, bool, bool]
    ) -> tuple[object, float, bool]:
        """Resolve the cache speed key of one revolution.

        Returns ``(speed_key, evaluation_speed, use_bin)``.  Bin 0 has no
        positive representative speed, and bins whose center proved
        infeasible are memoized; both are keyed on the exact speed instead —
        the cached value stays a pure function of the key either way.  Exact
        keys are tagged so they can never collide with an int bin key
        (Python dicts treat 999 and 999.0 as the same key).
        """
        bin_index = speed_bin(speed_kmh)
        pattern_key = (bin_index, *pattern)
        use_bin = bin_index > 0 and pattern_key not in self._infeasible_center_keys
        if use_bin and pattern_key not in self._trusted_speed_keys:
            if pattern_key in self._exact_speed_keys:
                use_bin = False
            else:
                # Classify the (bin, pattern) once, with one schedule build
                # at the bin's upper edge: feasible there means every speed
                # that rounds into the bin is safe to share the bin entry;
                # infeasible means the bin straddles the node's feasibility
                # limit and its rounds must be handled exactly.  The
                # classification depends only on the key, so warm and fresh
                # emulators always agree.
                upper_edge = speed_bin_upper_edge_kmh(bin_index)
                try:
                    self.node.schedule_for(upper_edge, revolution_index)
                    self._trusted_speed_keys.add(pattern_key)
                except ScheduleError:
                    self._exact_speed_keys.add(pattern_key)
                    use_bin = False
        if use_bin:
            return bin_index, speed_bin_center_kmh(bin_index), True
        return ("exact", speed_kmh), speed_kmh, False

    def _store_energy(
        self, key: tuple, value: tuple[float, tuple[tuple[str, float, float], ...]]
    ) -> None:
        """Insert one revolution-energy cache entry, honouring the size cap."""
        if len(self._energy_cache) >= _MAX_ENERGY_CACHE_ENTRIES:
            # Exact-keyed entries from continuously varying boundary speeds
            # are the only unbounded population; dropping the whole cache is
            # cheap to rebuild and keeps memory flat over the emulator's life.
            self._energy_cache.clear()
            self._prefilled_cycles.clear()
        self._energy_cache[key] = value

    def _revolution_energy(
        self, unit: WheelRound, temperature_c: float
    ) -> tuple[float, tuple[tuple[str, float, float], ...]]:
        """Energy of one revolution plus its per-phase (label, duration, power) list.

        Cached on quantized speed/temperature and on the conditional-phase
        pattern of the revolution index, because those five values fully
        determine the schedule energy.
        """
        pattern = self.node.phase_pattern(unit.index)
        temp_bin = self._temperature_bin(temperature_c)
        speed_key, speed, use_bin = self._speed_key_for(
            unit.speed_kmh, unit.index, pattern
        )
        key = (speed_key, temp_bin, *pattern)
        cached = self._energy_cache.get(key)
        if cached is not None:
            return cached

        # Cache miss: evaluate at the bin-representative speed/temperature so
        # the cached value is a pure function of the key — results cannot
        # depend on which conditions inside the bin an earlier run saw first,
        # even though the cache persists across emulate() runs.
        if use_bin:
            try:
                schedule = self.node.schedule_for(speed, unit.index)
            except ScheduleError:
                # The bin center rounded just past the node's feasibility
                # limit for this phase pattern (the upper edge was validated
                # above): memoize the (bin, pattern) so later rounds skip
                # the doomed attempt, and key this round on its exact speed.
                schedule = self.node.schedule_for(unit.speed_kmh, unit.index)
                self._infeasible_center_keys.add((speed_key, *pattern))
                speed = unit.speed_kmh
                key = (("exact", speed), temp_bin, *pattern)
                cached = self._energy_cache.get(key)
                if cached is not None:
                    return cached
        else:
            schedule = self.node.schedule_for(speed, unit.index)
        point = self._operating_point(speed, temperature_bin_center_c(temp_bin))
        # The evaluation runs through the compiled power table (one vectorized
        # pass over all (block, mode) rows) instead of the scalar
        # per-phase-per-block dataclass path.
        value = self.evaluator.schedule_energy_compiled(schedule, point)
        self._store_energy(key, value)
        return value

    def _pending_energy_bins(
        self, cycle: DriveCycle, idle_step_s: float
    ) -> dict[tuple, tuple[float, float, RevolutionSchedule]]:
        """Pre-scan the cycle for uncached quantized bins and their schedules.

        Walks the drive cycle once (advancing — and afterwards resetting —
        the thermal model exactly like the integration loop will) and
        collects the unique quantized (speed, temperature, phase-pattern)
        bins that are not cached yet, as ``key -> (evaluation speed,
        evaluation temperature degC, schedule)``.  One schedule object is
        shared per unique (speed, pattern): keys differing only in
        temperature bin then group into one vectorized accumulation in the
        batch kernel instead of N width-1 ones.

        Bins whose schedule cannot be built (an unsustainable speed, an
        out-of-range temperature) are deliberately skipped so the
        integration loop raises at exactly the same simulated instant it
        always did.
        """
        pending: dict[tuple, tuple[float, float, RevolutionSchedule]] = {}
        built: dict[tuple, RevolutionSchedule] = {}
        temperature_c = (
            self.thermal_model.current_celsius
            if self.thermal_model is not None
            else self.base_point.temperature_c
        )
        for unit in iter_wheel_rounds(cycle, self.node.wheel, idle_step_s=idle_step_s):
            duration = (
                unit.period_s if isinstance(unit, WheelRound) else unit.duration_s
            )
            speed = unit.speed_kmh if isinstance(unit, WheelRound) else 0.0
            if self.thermal_model is not None:
                temperature_c = self.thermal_model.advance(duration, speed / 3.6)
            if not isinstance(unit, WheelRound):
                continue
            if len(pending) >= _MAX_PREFILL_KEYS:
                break
            pattern = self.node.phase_pattern(unit.index)
            try:
                temp_bin = self._temperature_bin(temperature_c)
            except ConfigurationError:
                # Out-of-range temperature: the integration loop must raise
                # on this round itself, not the prefill.
                break
            speed_key, eval_speed, _use_bin = self._speed_key_for(
                unit.speed_kmh, unit.index, pattern
            )
            key = (speed_key, temp_bin, *pattern)
            if key in self._energy_cache or key in pending:
                continue
            schedule_key = (eval_speed, *pattern)
            schedule = built.get(schedule_key)
            if schedule is None:
                try:
                    schedule = self.node.schedule_for(eval_speed, unit.index)
                except ScheduleError:
                    # Bin-center infeasibility (or an unsustainable exact
                    # speed): leave the round to the integration loop, which
                    # handles the fallback — and the error timing — exactly
                    # as before.
                    continue
                built[schedule_key] = schedule
            pending[key] = (
                eval_speed,
                temperature_bin_center_c(temp_bin),
                schedule,
            )
        if self.thermal_model is not None:
            self.thermal_model.reset()
        return pending

    def _prefill_energy_cache(self, cycle: DriveCycle, idle_step_s: float) -> int:
        """Fill the revolution-energy cache with ONE batch call before the loop.

        The bins come from :meth:`_pending_energy_bins`; all of them are
        evaluated through ``EnergyEvaluator._schedule_energy_batch`` in a
        single vectorized pass.  Cached values are pure functions of their
        keys, so prefilled entries are indistinguishable from per-miss
        entries: the integration loop produces byte-identical results either
        way, just without thousands of scalar cache-miss evaluations.

        A cycle object whose scan already completed against the current
        caches is remembered and not re-scanned: on a warm emulator the
        pre-scan would walk every wheel round only to find nothing pending.
        (Skipping a prefill can never change results — it is purely an
        optimization — so the identity-keyed memo is safe even if a caller
        mutates the cycle in place.)

        Returns the number of prefilled cache entries.
        """
        memo_key = (id(cycle), idle_step_s)
        if memo_key in self._prefilled_cycles:
            return 0
        pending = self._pending_energy_bins(cycle, idle_step_s)
        if len(pending) < _MAX_PREFILL_KEYS:
            # The scan covered the whole cycle: a later run with the same
            # (unchanged) caches has nothing left to discover.
            self._prefilled_cycles.add(memo_key)
        if not pending:
            return 0

        for key, value in self.evaluate_energy_bins(pending).items():
            self._store_energy(key, value)
        return len(pending)

    def evaluate_energy_bins(
        self, pending: Mapping[tuple, tuple[float, float, RevolutionSchedule]]
    ) -> dict[tuple, tuple[float, tuple[tuple[str, float, float], ...]]]:
        """Evaluate quantized bins in ONE vectorized batch call.

        ``pending`` maps cache keys to ``(evaluation speed, evaluation
        temperature degC, schedule)`` exactly as produced by
        :meth:`_pending_energy_bins`; the return value maps each key to the
        ``(energy, per-phase list)`` entry the per-miss path would have
        cached.  The batch kernel accumulates in the scalar operation order,
        so the values are bitwise identical to per-miss evaluations — which
        is what lets the fleet runner evaluate the *union* of bins across a
        whole vehicle population once and hand the entries to every
        vehicle's emulator (:meth:`seed_energy_cache`).
        """
        if not pending:
            return {}
        keys = list(pending)
        speeds = np.array([pending[key][0] for key in keys])
        temperatures = np.array([pending[key][1] for key in keys])
        schedules = [pending[key][2] for key in keys]
        batch = BatchConditions.from_arrays(
            speeds, temperatures, base_point=self.base_point
        )
        energies, phase_lists = self.evaluator._schedule_energy_batch(
            batch, schedules, include_phases=True
        )
        return {
            key: (float(energies[position]), phase_lists[position])
            for position, key in enumerate(keys)
        }

    def seed_energy_cache(
        self,
        entries: Mapping[tuple, tuple[float, tuple[tuple[str, float, float], ...]]],
    ) -> int:
        """Pre-load revolution-energy cache entries computed elsewhere.

        Entries must come from an emulator with the same node, database
        coefficients and supply/process conditions (cached values are pure
        functions of their quantized keys under those inputs); the fleet
        runner uses this to share one cross-vehicle bin sweep between all
        vehicles of a group.  Returns the number of entries accepted.  The
        cache-size cap is honoured entry by entry, exactly like per-miss
        inserts.
        """
        self._ensure_caches_fresh()
        for key, value in entries.items():
            self._store_energy(key, value)
        return len(entries)

    def _record_trace_revolution(
        self,
        trace: PowerTrace,
        unit: WheelRound,
        phases: tuple[tuple[str, float, float], ...],
        active: bool,
        sleep_power_w: float,
    ) -> None:
        if not active:
            trace.append(unit.start_s, unit.period_s, 0.0, "inactive")
            return
        cursor = unit.start_s
        for label, duration, power in phases:
            duration = min(duration, unit.end_s - cursor)
            if duration <= 0.0:
                break
            trace.append(cursor, duration, power, label)
            cursor += duration
        if cursor < unit.end_s - 1e-12:
            trace.append(cursor, unit.end_s - cursor, sleep_power_w, "sleep")

    # -- array-based integration core ------------------------------------------------

    #: Sentinel for :meth:`_collect_cycle`: "walk with the emulator's own
    #: thermal model" (``None`` must stay expressible — it means constant
    #: temperature regardless of ``self.thermal_model``).
    _OWN_THERMAL = object()

    def _collect_cycle(
        self, cycle: DriveCycle, idle_step_s: float, thermal_model=_OWN_THERMAL
    ) -> tuple[list, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Materialize the cycle as per-unit arrays (one walk, thermal replay).

        Returns ``(units, is_round, durations, speeds, ends, temps)``.  The
        thermal model is advanced through the whole cycle here — exactly the
        trajectory the old per-revolution loop produced — and left at its
        end-of-cycle state.  ``thermal_model`` overrides the emulator's own
        model for this walk (the fleet runner replays one freshly-built model
        per thermal cohort through a shared probe emulator); the default
        keeps ``self.thermal_model``.
        """
        units = list(iter_wheel_rounds(cycle, self.node.wheel, idle_step_s=idle_step_s))
        count = len(units)
        is_round = np.empty(count, dtype=bool)
        durations = np.empty(count)
        speeds = np.zeros(count)
        ends = np.empty(count)
        temps = np.empty(count)
        thermal = (
            self.thermal_model if thermal_model is self._OWN_THERMAL else thermal_model
        )
        temperature_c = (
            thermal.current_celsius if thermal is not None else self.base_point.temperature_c
        )
        for i, unit in enumerate(units):
            if isinstance(unit, WheelRound):
                is_round[i] = True
                durations[i] = unit.period_s
                speeds[i] = unit.speed_kmh
            else:
                is_round[i] = False
                durations[i] = unit.duration_s
            ends[i] = unit.end_s
            if thermal is not None:
                temperature_c = thermal.advance(float(durations[i]), speeds[i] / 3.6)
            temps[i] = temperature_c
        return units, is_round, durations, speeds, ends, temps

    def materialize_cycle(
        self,
        cycle: DriveCycle,
        idle_step_s: float = 1.0,
        thermal_model: TyreThermalModel | None = None,
    ) -> tuple[list, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One cycle walk as per-unit arrays — the reusable cohort pass.

        Returns ``(units, is_round, durations, speeds, ends, temps)``,
        exactly the arrays :meth:`emulate` integrates: the same wheel-round
        walk, and — when ``thermal_model`` is given — the same thermal
        trajectory a per-vehicle ``emulate()`` with that model would
        produce, advance call for advance call.  The fleet runner replays
        this once per (cycle, speed-scale, ambient-bin) cohort through a
        shared probe emulator instead of once per vehicle; ``thermal_model``
        should be freshly built (or reset) — the walk starts from its
        current state and leaves it at the end-of-cycle state.

        With ``thermal_model=None`` the walk is isothermal at the base
        point's temperature even if the emulator owns a thermal model (an
        explicit request for the constant-temperature arrays).
        """
        return self._collect_cycle(cycle, idle_step_s, thermal_model=thermal_model)

    def _resolve_round_energies(
        self,
        units: list,
        is_round: np.ndarray,
        temps: np.ndarray,
    ) -> tuple[np.ndarray, list, np.ndarray]:
        """Gather each wheel round's cached revolution energy, where available.

        Returns ``(energies, phase_lists, resolved)``: per-unit energy (NaN
        where unknown), the per-phase tuples of resolved rounds, and the
        resolution mask.  After a prefill every feasible bin is already
        cached, so this is normally a pure dict-gather; rounds whose bin is
        uncached (boundary speeds past the prefill cap, infeasible centers)
        stay unresolved and are evaluated inside the integration loop only
        when the node is actually active — preserving the scalar path's
        error timing exactly.
        """
        count = len(units)
        energies = np.full(count, np.nan)
        phase_lists: list = [None] * count
        resolved = np.zeros(count, dtype=bool)
        low, high = TEMPERATURE_RANGE_C
        cache = self._energy_cache
        for i in np.flatnonzero(is_round):
            temperature_c = float(temps[i])
            if not low <= temperature_c <= high:
                # The loop must raise on this round itself (via the
                # standstill evaluation), not the pre-pass.
                continue
            unit = units[i]
            pattern = self.node.phase_pattern(unit.index)
            speed_key, _speed, _use_bin = self._speed_key_for(
                unit.speed_kmh, unit.index, pattern
            )
            key = (speed_key, temperature_bin(temperature_c), *pattern)
            cached = cache.get(key)
            if cached is not None:
                energies[i] = cached[0]
                phase_lists[i] = cached[1]
                resolved[i] = True
        return energies, phase_lists, resolved

    def _standstill_power_sweep(self, temps: np.ndarray) -> np.ndarray:
        """Per-unit resting-mode power via the quantized standstill memo."""
        bins, inverse = np.unique(temperature_bins(temps), return_inverse=True)
        per_bin = np.array(
            [self._standstill_power(temperature_bin_center_c(int(b))) for b in bins]
        )
        return per_bin[inverse]

    def _integrate_stepwise(
        self,
        units: list,
        is_round: np.ndarray,
        durations: np.ndarray,
        temps: np.ndarray,
        harvest: np.ndarray,
        energies: np.ndarray,
        phase_lists: list,
        resolved: np.ndarray,
    ) -> tuple[StorageTrajectory, np.ndarray]:
        """Reference integration loop for cycles the pure kernel cannot cover.

        Used when some rounds have unresolved revolution energies (evaluated
        here only while the node is active, so infeasible speeds keep raising
        at exactly the simulated instant the scalar path raised) or when a
        temperature leaves the modelled range (the standstill evaluation
        raises on the offending unit).  The ledger arithmetic goes through
        the same storage step primitives as :func:`repro.scavenger.storage.trajectory`,
        so both integration paths produce byte-identical trajectories.

        Returns the trajectory plus the (possibly lazily filled) per-unit
        sleep-power array.
        """
        storage = self.storage
        count = len(units)
        charge = storage.initial_charge_j
        active = not storage.is_depleted
        capacity = storage.capacity_j
        restart = storage.restart_level_j
        charge_eff = storage.charge_efficiency
        discharge_eff = storage.discharge_efficiency
        self_discharge_w = storage.self_discharge_w
        pmu = self.node.pmu

        sleep_power = np.empty(count)
        charge_out = np.empty(count)
        active_out = np.empty(count, dtype=bool)
        banked_out = np.empty(count)
        drawn_out = np.zeros(count)
        attempted = np.zeros(count, dtype=bool)
        withdrew = np.zeros(count, dtype=bool)
        brownouts = 0
        for i in range(count):
            temperature_c = float(temps[i])
            # May raise for an out-of-range temperature — on the same unit,
            # in the same loop position, as the scalar path did.
            sleep_power[i] = self._standstill_power(temperature_c)
            duration = float(durations[i])
            if not active and charge >= restart:
                active = True
            if is_round[i]:
                charge, banked_out[i] = deposit_step(
                    charge, harvest[i] * charge_eff, capacity
                )
                if active:
                    attempted[i] = True
                    if resolved[i]:
                        energy = float(energies[i])
                    else:
                        energy, phases = self._revolution_energy(
                            units[i], temperature_c
                        )
                        energies[i] = energy
                        phase_lists[i] = phases
                        resolved[i] = True
                    load = pmu.referred_to_storage(energy)
                    charge, success = withdraw_step(charge, load / discharge_eff)
                    if success:
                        withdrew[i] = True
                        drawn_out[i] = load
                    else:
                        active = False
                        brownouts += 1
            else:
                banked_out[i] = 0.0
                if active:
                    attempted[i] = True
                    load = pmu.referred_to_storage(float(sleep_power[i]) * duration)
                    charge, success = withdraw_step(charge, load / discharge_eff)
                    if success:
                        withdrew[i] = True
                        drawn_out[i] = load
                    else:
                        active = False
                        brownouts += 1
            charge, _loss = leak_step(charge, self_discharge_w * duration)
            charge_out[i] = charge
            active_out[i] = active
        traj = StorageTrajectory(
            charge_j=charge_out,
            active=active_out,
            banked_j=banked_out,
            drawn_j=drawn_out,
            attempted=attempted,
            withdrew=withdrew,
            brownout_events=brownouts,
            final_charge_j=float(charge),
        )
        return traj, sleep_power

    # -- main entry point ----------------------------------------------------------------

    def emulate(
        self,
        cycle: DriveCycle,
        record_interval_s: float = 1.0,
        trace_window: tuple[float, float] | None = None,
        idle_step_s: float = 1.0,
        prefill: bool = True,
    ) -> EmulationResult:
        """Run the emulation over ``cycle``.

        The integration consumes precomputed per-round arrays end to end: the
        cycle is materialized once (:meth:`_collect_cycle`), the scavenger
        output of every wheel round comes from ONE vectorized
        ``energy_sweep_j`` call, the revolution energies are gathered from
        the (batch-prefilled) cache, and the state of charge is integrated by
        the pure :func:`repro.scavenger.storage.trajectory` kernel.  Cycles
        the kernel cannot cover — uncached bins whose evaluation must stay
        lazy, out-of-range temperatures — fall back to a stepwise loop built
        on the same storage step primitives; both paths are byte-identical
        (asserted by the prefill/cache-cap regression tests, since
        ``prefill=False`` on a cold emulator exercises the stepwise path).

        Args:
            cycle: the cruising-speed profile.
            record_interval_s: sampling interval of the state-of-charge /
                activity log.
            trace_window: optional ``(start_s, end_s)`` window over which the
                instant-power trace (Fig. 3) is recorded.
            idle_step_s: time step used while the vehicle is stationary.
            prefill: pre-scan the cycle and fill the revolution-energy cache
                with one vectorized batch call before the state-of-charge
                integration (see :meth:`_prefill_energy_cache`).  The result
                is byte-identical with or without prefill — the flag exists
                for benchmarking and regression tests.

        Returns:
            An :class:`EmulationResult` with totals, the sampled state log and
            (when requested) the instant-power trace.
        """
        if record_interval_s <= 0.0:
            raise EmulationError("record interval must be positive")
        if trace_window is not None:
            trace_start, trace_end = trace_window
            if trace_end <= trace_start:
                raise EmulationError("trace window end must be after its start")

        self.storage.reset()
        if self.thermal_model is not None:
            self.thermal_model.reset()
        # The energy and standstill caches are intentionally NOT cleared on
        # every run: cached values are pure functions of their quantized keys
        # (both caches evaluate at bin-representative conditions), so entries
        # stay valid across runs and repeated emulations start warm.  The one
        # invalidating event — an in-place mutation of the database — is
        # detected via its version counter.
        self._ensure_caches_fresh()
        if prefill:
            self._prefill_energy_cache(cycle, idle_step_s)

        units, is_round, durations, speeds, ends, temps = self._collect_cycle(
            cycle, idle_step_s
        )
        round_indices = np.flatnonzero(is_round)

        # Supply side: every wheel round's harvest in one vectorized sweep.
        harvest = np.zeros(len(units))
        harvest[round_indices] = self.scavenger.energy_sweep_j(speeds[round_indices])
        if np.any(harvest < 0.0):
            raise EmulationError("cannot deposit negative energy")

        energies, phase_lists, resolved = self._resolve_round_energies(
            units, is_round, temps
        )

        low_t, high_t = TEMPERATURE_RANGE_C
        temps_in_range = bool(np.all((temps >= low_t) & (temps <= high_t)))
        all_resolved = bool(np.all(resolved[round_indices]))
        if temps_in_range and all_resolved:
            # Pure-kernel path: every per-unit quantity is known up front.
            sleep_power = self._standstill_power_sweep(temps)
            load = np.zeros(len(units))
            load[round_indices] = self.node.pmu.referred_to_storage(
                energies[round_indices]
            )
            idle = ~is_round
            load[idle] = self.node.pmu.referred_to_storage(
                sleep_power[idle] * durations[idle]
            )
            # initial_charge_j=None replays the element's own (already
            # validated) initial charge without the per-call range check;
            # the scan runs on the evaluator's array backend.
            traj = trajectory(
                self.storage,
                harvest,
                load,
                durations,
                initially_active=not self.storage.is_depleted,
                backend=self.evaluator.backend,
            )
        else:
            traj, sleep_power = self._integrate_stepwise(
                units,
                is_round,
                durations,
                temps,
                harvest,
                energies,
                phase_lists,
                resolved,
            )
        # The mutating element is the scalar reference, not the integrator:
        # leave it holding the trajectory's final charge, exactly as the old
        # per-revolution deposit/withdraw/leak calls did.
        self.storage._charge_j = traj.final_charge_j

        result = EmulationResult(
            node_name=self.node.name,
            cycle_name=cycle.name,
            duration_s=cycle.duration_s,
            trace=PowerTrace() if trace_window is not None else None,
        )
        result.revolutions = int(is_round.sum())
        result.moving_time_s = float(durations[is_round].sum())
        result.harvested_j = float(traj.banked_j.sum())
        result.discarded_j = float(np.maximum(0.0, harvest - traj.banked_j).sum())
        result.consumed_j = float(traj.drawn_j.sum())
        result.active_revolutions = int((is_round & traj.withdrew).sum())
        result.active_time_s = float(durations[traj.withdrew].sum())
        result.brownout_events = traj.brownout_events

        # State log: same per-unit sampling walk, reading the trajectory.
        capacity = self.storage.capacity_j
        next_record_s = 0.0
        log = result.log
        charge_out = traj.charge_j
        active_out = traj.active
        for i in range(len(units)):
            end_time = ends[i]
            while next_record_s <= end_time:
                log.append(
                    next_record_s,
                    speeds[i],
                    temps[i],
                    charge_out[i] / capacity,
                    bool(active_out[i]),
                )
                next_record_s += record_interval_s

        if result.trace is not None and trace_window is not None:
            self._record_trace(
                result.trace,
                trace_window,
                units,
                is_round,
                durations,
                traj,
                phase_lists,
                sleep_power,
            )
            if not result.trace.is_empty:
                result.trace = result.trace.windowed(*trace_window)
        return result

    def _record_trace(
        self,
        trace: PowerTrace,
        trace_window: tuple[float, float],
        units: list,
        is_round: np.ndarray,
        durations: np.ndarray,
        traj: StorageTrajectory,
        phase_lists: list,
        sleep_power: np.ndarray,
    ) -> None:
        """Reconstruct the instant-power trace from the integration arrays.

        Entry for entry what the per-revolution loop recorded: successful
        rounds play their cached phase list, rounds the node slept through
        are "inactive", brown-out rounds record nothing, and idle units
        record the standstill floor (or "inactive" once the node is down).
        """
        window_start, window_end = trace_window
        for i, unit in enumerate(units):
            if not (unit.start_s < window_end and unit.end_s > window_start):
                continue
            if is_round[i]:
                if traj.withdrew[i]:
                    self._record_trace_revolution(
                        trace, unit, phase_lists[i], True, float(sleep_power[i])
                    )
                elif not traj.attempted[i]:
                    self._record_trace_revolution(
                        trace, unit, (), False, float(sleep_power[i])
                    )
            else:
                active = bool(traj.active[i])
                trace.append(
                    unit.start_s,
                    float(durations[i]),
                    float(sleep_power[i]) if active else 0.0,
                    "standstill" if active else "inactive",
                )

    def steady_state_trace(
        self,
        speed_kmh: float,
        window_s: float,
        temperature_c: float | None = None,
        start_revolution: int = 0,
    ) -> PowerTrace:
        """Instant-power trace of a constant-speed cruise (the Fig. 3 view).

        Unlike :meth:`emulate`, the storage element is ignored: the node is
        assumed powered throughout, which matches the paper's "limited timing
        window" snapshot of the consumption profile.
        """
        if speed_kmh <= 0.0:
            raise EmulationError("a steady-state trace requires a positive speed")
        if window_s <= 0.0:
            raise EmulationError("window must be positive")
        temperature = (
            temperature_c if temperature_c is not None else self.base_point.temperature_c
        )
        point = self._operating_point(speed_kmh, temperature)
        sleep_power = self.evaluator.standstill_power_w(point)
        period = self.node.wheel.revolution_period_s(speed_kmh)

        # Unlike emulate(), a steady-state trace has a single exact working
        # condition, so revolutions are evaluated at the *requested* speed and
        # temperature (the Fig. 3 phases then sum exactly to the revolution
        # period) and memoized per conditional-phase pattern for this call
        # only — no quantized bin sharing.
        pattern_cache: dict[tuple, tuple[float, tuple[tuple[str, float, float], ...]]] = {}
        trace = PowerTrace()
        time_s = 0.0
        revolution = start_revolution
        while time_s < window_s:
            unit = WheelRound(
                index=revolution, start_s=time_s, period_s=period, speed_kmh=speed_kmh
            )
            pattern = (
                self.node.radio.transmits(revolution),
                self.node.sensors.refreshes_slow_sensors(revolution),
                self.node.memory.writes_nvm(revolution),
            )
            cached = pattern_cache.get(pattern)
            if cached is None:
                cached = self.evaluator.schedule_energy_compiled(
                    self.node.schedule_for(speed_kmh, revolution), point
                )
                pattern_cache[pattern] = cached
            _, phases = cached
            self._record_trace_revolution(trace, unit, phases, True, sleep_power)
            time_s += period
            revolution += 1
        return trace.windowed(0.0, window_s)
