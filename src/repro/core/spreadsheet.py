"""The "dynamic spreadsheet" facade for what-if analysis.

The paper describes the central tool as a dynamic spreadsheet: the complete
power database plus the machinery to *"estimate the power and energy
consumption of the Sensor Node under different working and operating
conditions"* and to let the user *"evaluate custom architectures of the
chip"*.  The :class:`Spreadsheet` bundles a node and a database behind the
question-oriented API that plays that role: per-condition tables, sweeps over
temperature / supply / speed, and side-by-side architecture comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.conditions.process import MonteCarloSampler
from repro.conditions.supply import SupplyCondition, SupplyRail
from repro.core.evaluator import EnergyEvaluator, RevolutionEnergyReport
from repro.errors import AnalysisError
from repro.power.database import PowerDatabase


@dataclass(frozen=True)
class SweepRow:
    """One row of a condition sweep: the swept value and the resulting figures."""

    condition: str
    value: float
    energy_per_rev_j: float
    average_power_w: float
    static_fraction: float


class Spreadsheet:
    """What-if analysis over a node architecture and its power database."""

    def __init__(self, node: SensorNode, database: PowerDatabase) -> None:
        self.node = node
        self.database = database
        self.evaluator = EnergyEvaluator(node, database)

    # -- single-condition views -------------------------------------------------------

    def power_table(self, point: OperatingPoint) -> list[dict[str, object]]:
        """The per-(block, mode) power table at one working condition."""
        return self.evaluator.database.table(point, blocks=self.node.block_names())

    def energy_report(self, point: OperatingPoint) -> RevolutionEnergyReport:
        """The per-block energy report (average wheel round) at one condition."""
        return self.evaluator.average_report(point)

    def energy_table(self, point: OperatingPoint) -> list[dict[str, object]]:
        """Per-block energy rows at one condition (the spreadsheet's main view)."""
        return self.energy_report(point).as_rows()

    # -- sweeps -------------------------------------------------------------------------
    #
    # Every sweep evaluates its points as ONE vectorized batch through the
    # compiled power table (see repro.power.compiled); the scalar
    # average_report path remains available as the reference implementation.

    def _sweep_rows(
        self, condition: str, values: list[float], points: list[OperatingPoint]
    ) -> list[SweepRow]:
        """Evaluate ``points`` as one batch and shape the result as sweep rows."""
        dynamic, static, period = self.evaluator.average_components_sweep(points)
        total = dynamic + static
        return [
            SweepRow(
                condition=condition,
                value=values[i],
                energy_per_rev_j=float(total[i]),
                average_power_w=float(total[i] / period[i]),
                static_fraction=float(static[i] / total[i]) if total[i] > 0.0 else 0.0,
            )
            for i in range(len(values))
        ]

    def temperature_sweep(
        self,
        temperatures_c: Sequence[float],
        base_point: OperatingPoint | None = None,
    ) -> list[SweepRow]:
        """Energy per wheel round across junction temperatures."""
        base = base_point or OperatingPoint()
        values = [float(t) for t in temperatures_c]
        points = [base.at_temperature(t) for t in values]
        return self._sweep_rows("temperature_c", values, points)

    def supply_sweep(
        self,
        voltages_v: Sequence[float],
        base_point: OperatingPoint | None = None,
    ) -> list[SweepRow]:
        """Energy per wheel round across core supply voltages."""
        base = base_point or OperatingPoint()
        values = [float(v) for v in voltages_v]
        points = []
        for voltage in values:
            if voltage <= 0.0:
                raise AnalysisError("supply voltages must be positive")
            rail = SupplyRail(name="vdd_core", nominal_v=voltage, tolerance=0.0)
            points.append(base.with_supply(SupplyCondition(rail=rail)))
        return self._sweep_rows("supply_v", values, points)

    def speed_sweep(
        self,
        speeds_kmh: Sequence[float],
        base_point: OperatingPoint | None = None,
    ) -> list[SweepRow]:
        """Energy per wheel round across cruising speeds."""
        base = base_point or OperatingPoint()
        values = [float(s) for s in speeds_kmh]
        if any(speed <= 0.0 for speed in values):
            raise AnalysisError("sweep speeds must be positive")
        points = [base.at_speed(s) for s in values]
        return self._sweep_rows("speed_kmh", values, points)

    def energy_grid(
        self,
        speeds_kmh: Sequence[float],
        temperatures_c: Sequence[float],
        base_point: OperatingPoint | None = None,
    ):
        """Speed x temperature grid view (see :meth:`EnergyEvaluator.energy_grid`)."""
        return self.evaluator.energy_grid(
            speeds_kmh, temperatures_c, base_point=base_point
        )

    def process_monte_carlo(
        self,
        sample_count: int,
        base_point: OperatingPoint | None = None,
        seed: int = 0,
    ) -> dict[str, float]:
        """Monte-Carlo spread of the energy per wheel round across process variation.

        Returns mean, standard deviation and the extreme values over
        ``sample_count`` sampled dice.
        """
        if sample_count < 2:
            raise AnalysisError("at least two Monte-Carlo samples are needed")
        base = base_point or OperatingPoint()
        sampler = MonteCarloSampler(seed=seed)
        energies = []
        for variation in sampler.sample_many(sample_count):
            report = self.evaluator.average_report(base.with_process(variation))
            energies.append(report.total_energy_j)
        import numpy as np

        values = np.asarray(energies)
        return {
            "samples": float(sample_count),
            "mean_j": float(values.mean()),
            "std_j": float(values.std(ddof=1)),
            "min_j": float(values.min()),
            "max_j": float(values.max()),
        }

    # -- architecture comparison -----------------------------------------------------------

    def compare_architectures(
        self,
        alternatives: Iterable[SensorNode],
        point: OperatingPoint | None = None,
    ) -> list[dict[str, object]]:
        """Side-by-side energy comparison of this node against alternatives.

        Every architecture is evaluated against the same power database (each
        re-targeted to its own clock choices), which is the "evaluate custom
        architectures in order to strike a balance between energy requirement
        and system performance" use case of the paper.
        """
        condition = point or OperatingPoint()
        rows: list[dict[str, object]] = []
        for candidate in [self.node, *alternatives]:
            evaluator = EnergyEvaluator(candidate, self.database)
            report = evaluator.average_report(condition)
            rows.append(
                {
                    "architecture": candidate.name,
                    "energy_per_rev_uj": report.total_energy_j * 1e6,
                    "average_power_uw": report.average_power_w * 1e6,
                    "dynamic_uj": report.dynamic_energy_j * 1e6,
                    "static_uj": report.static_energy_j * 1e6,
                    "dominant_block": report.dominant_blocks(1)[0].block,
                }
            )
        return rows
