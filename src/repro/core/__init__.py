"""The paper's primary contribution: the energy analysis methodology and tools.

* :mod:`repro.core.evaluator` — per-block / per-wheel-round energy evaluation
  (the computation behind every number the tools report).
* :mod:`repro.core.balance` — energy generated vs. required across cruising
  speeds and the break-even point (Fig. 2).
* :mod:`repro.core.trace` / :mod:`repro.core.emulator` — instant power of the
  node over a timing window (Fig. 3) and the long-window energy-balance
  emulation against a drive cycle.
* :mod:`repro.core.operating_window` — identification of the operating
  windows of the monitoring system.
* :mod:`repro.core.spreadsheet` — the "dynamic spreadsheet" facade for what-if
  analysis across working and operating conditions.
* :mod:`repro.core.flow` — the end-to-end flow of Fig. 1: estimate, evaluate,
  optimize, re-estimate, integrate the source model, emulate.
"""

from repro.core.balance import BalancePoint, EnergyBalanceAnalysis, EnergyBalanceCurve
from repro.core.emulator import EmulationResult, NodeEmulator, SampleLog
from repro.core.evaluator import (
    BlockEnergy,
    EnergyEvaluator,
    EnergyGrid,
    PhaseEnergy,
    RevolutionEnergyReport,
)
from repro.core.flow import EnergyAnalysisFlow, FlowReport
from repro.core.operating_window import OperatingWindow, find_operating_windows
from repro.core.report import render_flow_report
from repro.core.spreadsheet import Spreadsheet
from repro.core.trace import PowerTrace

__all__ = [
    "EnergyEvaluator",
    "EnergyGrid",
    "SampleLog",
    "RevolutionEnergyReport",
    "BlockEnergy",
    "PhaseEnergy",
    "EnergyBalanceAnalysis",
    "EnergyBalanceCurve",
    "BalancePoint",
    "PowerTrace",
    "NodeEmulator",
    "EmulationResult",
    "OperatingWindow",
    "find_operating_windows",
    "Spreadsheet",
    "EnergyAnalysisFlow",
    "FlowReport",
    "render_flow_report",
]
