"""The end-to-end energy analysis flow of Fig. 1.

The paper's flow: estimate the power of every block as accurately as
possible, feed the figures to the evaluation tool to obtain per-block energy
over the wheel round, apply advanced optimizations to the blocks that
deserve them, re-estimate the total, then integrate the model of the energy
source and emulate the energy balance over a long timing window to identify
the operating windows.  :class:`EnergyAnalysisFlow` executes those steps in
order and returns every intermediate artifact in a :class:`FlowReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis, EnergyBalanceCurve
from repro.core.emulator import EmulationResult, NodeEmulator
from repro.core.evaluator import EnergyEvaluator, RevolutionEnergyReport
from repro.core.operating_window import (
    OperatingWindowSummary,
    find_operating_windows,
    summarize_windows,
)
from repro.errors import AnalysisError
from repro.optimization.apply import OptimizationOutcome, apply_assignments
from repro.optimization.selection import SelectionPolicy, select_techniques
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger
from repro.scavenger.storage import StorageElement
from repro.timing.duty_cycle import DutyCycleReport
from repro.vehicle.drive_cycle import DriveCycle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.scenario.spec import ScenarioSpec

#: Default speed grid of the balance step (km/h), matching the Fig. 2 range.
DEFAULT_SPEED_GRID = tuple(float(v) for v in range(5, 205, 5))

#: Sentinel distinguishing "argument omitted" from an explicit ``None`` in
#: :meth:`EnergyAnalysisFlow.run`, so a spec-built flow can still be asked to
#: skip its default drive cycle by passing ``drive_cycle=None``.
_UNSET: object = object()


@dataclass
class FlowReport:
    """Every artifact produced by one run of the analysis flow."""

    node_name: str
    point: OperatingPoint
    power_table: list[dict[str, object]] = field(default_factory=list)
    energy_report: RevolutionEnergyReport | None = None
    duty_cycles: DutyCycleReport | None = None
    optimization: OptimizationOutcome | None = None
    energy_report_after: RevolutionEnergyReport | None = None
    balance_before: EnergyBalanceCurve | None = None
    balance_after: EnergyBalanceCurve | None = None
    emulation: EmulationResult | None = None
    window_summary: OperatingWindowSummary | None = None

    @property
    def break_even_before_kmh(self) -> float | None:
        """Break-even speed of the un-optimized design."""
        if self.balance_before is None:
            return None
        return self.balance_before.break_even_speed_kmh()

    @property
    def break_even_after_kmh(self) -> float | None:
        """Break-even speed after the optimization step."""
        if self.balance_after is None:
            return None
        return self.balance_after.break_even_speed_kmh()

    def summary(self) -> dict[str, object]:
        """Scalar summary of the whole flow (the numbers a report leads with)."""
        summary: dict[str, object] = {"architecture": self.node_name}
        if self.energy_report is not None:
            summary["energy_per_rev_uj"] = self.energy_report.total_energy_j * 1e6
        if self.optimization is not None:
            summary["optimized_energy_per_rev_uj"] = (
                self.optimization.energy_after_j * 1e6
            )
            summary["energy_saving_pct"] = self.optimization.saving_fraction * 100.0
            summary["techniques_applied"] = len(self.optimization.assignments)
        if self.break_even_before_kmh is not None:
            summary["break_even_before_kmh"] = self.break_even_before_kmh
        if self.break_even_after_kmh is not None:
            summary["break_even_after_kmh"] = self.break_even_after_kmh
        if self.emulation is not None:
            summary["moving_active_fraction_pct"] = (
                self.emulation.moving_active_fraction * 100.0
            )
            summary["brownout_events"] = self.emulation.brownout_events
        if self.window_summary is not None:
            summary["operating_windows"] = self.window_summary.window_count
        return summary


class EnergyAnalysisFlow:
    """Executes the Fig. 1 flow on one architecture.

    Args:
        node: the Sensor Node architecture.
        database: per-block power characterization ("as accurate as possible"
            estimation of the paper's first step).
        scavenger: energy-source model for the balance and emulation steps.
        storage: storage element for the long-window emulation; when omitted
            the emulation step is skipped.
        policy: optimization-technique selection policy.
    """

    def __init__(
        self,
        node: SensorNode,
        database: PowerDatabase,
        scavenger: EnergyScavenger,
        storage: StorageElement | None = None,
        policy: SelectionPolicy | None = None,
    ) -> None:
        self.node = node
        self.database = database
        self.scavenger = scavenger
        self.storage = storage
        self.policy = policy or SelectionPolicy()
        #: Defaults installed by :meth:`from_spec`; ``run`` falls back to
        #: them when ``point`` / ``drive_cycle`` are omitted.
        self.default_point: OperatingPoint | None = None
        self.default_cycle: DriveCycle | None = None

    @classmethod
    def from_spec(
        cls, spec: "ScenarioSpec", policy: SelectionPolicy | None = None
    ) -> "EnergyAnalysisFlow":
        """Build the flow from a declarative :class:`ScenarioSpec`.

        The spec's environment becomes the default operating point of
        :meth:`run` and the spec's drive cycle (when named) becomes the
        default emulation cycle, so ``EnergyAnalysisFlow.from_spec(spec).run()``
        executes exactly the experiment the scenario document describes.
        """
        flow = cls(
            spec.build_node(),
            spec.build_database(),
            spec.build_scavenger(),
            storage=spec.build_storage(),
            policy=policy,
        )
        flow.default_point = spec.operating_point()
        # A spec without storage promises "skip emulation", so its cycle (if
        # any) must not become a default that would make run() demand storage.
        if flow.storage is not None:
            flow.default_cycle = spec.build_drive_cycle()
        return flow

    def run(
        self,
        point: OperatingPoint | None = None,
        speeds_kmh: Sequence[float] | None = None,
        drive_cycle: DriveCycle | None = _UNSET,  # type: ignore[assignment]
        optimize: bool = True,
    ) -> FlowReport:
        """Run the full flow and return every artifact.

        Args:
            point: working condition of the estimation/evaluation steps
                (nominal 60 km/h by default).
            speeds_kmh: speed grid of the balance step (Fig. 2 range by
                default).
            drive_cycle: cruising-speed profile of the emulation step;
                requires ``storage`` to have been provided.  When omitted, a
                flow built by :meth:`from_spec` plays the spec's cycle; pass
                ``None`` explicitly to skip the emulation step.
            optimize: set to False to stop after the evaluation step (useful
                when the caller only wants the un-optimized picture).
        """
        condition = point or self.default_point or OperatingPoint(speed_kmh=60.0)
        if drive_cycle is _UNSET:
            drive_cycle = self.default_cycle
        if not condition.is_moving:
            raise AnalysisError("the analysis flow needs a moving operating point")
        grid = np.asarray(
            speeds_kmh if speeds_kmh is not None else DEFAULT_SPEED_GRID, dtype=float
        )
        if grid.size < 2:
            raise AnalysisError("the balance step needs at least two speeds")

        report = FlowReport(node_name=self.node.name, point=condition)

        # Step 1 — power estimation collected into the spreadsheet.
        evaluator = EnergyEvaluator(self.node, self.database)
        report.power_table = evaluator.database.table(condition)

        # Step 2 — energy evaluation over the wheel round + duty cycles.
        report.energy_report = evaluator.average_report(condition)
        report.duty_cycles = evaluator.duty_cycles(condition)

        # Step 3/4 — technique selection, application and re-estimation.
        database_for_integration = self.database
        if optimize:
            assignments = select_techniques(
                report.duty_cycles, policy=self.policy, database=self.database
            )
            report.optimization = apply_assignments(
                self.node, self.database, assignments, point=condition
            )
            database_for_integration = report.optimization.database
            report.energy_report_after = EnergyEvaluator(
                self.node, database_for_integration
            ).average_report(condition)

        # Step 5 — integration with the energy-source model (Fig. 2 curves).
        def point_factory(speed: float) -> OperatingPoint:
            return condition.at_speed(speed)
        report.balance_before = EnergyBalanceAnalysis(
            self.node, self.database, self.scavenger
        ).curve(grid, point_factory=point_factory)
        if optimize:
            report.balance_after = EnergyBalanceAnalysis(
                self.node, database_for_integration, self.scavenger
            ).curve(grid, point_factory=point_factory)

        # Step 6 — long-window emulation and operating windows.
        if drive_cycle is not None:
            if self.storage is None:
                raise AnalysisError(
                    "a storage element is required for the emulation step"
                )
            emulator = NodeEmulator(
                self.node,
                database_for_integration,
                self.scavenger,
                self.storage,
                base_point=condition,
            )
            report.emulation = emulator.emulate(drive_cycle)
            windows = find_operating_windows(report.emulation)
            report.window_summary = summarize_windows(
                windows, report.emulation.duration_s
            )
        return report
