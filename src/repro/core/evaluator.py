"""Per-block, per-wheel-round energy evaluation.

This is the evaluation tool at the centre of the paper's flow: it takes the
per-block power figures from the database and the temporal information from
the node's intra-revolution schedule, and produces the energy contribution of
every block over the basic timing unit (the wheel round).

Two evaluation paths are provided and cross-checked by the tests:

* :meth:`EnergyEvaluator.revolution_report` integrates an *explicit* schedule
  for one specific revolution index — exact, used by the emulator;
* :meth:`EnergyEvaluator.average_report` exploits the linearity of energy in
  the phase durations to average over the conditional phases (transmission
  every N rounds, slow-sensor refreshes, NVM writes) analytically — fast,
  used by the speed sweeps of the balance analysis.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend import resolve_backend
from repro.blocks.node import SensorNode
from repro.conditions.batch import BatchConditions
from repro.conditions.operating_point import OperatingPoint
from repro.errors import AnalysisError
from repro.power.compiled import CompiledPowerTable
from repro.power.database import PowerDatabase
from repro.timing.duty_cycle import DutyCycleReport, duty_cycle_report
from repro.timing.schedule import RevolutionSchedule

#: Cross-instance census-timing cache: node -> {speed -> (period_s, census,
#: signature)}.  Schedule feasibility, phase durations and the wheel period
#: are pure functions of the (immutable, frozen) node and the speed, so
#: repeated exploration/study runs — which build a fresh ``EnergyEvaluator``
#: per (architecture, workload, database) triple — share the timing work
#: instead of re-validating the same speeds per instance.  Keys are held
#: weakly: entries die with the node object they describe.  Only successful
#: (feasible) timings are cached; infeasible speeds keep raising through a
#: fresh ``schedule_for`` so error behaviour is unchanged.
_CENSUS_TIMING_CACHE: "weakref.WeakKeyDictionary[SensorNode, dict[float, tuple]]" = (
    weakref.WeakKeyDictionary()
)
_CENSUS_TIMING_LOCK = threading.Lock()


def clear_census_timing_cache() -> None:
    """Drop every cached census timing (test isolation hook)."""
    with _CENSUS_TIMING_LOCK:
        _CENSUS_TIMING_CACHE.clear()


def _census_signature(census) -> tuple:
    """Speed-independent structure of a phase census (names, weights, modes)."""
    return tuple(
        (
            phase.name,
            weight,
            tuple(sorted(phase.block_modes.items())),
            tuple(sorted(phase.activities.items())),
        )
        for phase, weight in census
    )


def _census_timing(node: SensorNode, speed_kmh: float) -> tuple:
    """Cached ``(period_s, census, signature)`` of ``node`` at one speed.

    On a cache miss this validates schedule feasibility exactly like the
    scalar path (the worst-case revolution-0 build raises ``ScheduleError``
    for unsustainable speeds — such speeds are never cached) and walks the
    phase census once; every later evaluator instance for an equal node
    reuses the result.
    """
    with _CENSUS_TIMING_LOCK:
        per_node = _CENSUS_TIMING_CACHE.get(node)
        if per_node is not None:
            cached = per_node.get(speed_kmh)
            if cached is not None:
                return cached
    # Like the scalar path, the worst-case revolution validates that the busy
    # phases fit in the wheel round at this speed.
    node.schedule_for(speed_kmh, revolution_index=0)
    census = tuple(node.phase_census(speed_kmh))
    entry = (
        node.wheel.revolution_period_s(speed_kmh),
        census,
        _census_signature(census),
    )
    with _CENSUS_TIMING_LOCK:
        _CENSUS_TIMING_CACHE.setdefault(node, {})[speed_kmh] = entry
    return entry


@dataclass(frozen=True)
class BlockEnergy:
    """Energy contribution of one block over one wheel round."""

    block: str
    dynamic_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        """Total energy of the block over the round."""
        return self.dynamic_j + self.static_j

    @property
    def static_fraction(self) -> float:
        """Leakage share of the block energy."""
        total = self.total_j
        if total == 0.0:
            return 0.0
        return self.static_j / total


@dataclass(frozen=True)
class PhaseEnergy:
    """Energy spent in one phase of the wheel round (all blocks together)."""

    phase: str
    duration_s: float
    energy_j: float
    average_power_w: float


@dataclass(frozen=True)
class RevolutionEnergyReport:
    """Complete energy picture of one (or one average) wheel round.

    Attributes:
        node_name: architecture the report refers to.
        speed_kmh: cruising speed.
        period_s: wheel-round period.
        blocks: per-block energy contributions.
        phases: per-phase energy contributions (empty for averaged reports,
            where conditional phases make a single per-phase number
            ill-defined).
        point: working conditions of the evaluation.
    """

    node_name: str
    speed_kmh: float
    period_s: float
    blocks: tuple[BlockEnergy, ...]
    phases: tuple[PhaseEnergy, ...]
    point: OperatingPoint

    @property
    def total_energy_j(self) -> float:
        """Total node energy over the wheel round."""
        return sum(block.total_j for block in self.blocks)

    @property
    def dynamic_energy_j(self) -> float:
        """Dynamic part of the node energy."""
        return sum(block.dynamic_j for block in self.blocks)

    @property
    def static_energy_j(self) -> float:
        """Static (leakage) part of the node energy."""
        return sum(block.static_j for block in self.blocks)

    @property
    def average_power_w(self) -> float:
        """Average node power over the wheel round."""
        return self.total_energy_j / self.period_s

    def energy_of(self, block: str) -> BlockEnergy:
        """Energy entry of one block."""
        for entry in self.blocks:
            if entry.block == block:
                return entry
        raise AnalysisError(f"no energy entry for block {block!r}")

    def dominant_blocks(self, count: int = 3) -> list[BlockEnergy]:
        """The ``count`` blocks with the largest total energy."""
        return sorted(self.blocks, key=lambda b: b.total_j, reverse=True)[:count]

    def as_rows(self) -> list[dict[str, object]]:
        """Tabular view (one row per block) for reports and exports."""
        rows = []
        for block in sorted(self.blocks, key=lambda b: b.total_j, reverse=True):
            rows.append(
                {
                    "block": block.block,
                    "dynamic_uj": block.dynamic_j * 1e6,
                    "static_uj": block.static_j * 1e6,
                    "total_uj": block.total_j * 1e6,
                    "share_pct": 100.0 * block.total_j / self.total_energy_j
                    if self.total_energy_j > 0.0
                    else 0.0,
                }
            )
        return rows


@dataclass(frozen=True, eq=False)
class EnergyGrid:
    """Vectorized energy evaluation over a speed x temperature grid.

    Attributes:
        node_name: architecture the grid refers to.
        speeds_kmh: the ``(S,)`` speed axis.
        temperatures_c: the ``(T,)`` temperature axis.
        dynamic_j: dynamic energy per wheel round, shape ``(S, T)``.
        static_j: static energy per wheel round, shape ``(S, T)``.
        period_s: wheel-round period per speed, shape ``(S,)``.
    """

    node_name: str
    speeds_kmh: np.ndarray
    temperatures_c: np.ndarray
    dynamic_j: np.ndarray
    static_j: np.ndarray
    period_s: np.ndarray

    @property
    def energy_j(self) -> np.ndarray:
        """Total energy per wheel round, shape ``(S, T)``."""
        return self.dynamic_j + self.static_j

    @property
    def average_power_w(self) -> np.ndarray:
        """Average node power at each grid point, shape ``(S, T)``."""
        return self.energy_j / self.period_s[:, None]

    @property
    def static_fraction(self) -> np.ndarray:
        """Leakage share of the energy at each grid point (0 where total is 0)."""
        total = self.energy_j
        return np.divide(
            self.static_j, total, out=np.zeros_like(total), where=total > 0.0
        )


class EnergyEvaluator:
    """Evaluates node energy per wheel round from a power database.

    The evaluator re-targets the database to the node's clock choices once at
    construction (see :meth:`SensorNode.adapt_database`), so the same
    instance can be reused across speeds and conditions cheaply.

    Two families of APIs are exposed:

    * the scalar path (:meth:`average_report`, :meth:`schedule_report`,
      :meth:`standstill_power_w`) evaluates one :class:`OperatingPoint` at a
      time through ``PowerEntry.breakdown`` — this is the reference
      implementation;
    * the batch path (:meth:`average_energy_sweep`,
      :meth:`standstill_power_sweep`, :meth:`energy_grid`) evaluates arrays
      of conditions through the lazily-built :class:`CompiledPowerTable` in a
      handful of vectorized expressions.  Sweep consumers (balance curves,
      spreadsheet sweeps, design-space exploration) use this path; its
      results match the scalar path to floating-point round-off.
    """

    def __init__(
        self,
        node: SensorNode,
        database: PowerDatabase,
        backend=None,
    ) -> None:
        self.node = node
        #: The database as handed in, before re-targeting; lets callers that
        #: share evaluators check they were built from the same source.
        self.source_database = database
        self.database = node.adapt_database(database)
        #: The array backend executing the batch kernel (an execution
        #: policy: argument > REPRO_ARRAY_BACKEND > numpy; never part of
        #: ``evaluator_group_key`` or any digest).  The default numpy
        #: backend delegates to the compiled table verbatim, so results are
        #: bit-identical to an unparameterized evaluator.
        self.backend = resolve_backend(backend)
        self._compiled: CompiledPowerTable | None = None
        self._compiled_from: PowerDatabase | None = None
        self._compiled_version = -1
        # Parallel studies share one evaluator across worker threads; the
        # lock keeps the lazy table compilation single-flight (the compiled
        # table itself is immutable and safe to read concurrently).
        self._compile_lock = threading.Lock()

    @property
    def compiled(self) -> CompiledPowerTable:
        """Compiled (flattened, vectorizable) view of the adapted database.

        Rebuilt automatically when the adapted database is mutated in place
        (``add``/``remove`` bump its version counter) or when ``database`` is
        rebound to a different object, so the batch APIs can never silently
        diverge from the scalar path on the same evaluator.  Thread-safe:
        concurrent study workers compile the table at most once.
        """
        version = self.database._version
        if (
            self._compiled is None
            or self._compiled_from is not self.database
            or self._compiled_version != version
        ):
            with self._compile_lock:
                version = self.database._version
                if (
                    self._compiled is None
                    or self._compiled_from is not self.database
                    or self._compiled_version != version
                ):
                    self._compiled = CompiledPowerTable.from_database(self.database)
                    self._compiled_from = self.database
                    self._compiled_version = version
        return self._compiled

    # -- exact evaluation of one specific revolution ---------------------------

    def schedule_report(
        self,
        schedule: RevolutionSchedule,
        point: OperatingPoint,
        activity_scale: float = 1.0,
    ) -> RevolutionEnergyReport:
        """Energy report of one explicit schedule.

        ``activity_scale`` is the per-evaluation workload-intensity knob: it
        multiplies the activity factor of every block a phase overrides out
        of its resting mode (blocks left resting, and the implicit sleep
        remainder, are unaffected).  The default of 1.0 reproduces the plain
        schedule energy; the batch sweep APIs treat this method as their
        scalar reference for per-point activity.
        """
        if not activity_scale >= 0.0:
            raise AnalysisError("activity scale must be non-negative")
        resting = self.node.resting_modes()
        block_dynamic = {block: 0.0 for block in resting}
        block_static = {block: 0.0 for block in resting}
        phase_energies: list[PhaseEnergy] = []

        for phase in schedule.iter_phases():
            phase_total = 0.0
            for block, resting_mode in resting.items():
                mode = phase.mode_of(block, resting_mode)
                activity = phase.activity_of(block)
                if block in phase.block_modes:
                    activity *= activity_scale
                breakdown = self.database.power(
                    block, mode, point, activity=activity
                )
                block_dynamic[block] += breakdown.dynamic_w * phase.duration_s
                block_static[block] += breakdown.static_w * phase.duration_s
                phase_total += breakdown.total_w * phase.duration_s
            average = phase_total / phase.duration_s if phase.duration_s > 0.0 else 0.0
            phase_energies.append(
                PhaseEnergy(
                    phase=phase.name,
                    duration_s=phase.duration_s,
                    energy_j=phase_total,
                    average_power_w=average,
                )
            )

        blocks = tuple(
            BlockEnergy(block=name, dynamic_j=block_dynamic[name], static_j=block_static[name])
            for name in sorted(resting)
        )
        return RevolutionEnergyReport(
            node_name=self.node.name,
            speed_kmh=point.speed_kmh,
            period_s=schedule.period_s,
            blocks=blocks,
            phases=tuple(phase_energies),
            point=point,
        )

    def revolution_report(
        self, point: OperatingPoint, revolution_index: int = 0
    ) -> RevolutionEnergyReport:
        """Exact energy report of the wheel round ``revolution_index`` at ``point``."""
        schedule = self.node.schedule_for(point.speed_kmh, revolution_index)
        return self.schedule_report(schedule, point)

    # -- analytic average over the conditional phases ---------------------------

    def average_report(self, point: OperatingPoint) -> RevolutionEnergyReport:
        """Average energy report per wheel round at ``point``.

        Energy is linear in the phase durations, so the average over many
        revolutions equals the resting-mode energy over the full period plus
        the occurrence-weighted incremental energy of every possible phase.
        """
        if not point.is_moving:
            raise AnalysisError("the average report requires a moving vehicle")
        # Building the worst-case revolution (index 0: transmission, slow
        # sensor refresh) validates that the busy phases actually fit inside
        # the wheel round at this speed; an infeasible architecture must fail
        # here rather than produce a silently wrong average.
        self.node.schedule_for(point.speed_kmh, revolution_index=0)
        period = self.node.wheel.revolution_period_s(point.speed_kmh)
        resting = self.node.resting_modes()

        block_dynamic: dict[str, float] = {}
        block_static: dict[str, float] = {}
        resting_power = {}
        for block, resting_mode in resting.items():
            breakdown = self.database.power(block, resting_mode, point)
            resting_power[block] = breakdown
            block_dynamic[block] = breakdown.dynamic_w * period
            block_static[block] = breakdown.static_w * period

        for phase, weight in self.node.phase_census(point.speed_kmh):
            for block, mode in phase.block_modes.items():
                active = self.database.power(
                    block, mode, point, activity=phase.activity_of(block)
                )
                rest = resting_power[block]
                block_dynamic[block] += (
                    weight * (active.dynamic_w - rest.dynamic_w) * phase.duration_s
                )
                block_static[block] += (
                    weight * (active.static_w - rest.static_w) * phase.duration_s
                )

        blocks = tuple(
            BlockEnergy(
                block=name,
                dynamic_j=max(0.0, block_dynamic[name]),
                static_j=max(0.0, block_static[name]),
            )
            for name in sorted(resting)
        )
        return RevolutionEnergyReport(
            node_name=self.node.name,
            speed_kmh=point.speed_kmh,
            period_s=period,
            blocks=blocks,
            phases=(),
            point=point,
        )

    # -- convenience figures -----------------------------------------------------

    def energy_per_revolution_j(self, point: OperatingPoint) -> float:
        """Average node energy per wheel round at ``point``."""
        return self.average_report(point).total_energy_j

    def average_power_w(self, point: OperatingPoint) -> float:
        """Average node power at ``point`` while the vehicle is moving."""
        return self.average_report(point).average_power_w

    def standstill_power_w(self, point: OperatingPoint) -> float:
        """Node power with the vehicle stationary (every block resting)."""
        return self.database.total_power(self.node.resting_modes(), point).total_w

    def load_current_a(self, point: OperatingPoint, rail_voltage_v: float | None = None) -> float:
        """Average load current the node draws from its storage element.

        The paper's flow integrates the source model with *"the estimation of
        total load current"*; this is that figure, referred through the PMU
        regulator efficiency to the storage voltage (the core rail voltage by
        default).
        """
        voltage = rail_voltage_v if rail_voltage_v is not None else point.supply_voltage
        if voltage <= 0.0:
            raise AnalysisError("rail voltage must be positive")
        power = self.average_power_w(point)
        return self.node.pmu.referred_to_storage(power) / voltage

    def duty_cycles(
        self, point: OperatingPoint, revolution_index: int = 0
    ) -> DutyCycleReport:
        """Per-block duty-cycle report for one wheel round at ``point``."""
        schedule = self.node.schedule_for(point.speed_kmh, revolution_index)
        return duty_cycle_report(schedule, self.database, point)

    # -- vectorized batch evaluation ----------------------------------------------

    def _as_batch(self, points) -> BatchConditions:
        if isinstance(points, BatchConditions):
            return points
        return BatchConditions.from_points(points)

    def _scalar_components_fallback(
        self, batch: BatchConditions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference fallback: one scalar ``average_report`` per point."""
        if np.any(batch.activity != 1.0):
            # ``point_at`` cannot carry a workload activity factor, so the
            # scalar fallback has no reference semantics for it.
            raise AnalysisError(
                "per-point activity factors require a speed-independent phase "
                "structure (the node's census changes with speed)"
            )
        count = len(batch)
        dynamic = np.empty(count)
        static = np.empty(count)
        period = np.empty(count)
        for i in range(count):
            point = batch.point_at(i)
            report = self.average_report(point)
            dynamic[i] = report.dynamic_energy_j
            static[i] = report.static_energy_j
            period[i] = report.period_s
        return dynamic, static, period

    def _batch_average_components(
        self, batch: BatchConditions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-point (dynamic_j, static_j, period_s) of the average wheel round.

        The computation mirrors :meth:`average_report` exactly — resting
        energy over the full period plus the occurrence-weighted incremental
        energy of every conditional phase, clamped at zero per block — but
        evaluates every operating point in the batch simultaneously.  Timing
        quantities (schedule feasibility, phase durations, wheel period) are
        computed once per *unique speed* and shared across evaluator
        instances through the module-level census-timing cache; power
        quantities are evaluated in single vectorized expressions over all
        points.  A per-point ``batch.activity`` factor scales the activity of
        every block a phase overrides out of its resting mode, mirroring
        :meth:`schedule_report`'s ``activity_scale``.
        """
        if len(batch) == 0:
            empty = np.empty(0)
            return empty, empty.copy(), empty.copy()
        if np.any(batch.speed_kmh <= 0.0):
            raise AnalysisError("the average report requires a moving vehicle")

        unique_speeds, inverse = np.unique(batch.speed_kmh, return_inverse=True)
        periods_u = np.empty(len(unique_speeds))
        census0 = None
        signature = None
        durations_u: np.ndarray | None = None
        for j, speed in enumerate(unique_speeds):
            period, census, census_sig = _census_timing(self.node, float(speed))
            if census0 is None:
                census0 = census
                signature = census_sig
                durations_u = np.empty((len(census), len(unique_speeds)))
            elif census_sig != signature:
                # The phase structure changed with speed (a custom node);
                # vectorizing over speeds would be wrong, so defer to the
                # scalar reference path.
                return self._scalar_components_fallback(batch)
            durations_u[:, j] = [phase.duration_s for phase, _ in census]
            periods_u[j] = period

        table = self.compiled
        resting = self.node.resting_modes()
        block_names = sorted(resting)
        block_pos = {name: i for i, name in enumerate(block_names)}
        rest_rows = table.rows([(name, resting[name]) for name in block_names])

        override_keys: list[tuple[str, str]] = []
        override_pos: dict[tuple[str, str], int] = {}
        for phase, _weight in census0:
            for block, mode in phase.block_modes.items():
                key = (block, mode)
                if key not in override_pos:
                    override_pos[key] = len(override_keys)
                    override_keys.append(key)

        dyn_rest, stat_rest = table.breakdown_components(
            rest_rows,
            batch.supply_v,
            batch.temperature_c,
            process_dynamic=batch.dynamic_factor,
            process_leakage=batch.leakage_factor,
        )
        if override_keys:
            override_rows = table.rows(override_keys)
            dyn_over, stat_over = table.breakdown_components(
                override_rows,
                batch.supply_v,
                batch.temperature_c,
                process_dynamic=batch.dynamic_factor,
                process_leakage=batch.leakage_factor,
            )
        else:  # every phase runs in resting modes; keep the arrays bound
            override_rows = np.empty(0, dtype=np.intp)
            dyn_over = np.empty((0, len(batch)))
            stat_over = np.empty((0, len(batch)))

        period = periods_u[inverse]
        block_dynamic = dyn_rest * period[None, :]
        block_static = stat_rest * period[None, :]
        has_activity = bool(np.any(batch.activity != 1.0))
        for k, (phase, weight) in enumerate(census0):
            duration = durations_u[k][inverse]
            for block, mode in phase.block_modes.items():
                b = block_pos[block]
                i = override_pos[(block, mode)]
                active_dynamic = dyn_over[i]
                activity = phase.activity_of(block)
                if has_activity or activity != 1.0:
                    row = override_rows[i]
                    active_dynamic = active_dynamic * (
                        (activity * batch.activity) ** table.activity_exponent[row]
                    )
                block_dynamic[b] += weight * (active_dynamic - dyn_rest[b]) * duration
                block_static[b] += weight * (stat_over[i] - stat_rest[b]) * duration

        np.maximum(block_dynamic, 0.0, out=block_dynamic)
        np.maximum(block_static, 0.0, out=block_static)
        return block_dynamic.sum(axis=0), block_static.sum(axis=0), period

    def average_components_sweep(
        self, points: Sequence[OperatingPoint] | BatchConditions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch (dynamic_j, static_j, period_s) arrays of the average round."""
        return self._batch_average_components(self._as_batch(points))

    def average_energy_sweep(
        self, points: Sequence[OperatingPoint] | BatchConditions
    ) -> np.ndarray:
        """Average energy per wheel round at every point, shape ``(N,)``.

        Vectorized equivalent of calling :meth:`energy_per_revolution_j` per
        point; results agree with the scalar path to round-off.
        """
        dynamic, static, _period = self._batch_average_components(self._as_batch(points))
        return dynamic + static

    def average_power_sweep(
        self, points: Sequence[OperatingPoint] | BatchConditions
    ) -> np.ndarray:
        """Average node power at every (moving) point, shape ``(N,)``."""
        dynamic, static, period = self._batch_average_components(self._as_batch(points))
        return (dynamic + static) / period

    def standstill_power_sweep(
        self, points: Sequence[OperatingPoint] | BatchConditions
    ) -> np.ndarray:
        """Resting-mode node power at every point, shape ``(N,)``.

        Vectorized equivalent of :meth:`standstill_power_w`; speed is
        irrelevant (every block rests), so points may be stationary.
        """
        batch = self._as_batch(points)
        if len(batch) == 0:
            return np.empty(0)
        resting = self.node.resting_modes()
        rows = self.compiled.rows(list(resting.items()))
        return self.compiled.total_power_w(
            rows,
            batch.supply_v,
            batch.temperature_c,
            process_dynamic=batch.dynamic_factor,
            process_leakage=batch.leakage_factor,
        )

    def energy_grid(
        self,
        speeds_kmh,
        temperatures_c,
        base_point: OperatingPoint | None = None,
    ) -> EnergyGrid:
        """Vectorized energy evaluation over a speed x temperature grid.

        Supply and process conditions come from ``base_point``; the grid is
        evaluated without allocating a single per-point object, which makes
        condition-sweep workloads O(array ops) instead of
        O(points x blocks x modes) Python dispatch.
        """
        speeds = np.asarray(speeds_kmh, dtype=np.float64)
        temperatures = np.asarray(temperatures_c, dtype=np.float64)
        if speeds.size == 0 or temperatures.size == 0:
            raise AnalysisError("the energy grid needs at least one speed and one temperature")
        batch = BatchConditions.grid(speeds, temperatures, base_point=base_point)
        dynamic, static, period = self._batch_average_components(batch)
        shape = (len(speeds), len(temperatures))
        return EnergyGrid(
            node_name=self.node.name,
            speeds_kmh=speeds,
            temperatures_c=temperatures,
            dynamic_j=dynamic.reshape(shape),
            static_j=static.reshape(shape),
            period_s=period.reshape(shape)[:, 0],
        )

    def _schedule_energy_batch(
        self,
        batch: BatchConditions,
        schedules: Sequence[RevolutionSchedule],
        include_phases: bool = False,
    ) -> tuple[np.ndarray, list[tuple[tuple[str, float, float], ...]] | None]:
        """Shared kernel: energies of N (condition, schedule) pairs.

        Every (block, mode) row of the compiled table is evaluated against
        all N condition points in ONE vectorized ``breakdown_components``
        call; the per-phase accumulation then runs once per distinct *phase
        structure* (phase names, mode overrides, activities — durations may
        differ per point, so schedules at different speeds share a group)
        with elementwise array arithmetic in exactly the operation order of
        the scalar loop.  A batch of one point is therefore bit-identical to
        the scalar path; the only structural difference — points whose
        implicit resting remainder is empty still accumulate ``power * 0.0``
        — adds an exact IEEE ``+0.0`` and cannot change any bit either.
        ``batch.activity`` scales the activity factor of every block a phase
        overrides out of its resting mode (see :meth:`schedule_report`).
        """
        count = len(batch)
        if len(schedules) != count:
            raise AnalysisError("one schedule per batch point is required")
        energies = np.zeros(count, dtype=self.backend.dtype)
        phase_lists: list[tuple[tuple[str, float, float], ...]] | None = (
            [()] * count if include_phases else None
        )
        if count == 0:
            return energies, phase_lists
        table = self.compiled
        # The dense (rows x points) power matrices come from the array
        # backend seam; the numpy default delegates to the compiled table
        # verbatim, so the accumulation below sees bit-identical inputs.
        dyn_all, stat_all = self.backend.breakdown_components(
            table,
            np.arange(len(table)),
            batch.supply_v,
            batch.temperature_c,
            batch.dynamic_factor,
            batch.leakage_factor,
        )
        exponents = table.activity_exponent
        resting = self.node.resting_modes()

        # Group points by the phase *structure* of their schedule.  Signature
        # and durations are computed once per distinct schedule object, so
        # callers that reuse schedule objects across points pay the Python
        # walk once.
        info_by_id: dict[int, tuple] = {}
        group_points: dict[tuple, list[int]] = {}
        for index, schedule in enumerate(schedules):
            info = info_by_id.get(id(schedule))
            if info is None:
                signature = (
                    schedule.resting_phase_name,
                    tuple(
                        (
                            phase.name,
                            tuple(sorted(phase.block_modes.items())),
                            tuple(sorted(phase.activities.items())),
                        )
                        for phase in schedule.phases
                    ),
                )
                info = (
                    signature,
                    tuple(phase.duration_s for phase in schedule.phases),
                    schedule.resting_duration_s,
                    schedule,
                )
                info_by_id[id(schedule)] = info
            group_points.setdefault(info[0], []).append(index)

        for indices in group_points.values():
            idx = np.asarray(indices, dtype=np.intp)
            width = len(idx)
            representative: RevolutionSchedule = info_by_id[id(schedules[indices[0]])][3]
            durations = np.empty((len(representative.phases), width))
            rest = np.empty(width)
            for position, index in enumerate(indices):
                _signature, phase_durations, rest_s, _schedule = info_by_id[
                    id(schedules[index])
                ]
                durations[:, position] = phase_durations
                rest[position] = rest_s
            scale = batch.activity[idx]
            plain = bool(np.all(scale == 1.0))
            # Accumulators follow the backend's precision policy; the
            # default float64 allocation is unchanged from the pre-seam code.
            total = np.zeros(width, dtype=self.backend.dtype)
            accumulated: list[tuple[str, np.ndarray | None, np.ndarray]] = []
            for k, phase in enumerate(representative.phases):
                power = np.zeros(width, dtype=self.backend.dtype)
                for block, resting_mode in resting.items():
                    mode = phase.mode_of(block, resting_mode)
                    row = table.row(block, mode)
                    dynamic_w = dyn_all[row, idx]
                    activity = phase.activity_of(block)
                    if block in phase.block_modes:
                        if not plain or activity != 1.0:
                            dynamic_w = dynamic_w * (
                                (activity * scale) ** exponents[row]
                            )
                    elif activity != 1.0:
                        dynamic_w = dynamic_w * (activity ** exponents[row])
                    power += dynamic_w + stat_all[row, idx]
                total += power * durations[k]
                if include_phases:
                    accumulated.append((phase.name, durations[k], power))
            if np.any(rest > 0.0) or include_phases:
                power = np.zeros(width, dtype=self.backend.dtype)
                for block, resting_mode in resting.items():
                    row = table.row(block, resting_mode)
                    power += dyn_all[row, idx] + stat_all[row, idx]
                total += power * rest
                if include_phases:
                    accumulated.append((representative.resting_phase_name, None, power))
            energies[idx] = total
            if phase_lists is not None:
                for position, index in enumerate(indices):
                    tuples: list[tuple[str, float, float]] = []
                    for name, duration_column, power in accumulated:
                        if duration_column is None:
                            # The implicit resting remainder: the scalar path
                            # only yields it when it is non-empty.
                            duration = float(rest[position])
                            if duration <= 0.0:
                                continue
                        else:
                            duration = float(duration_column[position])
                        tuples.append(
                            (
                                name,
                                duration,
                                float(power[position]) if duration > 0.0 else 0.0,
                            )
                        )
                    phase_lists[index] = tuple(tuples)
        return energies, phase_lists

    def schedule_energy_compiled(
        self,
        schedule: RevolutionSchedule,
        point: OperatingPoint,
        activity_scale: float = 1.0,
    ) -> tuple[float, tuple[tuple[str, float, float], ...]]:
        """Total energy and per-phase (name, duration, power) of one schedule.

        Compiled-table equivalent of :meth:`schedule_report` reduced to what
        the emulator's cache-miss path needs: the revolution energy plus the
        phase list used to reconstruct the instant-power trace.  This is the
        width-1 case of :meth:`_schedule_energy_batch` — sharing the kernel
        with the batch prefill and Monte-Carlo sweeps keeps the two paths
        bit-identical, which the emulator's byte-identical-log contract
        relies on.
        """
        batch = BatchConditions.from_arrays(
            [point.speed_kmh],
            [point.temperature_c],
            base_point=point,
            activity=[activity_scale],
        )
        energies, phases = self._schedule_energy_batch(
            batch, [schedule], include_phases=True
        )
        assert phases is not None
        return float(energies[0]), phases[0]

    def schedule_energy_sweep(
        self,
        points: Sequence[OperatingPoint] | BatchConditions,
        patterns,
        include_phases: bool = False,
    ):
        """Revolution energies of N (speed, temperature, activity, pattern) points.

        The workload-vectorized entry of the batch engine: ``points`` carries
        the per-point operating conditions (including the
        ``BatchConditions.activity`` workload factor) and ``patterns`` is an
        ``(N, 3)`` boolean array of per-point conditional-phase flags
        ``(transmits, refreshes_slow, writes_nvm)``.  One schedule is built
        per unique (speed, pattern) bin — schedule feasibility raises exactly
        like the scalar path — and every power figure is evaluated in a
        single vectorized pass over the compiled table, which is what makes
        Monte-Carlo workload sweeps and the emulator's cache prefill O(array
        ops) instead of O(points x blocks x phases) Python dispatch.

        Returns the ``(N,)`` energy array, or ``(energies, phase_lists)``
        when ``include_phases`` is true (one per-phase
        ``(name, duration_s, power_w)`` tuple list per point).  Results match
        :meth:`schedule_report` (same pattern, ``activity_scale`` = the
        point's activity) within 1e-9 relative tolerance.
        """
        batch = self._as_batch(points)
        pattern_arr = np.asarray(patterns)
        if pattern_arr.dtype != np.bool_:
            raise AnalysisError(
                "patterns must be boolean (transmits, refreshes_slow, writes_nvm) flags"
            )
        if pattern_arr.ndim != 2 or pattern_arr.shape[1] != 3:
            raise AnalysisError("patterns must be an (N, 3) boolean array")
        if pattern_arr.shape[0] != len(batch):
            raise AnalysisError("one phase pattern per batch point is required")
        schedules: list[RevolutionSchedule] = []
        built: dict[tuple[float, bool, bool, bool], RevolutionSchedule] = {}
        for index in range(len(batch)):
            key = (
                float(batch.speed_kmh[index]),
                bool(pattern_arr[index, 0]),
                bool(pattern_arr[index, 1]),
                bool(pattern_arr[index, 2]),
            )
            schedule = built.get(key)
            if schedule is None:
                schedule = self.node.schedule_for_pattern(
                    key[0],
                    transmits=key[1],
                    refreshes_slow=key[2],
                    writes_nvm=key[3],
                )
                built[key] = schedule
            schedules.append(schedule)
        energies, phase_lists = self._schedule_energy_batch(
            batch, schedules, include_phases=include_phases
        )
        if include_phases:
            return energies, phase_lists
        return energies
