"""Per-block, per-wheel-round energy evaluation.

This is the evaluation tool at the centre of the paper's flow: it takes the
per-block power figures from the database and the temporal information from
the node's intra-revolution schedule, and produces the energy contribution of
every block over the basic timing unit (the wheel round).

Two evaluation paths are provided and cross-checked by the tests:

* :meth:`EnergyEvaluator.revolution_report` integrates an *explicit* schedule
  for one specific revolution index — exact, used by the emulator;
* :meth:`EnergyEvaluator.average_report` exploits the linearity of energy in
  the phase durations to average over the conditional phases (transmission
  every N rounds, slow-sensor refreshes, NVM writes) analytically — fast,
  used by the speed sweeps of the balance analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.errors import AnalysisError
from repro.power.database import PowerDatabase
from repro.timing.duty_cycle import DutyCycleReport, duty_cycle_report
from repro.timing.schedule import RevolutionSchedule


@dataclass(frozen=True)
class BlockEnergy:
    """Energy contribution of one block over one wheel round."""

    block: str
    dynamic_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        """Total energy of the block over the round."""
        return self.dynamic_j + self.static_j

    @property
    def static_fraction(self) -> float:
        """Leakage share of the block energy."""
        total = self.total_j
        if total == 0.0:
            return 0.0
        return self.static_j / total


@dataclass(frozen=True)
class PhaseEnergy:
    """Energy spent in one phase of the wheel round (all blocks together)."""

    phase: str
    duration_s: float
    energy_j: float
    average_power_w: float


@dataclass(frozen=True)
class RevolutionEnergyReport:
    """Complete energy picture of one (or one average) wheel round.

    Attributes:
        node_name: architecture the report refers to.
        speed_kmh: cruising speed.
        period_s: wheel-round period.
        blocks: per-block energy contributions.
        phases: per-phase energy contributions (empty for averaged reports,
            where conditional phases make a single per-phase number
            ill-defined).
        point: working conditions of the evaluation.
    """

    node_name: str
    speed_kmh: float
    period_s: float
    blocks: tuple[BlockEnergy, ...]
    phases: tuple[PhaseEnergy, ...]
    point: OperatingPoint

    @property
    def total_energy_j(self) -> float:
        """Total node energy over the wheel round."""
        return sum(block.total_j for block in self.blocks)

    @property
    def dynamic_energy_j(self) -> float:
        """Dynamic part of the node energy."""
        return sum(block.dynamic_j for block in self.blocks)

    @property
    def static_energy_j(self) -> float:
        """Static (leakage) part of the node energy."""
        return sum(block.static_j for block in self.blocks)

    @property
    def average_power_w(self) -> float:
        """Average node power over the wheel round."""
        return self.total_energy_j / self.period_s

    def energy_of(self, block: str) -> BlockEnergy:
        """Energy entry of one block."""
        for entry in self.blocks:
            if entry.block == block:
                return entry
        raise AnalysisError(f"no energy entry for block {block!r}")

    def dominant_blocks(self, count: int = 3) -> list[BlockEnergy]:
        """The ``count`` blocks with the largest total energy."""
        return sorted(self.blocks, key=lambda b: b.total_j, reverse=True)[:count]

    def as_rows(self) -> list[dict[str, object]]:
        """Tabular view (one row per block) for reports and exports."""
        rows = []
        for block in sorted(self.blocks, key=lambda b: b.total_j, reverse=True):
            rows.append(
                {
                    "block": block.block,
                    "dynamic_uj": block.dynamic_j * 1e6,
                    "static_uj": block.static_j * 1e6,
                    "total_uj": block.total_j * 1e6,
                    "share_pct": 100.0 * block.total_j / self.total_energy_j
                    if self.total_energy_j > 0.0
                    else 0.0,
                }
            )
        return rows


class EnergyEvaluator:
    """Evaluates node energy per wheel round from a power database.

    The evaluator re-targets the database to the node's clock choices once at
    construction (see :meth:`SensorNode.adapt_database`), so the same
    instance can be reused across speeds and conditions cheaply.
    """

    def __init__(self, node: SensorNode, database: PowerDatabase) -> None:
        self.node = node
        self.database = node.adapt_database(database)

    # -- exact evaluation of one specific revolution ---------------------------

    def schedule_report(
        self,
        schedule: RevolutionSchedule,
        point: OperatingPoint,
    ) -> RevolutionEnergyReport:
        """Energy report of one explicit schedule."""
        resting = self.node.resting_modes()
        block_dynamic = {block: 0.0 for block in resting}
        block_static = {block: 0.0 for block in resting}
        phase_energies: list[PhaseEnergy] = []

        for phase in schedule.iter_phases():
            phase_total = 0.0
            for block, resting_mode in resting.items():
                mode = phase.mode_of(block, resting_mode)
                breakdown = self.database.power(
                    block, mode, point, activity=phase.activity_of(block)
                )
                block_dynamic[block] += breakdown.dynamic_w * phase.duration_s
                block_static[block] += breakdown.static_w * phase.duration_s
                phase_total += breakdown.total_w * phase.duration_s
            average = phase_total / phase.duration_s if phase.duration_s > 0.0 else 0.0
            phase_energies.append(
                PhaseEnergy(
                    phase=phase.name,
                    duration_s=phase.duration_s,
                    energy_j=phase_total,
                    average_power_w=average,
                )
            )

        blocks = tuple(
            BlockEnergy(block=name, dynamic_j=block_dynamic[name], static_j=block_static[name])
            for name in sorted(resting)
        )
        return RevolutionEnergyReport(
            node_name=self.node.name,
            speed_kmh=point.speed_kmh,
            period_s=schedule.period_s,
            blocks=blocks,
            phases=tuple(phase_energies),
            point=point,
        )

    def revolution_report(
        self, point: OperatingPoint, revolution_index: int = 0
    ) -> RevolutionEnergyReport:
        """Exact energy report of the wheel round ``revolution_index`` at ``point``."""
        schedule = self.node.schedule_for(point.speed_kmh, revolution_index)
        return self.schedule_report(schedule, point)

    # -- analytic average over the conditional phases ---------------------------

    def average_report(self, point: OperatingPoint) -> RevolutionEnergyReport:
        """Average energy report per wheel round at ``point``.

        Energy is linear in the phase durations, so the average over many
        revolutions equals the resting-mode energy over the full period plus
        the occurrence-weighted incremental energy of every possible phase.
        """
        if not point.is_moving:
            raise AnalysisError("the average report requires a moving vehicle")
        # Building the worst-case revolution (index 0: transmission, slow
        # sensor refresh) validates that the busy phases actually fit inside
        # the wheel round at this speed; an infeasible architecture must fail
        # here rather than produce a silently wrong average.
        self.node.schedule_for(point.speed_kmh, revolution_index=0)
        period = self.node.wheel.revolution_period_s(point.speed_kmh)
        resting = self.node.resting_modes()

        block_dynamic: dict[str, float] = {}
        block_static: dict[str, float] = {}
        resting_power = {}
        for block, resting_mode in resting.items():
            breakdown = self.database.power(block, resting_mode, point)
            resting_power[block] = breakdown
            block_dynamic[block] = breakdown.dynamic_w * period
            block_static[block] = breakdown.static_w * period

        for phase, weight in self.node.phase_census(point.speed_kmh):
            for block, mode in phase.block_modes.items():
                active = self.database.power(
                    block, mode, point, activity=phase.activity_of(block)
                )
                rest = resting_power[block]
                block_dynamic[block] += (
                    weight * (active.dynamic_w - rest.dynamic_w) * phase.duration_s
                )
                block_static[block] += (
                    weight * (active.static_w - rest.static_w) * phase.duration_s
                )

        blocks = tuple(
            BlockEnergy(
                block=name,
                dynamic_j=max(0.0, block_dynamic[name]),
                static_j=max(0.0, block_static[name]),
            )
            for name in sorted(resting)
        )
        return RevolutionEnergyReport(
            node_name=self.node.name,
            speed_kmh=point.speed_kmh,
            period_s=period,
            blocks=blocks,
            phases=(),
            point=point,
        )

    # -- convenience figures -----------------------------------------------------

    def energy_per_revolution_j(self, point: OperatingPoint) -> float:
        """Average node energy per wheel round at ``point``."""
        return self.average_report(point).total_energy_j

    def average_power_w(self, point: OperatingPoint) -> float:
        """Average node power at ``point`` while the vehicle is moving."""
        return self.average_report(point).average_power_w

    def standstill_power_w(self, point: OperatingPoint) -> float:
        """Node power with the vehicle stationary (every block resting)."""
        return self.database.total_power(self.node.resting_modes(), point).total_w

    def load_current_a(self, point: OperatingPoint, rail_voltage_v: float | None = None) -> float:
        """Average load current the node draws from its storage element.

        The paper's flow integrates the source model with *"the estimation of
        total load current"*; this is that figure, referred through the PMU
        regulator efficiency to the storage voltage (the core rail voltage by
        default).
        """
        voltage = rail_voltage_v if rail_voltage_v is not None else point.supply_voltage
        if voltage <= 0.0:
            raise AnalysisError("rail voltage must be positive")
        power = self.average_power_w(point)
        return self.node.pmu.referred_to_storage(power) / voltage

    def duty_cycles(
        self, point: OperatingPoint, revolution_index: int = 0
    ) -> DutyCycleReport:
        """Per-block duty-cycle report for one wheel round at ``point``."""
        schedule = self.node.schedule_for(point.speed_kmh, revolution_index)
        return duty_cycle_report(schedule, self.database, point)
