"""Single source of the speed/temperature quantization used by energy caches.

The emulator's revolution-energy cache, its standstill memo and the fleet
runner's cross-vehicle bin sharing all key cached energies on *quantized*
operating conditions: speeds within :data:`SPEED_QUANTUM_KMH` and
temperatures within :data:`TEMPERATURE_QUANTUM_C` share one entry, evaluated
at the bin-representative (bin-center) condition.  The quanta — and the
bin/round-trip arithmetic — live here, ONCE, so a consumer that shares bins
across vehicles can never drift from the emulator that fills them: both
sides derive their keys from the same functions.

The resulting energy error is well below the modelling uncertainty and makes
hour-long cycles (and fleet-scale populations of them) emulate in well under
a second.
"""

from __future__ import annotations

import numpy as np

#: Speeds within half a quantum of a bin center share a cache entry.
SPEED_QUANTUM_KMH = 0.5

#: Temperatures within half a degree of a whole-degree center share an entry.
TEMPERATURE_QUANTUM_C = 1.0

#: Ambient-temperature quantum of the fleet's thermal cohorts.  Vehicles
#: whose ambient falls within half a quantum of a bin center share one
#: replayed :class:`~repro.conditions.temperature.TyreThermalModel`
#: trajectory (the fleet runner's third cohort axis, next to cycle and speed
#: scale).  Kept an integer multiple of :data:`TEMPERATURE_QUANTUM_C` so
#: every ambient bin center is itself a temperature bin center — a thermal
#: trajectory that never heats (zero rise) then lands in exactly the
#: temperature bin a constant-ambient vehicle would use.
AMBIENT_QUANTUM_C = 2.0


def speed_bin(speed_kmh: float) -> int:
    """The quantized speed bin of ``speed_kmh`` (banker's rounding, like the cache)."""
    return round(speed_kmh / SPEED_QUANTUM_KMH)


def speed_bin_center_kmh(bin_index: int) -> float:
    """The representative (evaluation) speed of one quantized bin."""
    return bin_index * SPEED_QUANTUM_KMH


def speed_bin_upper_edge_kmh(bin_index: int) -> float:
    """The upper edge of one speed bin (the feasibility-classification probe)."""
    return (bin_index + 0.5) * SPEED_QUANTUM_KMH


def temperature_bin(temperature_c: float) -> int:
    """The quantized temperature bin of ``temperature_c``."""
    return round(temperature_c / TEMPERATURE_QUANTUM_C)


def temperature_bins(temperatures_c):
    """Vectorized twin of :func:`temperature_bin` for a numpy array.

    ``np.rint`` rounds half to even exactly like Python's :func:`round`, so
    both forms always land in the same bin — keep them in lockstep if the
    rounding rule ever changes.
    """
    return np.rint(temperatures_c / TEMPERATURE_QUANTUM_C)


def temperature_bin_center_c(bin_index: int) -> float:
    """The representative (evaluation) temperature of one quantized bin."""
    return bin_index * TEMPERATURE_QUANTUM_C


def ambient_bin(temperature_c: float) -> int:
    """The quantized ambient bin of ``temperature_c`` (banker's rounding).

    The fleet's thermal cohort axis: vehicle ambients are snapped to the bin
    center *at materialization* (so each vehicle's scenario carries the
    center, not the raw draw), which is what lets one per-cohort thermal
    replay be bitwise identical to every member vehicle's own
    ``emulate()`` — floating point offers no way to share a trajectory
    across distinct ambients exactly.
    """
    return round(temperature_c / AMBIENT_QUANTUM_C)


def ambient_bin_center_c(bin_index: int) -> float:
    """The representative (replay) ambient temperature of one ambient bin."""
    return bin_index * AMBIENT_QUANTUM_C
