"""Power traces: instant power of the Sensor Node versus time.

The paper's Fig. 3 shows *"instant power consumption of the Sensor Node
during a limited timing window"* — the per-revolution burst pattern.  A
:class:`PowerTrace` is the sampled representation of such a window, built by
the emulator or directly from a schedule, with the statistics and exports the
benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError


@dataclass
class PowerTrace:
    """A piecewise-constant power-versus-time trace.

    Segments are stored as ``(start_s, duration_s, power_w, label)``; the
    trace can be sampled onto a uniform grid for plotting or statistics.
    """

    _starts: list[float] = field(default_factory=list)
    _durations: list[float] = field(default_factory=list)
    _powers: list[float] = field(default_factory=list)
    _labels: list[str] = field(default_factory=list)

    # -- construction -------------------------------------------------------------

    def append(self, start_s: float, duration_s: float, power_w: float, label: str = "") -> None:
        """Append one constant-power segment; segments must be contiguous-or-later."""
        if duration_s < 0.0:
            raise AnalysisError("segment duration must be non-negative")
        if power_w < 0.0:
            raise AnalysisError("segment power must be non-negative")
        if self._starts and start_s < self.end_s - 1e-12:
            raise AnalysisError(
                f"segment starting at {start_s} s overlaps the previous segment "
                f"ending at {self.end_s} s"
            )
        if duration_s == 0.0:
            return
        self._starts.append(start_s)
        self._durations.append(duration_s)
        self._powers.append(power_w)
        self._labels.append(label)

    def extend(self, other: "PowerTrace") -> None:
        """Append every segment of ``other`` (must start after this trace ends)."""
        for start, duration, power, label in other.segments():
            self.append(start, duration, power, label)

    # -- segment access ------------------------------------------------------------

    def segments(self) -> list[tuple[float, float, float, str]]:
        """All segments as ``(start, duration, power, label)`` tuples."""
        return list(zip(self._starts, self._durations, self._powers, self._labels))

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def is_empty(self) -> bool:
        """True when the trace holds no segments."""
        return not self._starts

    @property
    def start_s(self) -> float:
        """Start time of the trace."""
        if self.is_empty:
            return 0.0
        return self._starts[0]

    @property
    def end_s(self) -> float:
        """End time of the trace."""
        if self.is_empty:
            return 0.0
        return self._starts[-1] + self._durations[-1]

    @property
    def duration_s(self) -> float:
        """Covered duration (end minus start)."""
        return self.end_s - self.start_s

    # -- statistics -----------------------------------------------------------------

    def energy_j(self) -> float:
        """Total energy of the trace."""
        return float(
            np.dot(np.asarray(self._durations, dtype=float), np.asarray(self._powers, dtype=float))
        )

    def average_power_w(self) -> float:
        """Time-averaged power over the covered duration."""
        total_time = sum(self._durations)
        if total_time == 0.0:
            return 0.0
        return self.energy_j() / total_time

    def peak_power_w(self) -> float:
        """Maximum instantaneous power."""
        if self.is_empty:
            return 0.0
        return max(self._powers)

    def min_power_w(self) -> float:
        """Minimum instantaneous power (the sleep floor in a Fig. 3 style trace)."""
        if self.is_empty:
            return 0.0
        return min(self._powers)

    def peak_to_average_ratio(self) -> float:
        """Crest factor of the trace; large for bursty self-powered nodes."""
        average = self.average_power_w()
        if average == 0.0:
            return 0.0
        return self.peak_power_w() / average

    def time_above(self, threshold_w: float) -> float:
        """Total time spent above ``threshold_w``."""
        if threshold_w < 0.0:
            raise AnalysisError("threshold must be non-negative")
        return sum(
            duration
            for duration, power in zip(self._durations, self._powers)
            if power > threshold_w
        )

    def label_energy_j(self) -> dict[str, float]:
        """Energy grouped by segment label (phase name)."""
        grouped: dict[str, float] = {}
        for duration, power, label in zip(self._durations, self._powers, self._labels):
            grouped[label] = grouped.get(label, 0.0) + duration * power
        return grouped

    # -- sampling and export -----------------------------------------------------------

    def sample(self, dt_s: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample the trace onto a uniform grid (zero-order hold).

        Gaps between segments (if any) are reported as zero power.
        """
        if dt_s <= 0.0:
            raise AnalysisError("sampling step must be positive")
        if self.is_empty:
            return np.array([0.0]), np.array([0.0])
        times = np.arange(self.start_s, self.end_s, dt_s)
        powers = np.zeros_like(times)
        starts = np.asarray(self._starts)
        ends = starts + np.asarray(self._durations)
        values = np.asarray(self._powers)
        for start, end, value in zip(starts, ends, values):
            mask = (times >= start) & (times < end)
            powers[mask] = value
        return times, powers

    def as_rows(self) -> list[dict[str, object]]:
        """Tabular export: one row per segment."""
        return [
            {
                "start_s": start,
                "duration_s": duration,
                "power_uw": power * 1e6,
                "label": label,
            }
            for start, duration, power, label in self.segments()
        ]

    def windowed(self, start_s: float, end_s: float) -> "PowerTrace":
        """Return the sub-trace overlapping ``[start_s, end_s]`` (segments clipped)."""
        if end_s <= start_s:
            raise AnalysisError("window end must be after its start")
        clipped = PowerTrace()
        for seg_start, duration, power, label in self.segments():
            seg_end = seg_start + duration
            lo = max(seg_start, start_s)
            hi = min(seg_end, end_s)
            if hi > lo:
                clipped.append(lo, hi - lo, power, label)
        return clipped
