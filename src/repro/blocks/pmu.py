"""Power-management unit: rectifier control, regulators and supervisor."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PmuConfig:
    """Operating-condition parameters of the power-management unit.

    Attributes:
        regulator_efficiency: average conversion efficiency from the storage
            element to the block rails; used when referring node energy back
            to the harvested/stored energy domain.
        quiescent_always_on: the PMU supervisor can never be fully switched
            off while the node is provisioned; kept as an explicit flag so
            architecture experiments can model a node with an external
            supervisor.
    """

    regulator_efficiency: float = 0.85
    quiescent_always_on: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.regulator_efficiency <= 1.0:
            raise ConfigurationError("regulator efficiency must be in (0, 1]")

    def block(self) -> FunctionalBlock:
        """Architectural description of the PMU."""
        return FunctionalBlock(
            name="pmu",
            category=BlockCategory.POWER,
            modes=("active", "idle", "sleep"),
            resting_mode="sleep",
            always_on=self.quiescent_always_on,
            description="power management: rectifier control, regulators, supervisor",
        )

    def referred_to_storage(self, energy_j: float | np.ndarray) -> float | np.ndarray:
        """Energy drawn from the storage element to deliver ``energy_j`` to the rails.

        Accepts a scalar or a numpy array (the batch evaluation path refers
        whole sweeps at once); the return type matches the input.
        """
        if isinstance(energy_j, (int, float)):  # fast path: per-revolution calls
            if energy_j < 0.0:
                raise ConfigurationError("energy must be non-negative")
        elif np.any(np.asarray(energy_j) < 0.0):
            raise ConfigurationError("energy must be non-negative")
        return energy_j / self.regulator_efficiency
