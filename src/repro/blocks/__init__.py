"""Functional blocks of the Sensor Node and their composition.

The paper's minimum architecture is *"a sensor data acquisition block, a data
computing system and a wireless communication device"* plus memories and the
power-management unit.  Each module in this package describes one block
(its operating modes and the operating-condition parameters that set its duty
cycle); :mod:`repro.blocks.node` composes them into a
:class:`~repro.blocks.node.SensorNode` that can produce the intra-revolution
schedule the evaluator and emulator consume.
"""

from repro.blocks.adc import AdcConfig
from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.blocks.mcu import McuConfig
from repro.blocks.memory import MemoryConfig
from repro.blocks.node import SensorNode
from repro.blocks.pmu import PmuConfig
from repro.blocks.radio import RadioConfig
from repro.blocks.sensors import SensorSuiteConfig
from repro.blocks.architectures import (
    baseline_node,
    legacy_tpms_node,
    optimized_node,
)

__all__ = [
    "FunctionalBlock",
    "BlockCategory",
    "SensorSuiteConfig",
    "AdcConfig",
    "McuConfig",
    "MemoryConfig",
    "RadioConfig",
    "PmuConfig",
    "SensorNode",
    "baseline_node",
    "optimized_node",
    "legacy_tpms_node",
]
