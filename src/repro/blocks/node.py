"""The Sensor Node: composition of functional blocks into one architecture.

A :class:`SensorNode` bundles the block configurations (the paper's
*operating conditions*) and knows how to turn a wheel round at a given speed
into the intra-revolution :class:`~repro.timing.schedule.RevolutionSchedule`
the evaluator and emulator consume.  The node does not carry power figures —
those always come from a :class:`~repro.power.database.PowerDatabase`, so the
same architecture can be evaluated against the baseline and the optimized
characterization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.blocks.adc import AdcConfig
from repro.blocks.base import FunctionalBlock
from repro.blocks.mcu import McuConfig
from repro.blocks.memory import MemoryConfig
from repro.blocks.pmu import PmuConfig
from repro.blocks.radio import RadioConfig
from repro.blocks.sensors import SensorSuiteConfig
from repro.errors import ConfigurationError, UnknownBlockError
from repro.power.database import PowerDatabase
from repro.timing.schedule import Phase, RevolutionSchedule
from repro.vehicle.contact_patch import ContactPatchModel
from repro.vehicle.wheel import Wheel


def _instance_memo(node: "SensorNode", slot: str, build):
    """Identity-keyed memo stored on a frozen node instance.

    Schedule construction needs several pure derivations of the node (the
    resting-mode mapping, the default contact-patch model, the fixed
    transmit phases) for every build; recreating them per wheel round
    dominated the cost of workload sweeps that build thousands of schedules.
    The node is a frozen dataclass, so the derivations are pure functions of
    its value — they are stashed in non-field slots via
    ``object.__setattr__`` (equality, hash and repr only look at declared
    fields) and keyed by *identity*, avoiding the recursive dataclass hash
    that a value-keyed cache would pay per lookup.
    """
    cached = node.__dict__.get(slot)
    if cached is None:
        cached = build()
        object.__setattr__(node, slot, cached)
    return cached


@dataclass(frozen=True)
class SensorNode:
    """A complete Sensor Node architecture.

    Attributes:
        name: architecture name used in reports.
        sensors: sensor-suite configuration.
        adc: ADC configuration.
        mcu: data-computing-system configuration.
        memory: memory-subsystem configuration.
        radio: radio configuration.
        pmu: power-management configuration.
        wheel: the wheel the node is mounted in.
        contact_patch: contact-patch timing model (defaults to the node's
            wheel).
    """

    name: str = "baseline"
    sensors: SensorSuiteConfig = field(default_factory=SensorSuiteConfig)
    adc: AdcConfig = field(default_factory=AdcConfig)
    mcu: McuConfig = field(default_factory=McuConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    pmu: PmuConfig = field(default_factory=PmuConfig)
    wheel: Wheel = field(default_factory=Wheel)
    contact_patch: ContactPatchModel | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("architecture name must not be empty")

    # -- architecture queries -------------------------------------------------

    @property
    def patch_model(self) -> ContactPatchModel:
        """Contact-patch model, defaulting to one built on the node's wheel."""
        if self.contact_patch is not None:
            return self.contact_patch
        return _instance_memo(
            self, "_patch_model_memo", lambda: ContactPatchModel(wheel=self.wheel)
        )

    def blocks(self) -> list[FunctionalBlock]:
        """Every functional block of the architecture."""
        collected: list[FunctionalBlock] = []
        collected.extend(self.sensors.blocks())
        collected.append(self.adc.block())
        collected.append(self.mcu.block())
        collected.extend(self.memory.blocks())
        collected.extend(self.radio.blocks())
        collected.append(self.pmu.block())
        return collected

    def block_names(self) -> list[str]:
        """Names of every block, in architecture order."""
        return [block.name for block in self.blocks()]

    def block_named(self, name: str) -> FunctionalBlock:
        """Look a block up by name."""
        for block in self.blocks():
            if block.name == name:
                return block
        raise UnknownBlockError(
            f"architecture {self.name!r} has no block {name!r}; "
            f"blocks: {self.block_names()}"
        )

    def resting_modes(self) -> dict[str, str]:
        """Block -> resting-mode mapping used as the schedule baseline.

        Derived once per node instance and memoized (see
        :func:`_instance_memo`); every call returns a fresh dict so callers
        stay free to mutate their copy.
        """
        pairs = _instance_memo(
            self,
            "_resting_modes_memo",
            lambda: tuple((block.name, block.resting_mode) for block in self.blocks()),
        )
        return dict(pairs)

    def required_characterization(self) -> dict[str, tuple[str, ...]]:
        """The (block -> modes) coverage the power database must provide."""
        required: dict[str, tuple[str, ...]] = {}
        for block in self.blocks():
            required[block.name] = block.modes
        return required

    def validate_database(self, database: PowerDatabase) -> None:
        """Fail fast if ``database`` does not characterize this architecture."""
        database.validate_against(self.required_characterization())

    def adapt_database(self, database: PowerDatabase) -> PowerDatabase:
        """Re-target clocked entries to this architecture's clock choices.

        The characterization library describes the MCU and SRAM at their
        reference clock; an architecture that runs the data-computing system
        at a different frequency both stretches the compute phase (handled by
        :class:`McuConfig`) and draws proportionally less dynamic power
        (handled here by re-clocking the database entries).  Blocks without a
        characterized clock are returned unchanged.
        """
        self.validate_database(database)
        clocked_blocks = {"mcu", "sram"}

        def retarget(entry):
            if entry.block in clocked_blocks and entry.clock_frequency_hz > 0.0:
                return entry.with_clock(self.mcu.clock_hz)
            return entry

        return database.map_entries(retarget, name=f"{database.name}@{self.name}")

    # -- schedule construction --------------------------------------------------

    def samples_per_revolution(self, speed_kmh: float) -> int:
        """Accelerometer samples acquired around the contact patch per revolution."""
        if not self.sensors.use_accelerometer:
            return 1
        window = self.patch_model.acquisition_window_s(speed_kmh)
        return self.adc.samples_in(window)

    def raw_bits_per_revolution(self, speed_kmh: float) -> int:
        """Raw acquired data volume per revolution, in bits."""
        return self.adc.bits_for(self.samples_per_revolution(speed_kmh))

    def _acquire_phase(self, speed_kmh: float, refresh_slow: bool) -> Phase:
        """The acquisition phase: sensors + ADC on, MCU idle buffering."""
        modes: dict[str, str] = {"adc": "active", "mcu": "idle", "sram": "active",
                                 "pmu": "active"}
        if self.sensors.use_accelerometer:
            modes["accelerometer"] = "active"
        if refresh_slow and self.sensors.use_pressure:
            modes["pressure_sensor"] = "active"
        if refresh_slow and self.sensors.use_temperature:
            modes["temperature_sensor"] = "active"
        if self.sensors.use_accelerometer:
            duration = self.patch_model.acquisition_window_s(speed_kmh)
        else:
            duration = self.sensors.slow_sensor_on_time_s
        return Phase(name="acquire", duration_s=duration, block_modes=modes)

    def _compute_phase(self, speed_kmh: float) -> Phase:
        """The computation phase: MCU + SRAM active."""
        samples = self.samples_per_revolution(speed_kmh)
        raw_bits = self.raw_bits_per_revolution(speed_kmh)
        duration = self.mcu.compute_time_s(samples, raw_bits)
        modes = {"mcu": "active", "sram": "active", "pmu": "active", "adc": "idle"}
        return Phase(name="compute", duration_s=duration, block_modes=modes)

    def _transmit_phases(self) -> list[Phase]:
        """Synthesizer start-up followed by the transmission burst.

        Speed-independent, so the (frozen) phases are built once per node
        instance and shared by every schedule.
        """

        def build() -> tuple[Phase, ...]:
            phases: list[Phase] = []
            if self.radio.startup_s > 0.0:
                phases.append(
                    Phase(
                        name="tx_startup",
                        duration_s=self.radio.startup_s,
                        block_modes={"rf_tx": "idle", "mcu": "idle", "pmu": "active"},
                    )
                )
            burst = self.radio.burst_duration_s(payload_scale=self.mcu.compression_ratio)
            phases.append(
                Phase(
                    name="transmit",
                    duration_s=burst,
                    block_modes={"rf_tx": "active", "mcu": "idle", "pmu": "active"},
                )
            )
            return tuple(phases)

        return list(_instance_memo(self, "_transmit_phases_memo", build))

    def _nvm_phase(self) -> Phase:
        """Occasional non-volatile log write (speed-independent, memoized)."""
        return _instance_memo(
            self,
            "_nvm_phase_memo",
            lambda: Phase(
                name="nvm_write",
                duration_s=self.memory.nvm_write_duration_s,
                block_modes={"nvm": "active", "mcu": "idle", "pmu": "active"},
            ),
        )

    def phase_pattern(self, revolution_index: int) -> tuple[bool, bool, bool]:
        """The conditional-phase pattern of one revolution.

        Returns the ``(transmits, refreshes_slow, writes_nvm)`` triple that,
        together with the speed, fully determines the revolution's schedule.
        The emulator's revolution-energy cache and the batch sweep APIs key
        on this pattern instead of the raw revolution index.
        """
        return (
            self.radio.transmits(revolution_index),
            self.sensors.refreshes_slow_sensors(revolution_index),
            self.memory.writes_nvm(revolution_index),
        )

    def schedule_for_pattern(
        self,
        speed_kmh: float,
        transmits: bool,
        refreshes_slow: bool,
        writes_nvm: bool,
    ) -> RevolutionSchedule:
        """Build the schedule of a wheel round with an explicit phase pattern.

        This is the pattern-addressed form of :meth:`schedule_for`: instead of
        deriving the conditional phases from a revolution index, the caller
        states them directly.  Batch sweeps (Monte-Carlo workload sampling,
        the emulator's cache prefill) use it to build one schedule per unique
        (speed, pattern) bin without inventing representative indices.

        Raises:
            ScheduleError: if the busy phases do not fit into the wheel-round
                period (the node cannot keep up at this speed).
        """
        if speed_kmh <= 0.0:
            raise ConfigurationError("a revolution schedule requires a positive speed")
        period = self.wheel.revolution_period_s(speed_kmh)
        phases: list[Phase] = [
            self._acquire_phase(speed_kmh, refreshes_slow),
            self._compute_phase(speed_kmh),
        ]
        if transmits:
            phases.extend(self._transmit_phases())
        if writes_nvm:
            phases.append(self._nvm_phase())
        return RevolutionSchedule(
            period_s=period,
            phases=tuple(phases),
            blocks=self.resting_modes(),
        )

    def schedule_for(
        self, speed_kmh: float, revolution_index: int = 0
    ) -> RevolutionSchedule:
        """Build the intra-revolution schedule for one wheel round.

        Args:
            speed_kmh: cruising speed of the revolution.
            revolution_index: ordinal of the revolution; it selects whether
                the slow sensors refresh, whether a packet is transmitted and
                whether an NVM write happens on this particular round.

        Raises:
            ScheduleError: if the busy phases do not fit into the wheel-round
                period (the node cannot keep up at this speed).
        """
        transmits, refreshes_slow, writes_nvm = self.phase_pattern(revolution_index)
        return self.schedule_for_pattern(
            speed_kmh,
            transmits=transmits,
            refreshes_slow=refreshes_slow,
            writes_nvm=writes_nvm,
        )

    def average_schedule_weights(self) -> dict[str, float]:
        """Per-revolution occurrence probability of the conditional phases.

        Used by the evaluator to average the energy of phases that do not
        happen on every revolution (transmission every N rounds, slow-sensor
        refresh, NVM writes) without enumerating revolutions.
        """
        weights = {
            "transmit": 1.0 / self.radio.tx_interval_revs,
            "tx_startup": 1.0 / self.radio.tx_interval_revs,
            "slow_refresh": 1.0 / self.sensors.slow_refresh_interval_revs,
        }
        if self.memory.use_nvm:
            weights["nvm_write"] = 1.0 / self.memory.nvm_write_interval_revs
        else:
            weights["nvm_write"] = 0.0
        return weights

    def phase_census(self, speed_kmh: float) -> list[tuple[Phase, float]]:
        """Every phase the node can execute in a wheel round, with its weight.

        The weight is the per-revolution occurrence probability of the phase
        (1.0 for unconditional phases).  Because energy is linear in phase
        durations, the average energy per revolution equals the resting
        energy over the full period plus the weighted incremental energy of
        each phase — which is how
        :class:`~repro.core.evaluator.EnergyEvaluator` computes Fig. 2
        without enumerating revolutions.

        The slow-sensor refresh appears as a separate zero-conflict phase
        carrying only the pressure/temperature mode overrides for the
        duration of the acquisition window; its energy adds on top of the
        unconditional acquire phase exactly as it would if the sensors were
        switched on inside it.
        """
        if speed_kmh <= 0.0:
            raise ConfigurationError("phase census requires a positive speed")
        weights = self.average_schedule_weights()
        census: list[tuple[Phase, float]] = []

        refresh_every_revolution = self.sensors.slow_refresh_interval_revs == 1
        # Revolution 1 never refreshes the slow sensors when the interval is
        # greater than one, so it yields the "plain" acquire phase; when the
        # interval is exactly one the refresh is already part of every acquire
        # phase and no separate increment must be added.
        acquire = self._acquire_phase(speed_kmh, refresh_slow=refresh_every_revolution)
        census.append((acquire, 1.0))

        slow_modes: dict[str, str] = {}
        if self.sensors.use_pressure:
            slow_modes["pressure_sensor"] = "active"
        if self.sensors.use_temperature:
            slow_modes["temperature_sensor"] = "active"
        if slow_modes and not refresh_every_revolution:
            census.append(
                (
                    Phase(
                        name="slow_refresh",
                        duration_s=acquire.duration_s,
                        block_modes=slow_modes,
                    ),
                    weights["slow_refresh"],
                )
            )

        census.append((self._compute_phase(speed_kmh), 1.0))

        for phase in self._transmit_phases():
            census.append((phase, weights[phase.name]))

        if self.memory.use_nvm:
            census.append((self._nvm_phase(), weights["nvm_write"]))
        return census

    def max_sustainable_speed_kmh(
        self, upper_bound_kmh: float = 400.0, tolerance_kmh: float = 0.5
    ) -> float:
        """Highest speed at which the busy phases still fit in a wheel round.

        Uses bisection between 1 km/h and ``upper_bound_kmh``.  Returns
        ``upper_bound_kmh`` if the node keeps up even there.
        """
        from repro.errors import ScheduleError

        def fits(speed: float) -> bool:
            try:
                # Revolution 0 is the worst case: it transmits and refreshes
                # the slow sensors.
                self.schedule_for(speed, revolution_index=0)
            except ScheduleError:
                return False
            return True

        low, high = 1.0, upper_bound_kmh
        if fits(high):
            return high
        if not fits(low):
            return 0.0
        while high - low > tolerance_kmh:
            middle = 0.5 * (low + high)
            if fits(middle):
                low = middle
            else:
                high = middle
        return low

    # -- derived architectures --------------------------------------------------

    def renamed(self, name: str) -> "SensorNode":
        """Return a copy of the architecture under a different name."""
        return replace(self, name=name)

    def with_radio(self, radio: RadioConfig) -> "SensorNode":
        """Return a copy with a different radio configuration."""
        return replace(self, radio=radio)

    def with_mcu(self, mcu: McuConfig) -> "SensorNode":
        """Return a copy with a different MCU configuration."""
        return replace(self, mcu=mcu)

    def with_sensors(self, sensors: SensorSuiteConfig) -> "SensorNode":
        """Return a copy with a different sensor suite."""
        return replace(self, sensors=sensors)

    def with_wheel(self, wheel: Wheel) -> "SensorNode":
        """Return a copy mounted in a different wheel."""
        return replace(self, wheel=wheel, contact_patch=None)

    def describe(self) -> str:
        """Multi-line architecture summary used by the examples."""
        lines = [f"Sensor Node architecture {self.name!r}"]
        for block in self.blocks():
            always = " (always on)" if block.always_on else ""
            lines.append(f"  - {block.name:<20s} {block.description}{always}")
        lines.append(
            f"  radio: packet {self.radio.packet_bits} bits @ "
            f"{self.radio.data_rate_bps / 1e3:.0f} kbps, "
            f"TX every {self.radio.tx_interval_revs} rev"
        )
        lines.append(
            f"  mcu workload: {self.mcu.base_cycles_per_revolution} + "
            f"{self.mcu.cycles_per_sample}/sample cycles @ "
            f"{self.mcu.clock_hz / 1e6:.0f} MHz"
        )
        return "\n".join(lines)
