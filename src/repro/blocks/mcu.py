"""Data-computing system (MCU/DSP) of the Sensor Node."""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class McuConfig:
    """Operating-condition parameters of the data-computing system.

    The per-revolution workload is modelled as a fixed overhead (scheduling,
    housekeeping, packet assembly) plus a per-sample cost for the
    contact-patch feature extraction.

    Attributes:
        clock_hz: core clock frequency while active.
        cycles_per_sample: processing cost of one accelerometer sample.
        base_cycles_per_revolution: fixed per-revolution overhead in cycles.
        compression_ratio: ratio of transmitted payload bits to raw feature
            bits; 1.0 means no compression.  The data-compression
            optimization technique lowers this (more MCU work, fewer radio
            bits).
        compression_cycles_per_bit: extra cycles spent per raw bit when
            compression is enabled (``compression_ratio`` < 1).
    """

    clock_hz: float = 16e6
    cycles_per_sample: int = 48
    base_cycles_per_revolution: int = 20_000
    compression_ratio: float = 1.0
    compression_cycles_per_bit: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0.0:
            raise ConfigurationError("MCU clock must be positive")
        if self.cycles_per_sample < 0:
            raise ConfigurationError("cycles per sample must be non-negative")
        if self.base_cycles_per_revolution < 0:
            raise ConfigurationError("base cycles per revolution must be non-negative")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ConfigurationError("compression ratio must be in (0, 1]")
        if self.compression_cycles_per_bit < 0.0:
            raise ConfigurationError("compression cycles per bit must be non-negative")

    def block(self) -> FunctionalBlock:
        """Architectural description of the MCU."""
        return FunctionalBlock(
            name="mcu",
            category=BlockCategory.DIGITAL,
            modes=("active", "idle", "sleep"),
            resting_mode="sleep",
            description=f"ULP MCU/DSP @ {self.clock_hz / 1e6:.0f} MHz",
        )

    def compute_cycles(self, samples: int, raw_bits: int = 0) -> int:
        """Cycles needed to process one revolution's worth of samples."""
        if samples < 0:
            raise ConfigurationError("sample count must be non-negative")
        if raw_bits < 0:
            raise ConfigurationError("raw bit count must be non-negative")
        cycles = self.base_cycles_per_revolution + self.cycles_per_sample * samples
        if self.compression_ratio < 1.0:
            cycles += int(self.compression_cycles_per_bit * raw_bits)
        return cycles

    def compute_time_s(self, samples: int, raw_bits: int = 0) -> float:
        """Time needed to process one revolution's worth of samples, in seconds."""
        return self.compute_cycles(samples, raw_bits) / self.clock_hz

    def with_clock(self, clock_hz: float) -> "McuConfig":
        """Return a copy running at a different clock frequency."""
        if clock_hz <= 0.0:
            raise ConfigurationError("MCU clock must be positive")
        return McuConfig(
            clock_hz=clock_hz,
            cycles_per_sample=self.cycles_per_sample,
            base_cycles_per_revolution=self.base_cycles_per_revolution,
            compression_ratio=self.compression_ratio,
            compression_cycles_per_bit=self.compression_cycles_per_bit,
        )
