"""Wireless communication device of the Sensor Node.

The in-tyre node transmits short bursts to the elaboration unit on the car
(junction box).  The transmission duty cycle is the block the paper singles
out as speed dependent: the burst duration is fixed by the payload and data
rate, while the wheel-round period shrinks with speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RadioConfig:
    """Operating-condition parameters of the radio.

    Attributes:
        payload_bits: application payload per transmitted packet.
        overhead_bits: preamble, sync word, addressing and CRC bits.
        data_rate_bps: over-the-air bit rate.
        tx_interval_revs: one packet is sent every this many revolutions.
        startup_s: synthesizer start-up/settling time before the burst, spent
            in the transmitter's ``idle`` mode.
        use_wakeup_receiver: include the always-on LF wake-up receiver used
            by the car unit to trigger/configure the node.
    """

    payload_bits: int = 128
    overhead_bits: int = 96
    data_rate_bps: float = 50e3
    tx_interval_revs: int = 1
    startup_s: float = 0.4e-3
    use_wakeup_receiver: bool = True

    def __post_init__(self) -> None:
        if self.payload_bits <= 0:
            raise ConfigurationError("payload must be positive")
        if self.overhead_bits < 0:
            raise ConfigurationError("overhead bits must be non-negative")
        if self.data_rate_bps <= 0.0:
            raise ConfigurationError("data rate must be positive")
        if self.tx_interval_revs < 1:
            raise ConfigurationError("transmission interval must be at least 1 revolution")
        if self.startup_s < 0.0:
            raise ConfigurationError("startup time must be non-negative")

    def blocks(self) -> list[FunctionalBlock]:
        """Architectural descriptions of the radio blocks."""
        blocks = [
            FunctionalBlock(
                name="rf_tx",
                category=BlockCategory.RADIO,
                modes=("active", "idle", "sleep"),
                resting_mode="sleep",
                description=f"UHF transmitter, {self.data_rate_bps / 1e3:.0f} kbps bursts",
            )
        ]
        if self.use_wakeup_receiver:
            blocks.append(
                FunctionalBlock(
                    name="lf_rx",
                    category=BlockCategory.RADIO,
                    modes=("active", "sleep"),
                    resting_mode="active",
                    always_on=True,
                    description="125 kHz LF wake-up receiver (always listening)",
                )
            )
        return blocks

    @property
    def packet_bits(self) -> int:
        """Total bits per packet including overhead."""
        return self.payload_bits + self.overhead_bits

    def burst_duration_s(self, payload_scale: float = 1.0) -> float:
        """Duration of one transmission burst.

        Args:
            payload_scale: multiplier on the payload size (data compression
                shrinks it; richer reporting grows it).  Overhead bits are
                not scaled.
        """
        if payload_scale <= 0.0:
            raise ConfigurationError("payload scale must be positive")
        bits = self.payload_bits * payload_scale + self.overhead_bits
        return bits / self.data_rate_bps

    def transmits(self, revolution_index: int) -> bool:
        """True when a packet is transmitted on this revolution."""
        if revolution_index < 0:
            raise ConfigurationError("revolution index must be non-negative")
        return revolution_index % self.tx_interval_revs == 0

    def energy_per_bit_reference_j(self, tx_power_w: float) -> float:
        """Reference energy-per-bit figure used in reports."""
        if tx_power_w <= 0.0:
            raise ConfigurationError("transmit power must be positive")
        return tx_power_w / self.data_rate_bps
