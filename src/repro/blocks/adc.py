"""Analog-to-digital converter of the acquisition chain."""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AdcConfig:
    """Operating-condition parameters of the SAR ADC.

    Attributes:
        sample_rate_hz: conversion rate while acquiring.
        resolution_bits: converter resolution; reported and used to size the
            per-revolution data volume the MCU must process and the radio may
            transmit.
    """

    sample_rate_hz: float = 100e3
    resolution_bits: int = 10

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0.0:
            raise ConfigurationError("ADC sample rate must be positive")
        if not 6 <= self.resolution_bits <= 24:
            raise ConfigurationError("ADC resolution must be between 6 and 24 bits")

    def block(self) -> FunctionalBlock:
        """Architectural description of the ADC."""
        return FunctionalBlock(
            name="adc",
            category=BlockCategory.ANALOG,
            modes=("active", "idle", "sleep"),
            resting_mode="sleep",
            description=f"{self.resolution_bits}-bit SAR ADC @ {self.sample_rate_hz / 1e3:.0f} kS/s",
        )

    def samples_in(self, window_s: float) -> int:
        """Samples converted in a window of ``window_s`` seconds (at least 1)."""
        if window_s < 0.0:
            raise ConfigurationError("window must be non-negative")
        return max(1, int(window_s * self.sample_rate_hz))

    def bits_for(self, samples: int) -> int:
        """Raw data volume in bits for ``samples`` conversions."""
        if samples < 0:
            raise ConfigurationError("sample count must be non-negative")
        return samples * self.resolution_bits
