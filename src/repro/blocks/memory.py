"""Memories of the Sensor Node: working SRAM and non-volatile storage."""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryConfig:
    """Operating-condition parameters of the memory subsystem.

    Attributes:
        sram_kib: working-memory size; only reported (the power entry is
            characterized for the reference size).
        use_nvm: whether the architecture logs calibration/diagnostic data to
            non-volatile memory.
        nvm_write_interval_revs: an NVM write burst happens once every this
            many revolutions (logging is rare).
        nvm_write_duration_s: duration of one NVM write burst.
    """

    sram_kib: int = 8
    use_nvm: bool = True
    nvm_write_interval_revs: int = 256
    nvm_write_duration_s: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.sram_kib <= 0:
            raise ConfigurationError("SRAM size must be positive")
        if self.nvm_write_interval_revs < 1:
            raise ConfigurationError("NVM write interval must be at least 1 revolution")
        if self.nvm_write_duration_s <= 0.0:
            raise ConfigurationError("NVM write duration must be positive")

    def blocks(self) -> list[FunctionalBlock]:
        """Architectural descriptions of the memory blocks."""
        blocks = [
            FunctionalBlock(
                name="sram",
                category=BlockCategory.MEMORY,
                modes=("active", "idle", "sleep"),
                resting_mode="sleep",
                description=f"{self.sram_kib} KiB working SRAM (retention sleep)",
            )
        ]
        if self.use_nvm:
            blocks.append(
                FunctionalBlock(
                    name="nvm",
                    category=BlockCategory.MEMORY,
                    modes=("active", "sleep"),
                    resting_mode="sleep",
                    description="non-volatile calibration/log memory",
                )
            )
        return blocks

    def writes_nvm(self, revolution_index: int) -> bool:
        """True when an NVM log write happens on this revolution."""
        if revolution_index < 0:
            raise ConfigurationError("revolution index must be non-negative")
        if not self.use_nvm:
            return False
        return revolution_index % self.nvm_write_interval_revs == 0 and revolution_index > 0
