"""Predefined Sensor Node architectures.

Three reference points cover the design space the paper's tools are meant to
explore:

* :func:`legacy_tpms_node` — a classic valve-mounted TPMS: pressure and
  temperature only, no contact-patch acquisition, sparse transmissions.  It
  is the "not enough for improving driving controls" baseline of the
  introduction.
* :func:`baseline_node` — the full Cyber Tyre style node with tread
  accelerometer, per-revolution processing and per-revolution transmission,
  before any energy optimization.
* :func:`optimized_node` — the same sensing capability after the
  architecture-level operating-condition optimizations the tools suggest
  (packet aggregation over several revolutions, data compression, lower MCU
  clock); the circuit-level techniques (clock/power gating, voltage scaling)
  are applied to the power database by :mod:`repro.optimization`, not here.
"""

from __future__ import annotations

from repro.blocks.mcu import McuConfig
from repro.blocks.memory import MemoryConfig
from repro.blocks.node import SensorNode
from repro.blocks.radio import RadioConfig
from repro.blocks.sensors import SensorSuiteConfig
from repro.vehicle.wheel import Wheel


def baseline_node(wheel: Wheel | None = None) -> SensorNode:
    """The un-optimized Cyber Tyre style Sensor Node.

    Transmits every revolution and processes every contact-patch crossing at
    the full MCU clock; this is the architecture whose energy balance Fig. 2
    reports before optimization.
    """
    return SensorNode(
        name="baseline",
        sensors=SensorSuiteConfig(),
        mcu=McuConfig(),
        radio=RadioConfig(tx_interval_revs=1),
        wheel=wheel or Wheel(),
    )


def optimized_node(wheel: Wheel | None = None) -> SensorNode:
    """Operating-condition optimized node.

    Aggregates four revolutions per packet and compresses the payload (more
    MCU work, far fewer radio bits), and refreshes the slow sensors half as
    often.  Used together with the technique-optimized power database to
    quantify the total energy reduction of the flow.
    """
    return SensorNode(
        name="optimized",
        sensors=SensorSuiteConfig(slow_refresh_interval_revs=16),
        mcu=McuConfig(compression_ratio=0.5),
        radio=RadioConfig(tx_interval_revs=4, payload_bits=160),
        memory=MemoryConfig(nvm_write_interval_revs=512),
        wheel=wheel or Wheel(),
    )


def legacy_tpms_node(wheel: Wheel | None = None) -> SensorNode:
    """A conventional pressure/temperature-only TPMS node.

    No accelerometer, no per-revolution processing, one short packet every
    64 revolutions — the energy-frugal but information-poor end of the design
    space the introduction argues is insufficient.
    """
    return SensorNode(
        name="legacy-tpms",
        sensors=SensorSuiteConfig(
            use_accelerometer=False,
            slow_refresh_interval_revs=16,
            slow_sensor_on_time_s=1.0e-3,
        ),
        mcu=McuConfig(
            clock_hz=4e6,
            cycles_per_sample=12,
            base_cycles_per_revolution=1_500,
        ),
        radio=RadioConfig(tx_interval_revs=64, payload_bits=64, overhead_bits=64),
        memory=MemoryConfig(use_nvm=False),
        wheel=wheel or Wheel(),
    )


def architecture_catalogue(wheel: Wheel | None = None) -> dict[str, SensorNode]:
    """All predefined architectures keyed by name."""
    shared_wheel = wheel or Wheel()
    nodes = (
        legacy_tpms_node(shared_wheel),
        baseline_node(shared_wheel),
        optimized_node(shared_wheel),
    )
    return {node.name: node for node in nodes}
