"""Base description of a functional block.

A :class:`FunctionalBlock` is the architectural view of a block: its name,
the operating modes it supports, the mode it rests in between activity
bursts, and a category used by reports.  Power figures live in the power
database; behaviour over a wheel round lives in the schedule the node builds.
Keeping the three views separate is what lets the optimization step rewrite
one of them (the database) without touching the others.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownModeError


class BlockCategory(enum.Enum):
    """Coarse block categories used for reporting and rail assignment."""

    ANALOG = "analog"
    DIGITAL = "digital"
    MEMORY = "memory"
    RADIO = "radio"
    POWER = "power"


@dataclass(frozen=True)
class FunctionalBlock:
    """Architectural description of one functional block.

    Attributes:
        name: block name; must match the block name used in the power
            database.
        category: coarse category.
        modes: operating modes the block supports.
        resting_mode: the mode the block occupies outside its busy phases.
        always_on: True for blocks that never enter the resting mode of the
            node (e.g. the LF wake-up receiver and the PMU supervisor).
        description: free-form description used in reports.
    """

    name: str
    category: BlockCategory
    modes: tuple[str, ...]
    resting_mode: str
    always_on: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("block name must not be empty")
        if not self.modes:
            raise ConfigurationError(f"block {self.name!r} needs at least one mode")
        if len(set(self.modes)) != len(self.modes):
            raise ConfigurationError(f"block {self.name!r} has duplicate modes")
        if self.resting_mode not in self.modes:
            raise ConfigurationError(
                f"block {self.name!r} resting mode {self.resting_mode!r} is not "
                f"among its modes {self.modes}"
            )

    def validate_mode(self, mode: str) -> str:
        """Return ``mode`` if the block supports it, raise otherwise."""
        if mode not in self.modes:
            raise UnknownModeError(
                f"block {self.name!r} has no mode {mode!r}; supported: {self.modes}"
            )
        return mode

    @property
    def required_characterization(self) -> dict[str, tuple[str, ...]]:
        """The (block -> modes) mapping the power database must cover."""
        return {self.name: self.modes}
