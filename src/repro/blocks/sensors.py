"""Sensor data-acquisition front-ends.

The Cyber Tyre node senses pressure, temperature and tread acceleration.
Pressure and temperature change slowly, so they are refreshed every
``slow_refresh_interval_revs`` revolutions; the accelerometer is sampled
around every contact-patch crossing because that is where the friction
information lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensorSuiteConfig:
    """Operating-condition parameters of the sensor suite.

    Attributes:
        use_pressure: include the pressure sensor.
        use_temperature: include the temperature sensor.
        use_accelerometer: include the tread accelerometer (the block that
            turns a TPMS into a Cyber Tyre node).
        slow_refresh_interval_revs: pressure/temperature are refreshed once
            every this many revolutions.
        slow_sensor_on_time_s: time the slow sensors stay on per refresh.
    """

    use_pressure: bool = True
    use_temperature: bool = True
    use_accelerometer: bool = True
    slow_refresh_interval_revs: int = 8
    slow_sensor_on_time_s: float = 1.5e-3

    def __post_init__(self) -> None:
        if self.slow_refresh_interval_revs < 1:
            raise ConfigurationError("slow refresh interval must be at least 1 revolution")
        if self.slow_sensor_on_time_s <= 0.0:
            raise ConfigurationError("slow sensor on-time must be positive")
        if not (self.use_pressure or self.use_temperature or self.use_accelerometer):
            raise ConfigurationError("the sensor suite must include at least one sensor")

    def blocks(self) -> list[FunctionalBlock]:
        """Architectural descriptions of the enabled sensor blocks."""
        blocks: list[FunctionalBlock] = []
        if self.use_pressure:
            blocks.append(
                FunctionalBlock(
                    name="pressure_sensor",
                    category=BlockCategory.ANALOG,
                    modes=("active", "sleep"),
                    resting_mode="sleep",
                    description="piezoresistive pressure sensor + conditioning",
                )
            )
        if self.use_temperature:
            blocks.append(
                FunctionalBlock(
                    name="temperature_sensor",
                    category=BlockCategory.ANALOG,
                    modes=("active", "sleep"),
                    resting_mode="sleep",
                    description="bandgap temperature sensor",
                )
            )
        if self.use_accelerometer:
            blocks.append(
                FunctionalBlock(
                    name="accelerometer",
                    category=BlockCategory.ANALOG,
                    modes=("active", "idle", "sleep"),
                    resting_mode="sleep",
                    description="MEMS accelerometer for contact-patch analysis",
                )
            )
        return blocks

    def refreshes_slow_sensors(self, revolution_index: int) -> bool:
        """True when the slow (pressure/temperature) sensors sample this revolution."""
        if revolution_index < 0:
            raise ConfigurationError("revolution index must be non-negative")
        return revolution_index % self.slow_refresh_interval_revs == 0
