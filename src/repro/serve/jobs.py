"""The job layer: request documents in, engine runs out, results stored.

A :class:`JobManager` accepts scenario-study and fleet JSON documents (the
same declarative documents the CLI reads from disk), validates them
eagerly — a malformed request fails at submit time, before a job exists —
and executes them through the existing runners
(:class:`~repro.scenario.study.Study`,
:class:`~repro.fleet.runner.FleetRunner`) on background worker threads.
Jobs move ``queued -> running -> done`` (or ``failed``); while running,
the engine's observer hooks feed live per-item/per-chunk progress into
the job record, and the engine's structured
:class:`~repro.scenario.engine.EngineFailure` records surface verbatim in
the job-status payload.

Result identity discipline
--------------------------

Each request normalizes to a *store key document* holding exactly the
result-shaping parameters — the canonical spec document, the seed, and
the runner parameters the kernels read (record interval, survival
buckets, ...).  Execution-only parameters (``workers``, ``backend``,
``retries``) are excluded: the engine's row-identity contract makes them
invisible in the rows, so any execution plan shares one store entry.  The
serialized result document likewise strips the non-deterministic
bookkeeping (wall times, worker counts, resume/retry counters) before
encoding, which is what makes a store-hit response *byte-identical* to a
fresh sequential run — asserted end-to-end by the test suite.

Shutdown: ``shutdown(drain=True)`` finishes everything already accepted;
``shutdown(drain=False)`` cancels queued jobs and asks in-flight fleet
runs to stop at the next chunk boundary — with a checkpoint root
configured those jobs end partial *and journaled*, so re-submitting the
same request resumes instead of recomputing.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from pathlib import Path
from typing import Mapping

from repro.backend import active_backend_info
from repro.errors import ConfigError, ReproError, ServeError
from repro.fleet.aggregate import DEFAULT_SURVIVAL_BUCKETS
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import FleetSpec
from repro.reporting.export import json_ready
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import STUDY_KINDS, Study
from repro.serve.cache import EvaluatorLRU
from repro.serve.store import ResultStore

__all__ = [
    "Job",
    "JobManager",
    "encode_document",
    "fleet_result_document",
    "study_result_document",
]

#: Study metadata keys that vary run to run (timing, execution plan,
#: cache warmth) and are stripped from the stored result document.
_STUDY_METADATA_DROP = frozenset(
    {
        "workers",
        "backend",
        "wall_time_s",
        "row_wall_times_s",
        "evaluator_builds",
        "evaluator_cache_hits",
    }
)

#: Fleet metadata keys stripped for the same reason — plus everything that
#: depends on how the run was split/resumed rather than what it computed.
_FLEET_METADATA_DROP = frozenset(
    {
        "workers",
        "backend",
        "engine_backend",
        "wall_time_s",
        "vehicle_wall_times_s",
        "evaluator_builds",
        "evaluator_cache_hits",
        "chunks_completed",
        "resumed_chunks",
        "resumed_vehicles",
        "vehicles_run",
        "retries",
        "pool_rebuilds",
        "checkpoint",
        "array_backend",
    }
)


def study_result_document(result) -> dict[str, object]:
    """The deterministic result document of one study run.

    A pure function of the request: metadata that records *how* the run
    executed (timing, workers, cache warmth) is dropped; row order and row
    key order are the engine's sequential contract and survive verbatim.
    """
    return {
        "kind": "study",
        "analysis": result.kind,
        "axes": list(result.axes),
        "rows": result.as_rows(),
        "metadata": {
            key: value
            for key, value in result.metadata.items()
            if key not in _STUDY_METADATA_DROP
        },
    }


def fleet_result_document(result) -> dict[str, object]:
    """The deterministic result document of one fleet run."""
    return {
        "kind": "fleet",
        "summary": dict(result.summary),
        "survival": [dict(row) for row in result.survival],
        "vehicle_rows": (
            [dict(row) for row in result.vehicle_rows]
            if result.vehicle_rows is not None
            else None
        ),
        "metadata": {
            key: value
            for key, value in result.metadata.items()
            if key not in _FLEET_METADATA_DROP
        },
    }


def encode_document(document: object) -> bytes:
    """Serialize a result document to its canonical byte form.

    Fixed formatting (compact separators, no key sorting, trailing
    newline) plus the export layer's NaN -> null normalization: two equal
    documents always encode to equal bytes, and those bytes are what the
    store keeps and the HTTP layer returns verbatim.
    """
    text = json.dumps(
        json_ready(document), allow_nan=False, separators=(",", ":"), sort_keys=False
    )
    return (text + "\n").encode("utf-8")


def _require_mapping(document: object, what: str) -> Mapping[str, object]:
    if not isinstance(document, Mapping):
        raise ConfigError(f"{what} must be a JSON object, got {type(document).__name__}")
    return document


def _check_fields(document: Mapping[str, object], allowed: set[str], what: str) -> None:
    unknown = set(document) - allowed
    if unknown:
        raise ConfigError(
            f"{what} has unknown fields {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def _parse_workers_backend(
    document: Mapping[str, object], default_workers, default_backend
) -> tuple[int | None, str]:
    workers = document.get("workers", default_workers)
    backend = document.get("backend", default_backend)
    if backend == "process" and (workers is None or workers <= 1):
        raise ConfigError(
            "backend 'process' needs workers greater than 1 "
            "(a single worker runs sequentially in this process)"
        )
    return workers, backend


_MONTECARLO_FIELDS = {
    "samples",
    "seed",
    "speed_rel_std",
    "temperature_std_c",
    "activity_range",
    "speed_distribution",
    "temperature_distribution",
    "activity_distribution",
}


def _parse_montecarlo(document: object) -> MonteCarloConfig:
    document = _require_mapping(document, "montecarlo")
    _check_fields(document, _MONTECARLO_FIELDS, "montecarlo")
    kwargs = dict(document)
    if "activity_range" in kwargs:
        value = kwargs["activity_range"]
        if not isinstance(value, (list, tuple)) or len(value) != 2:
            raise ConfigError("montecarlo activity_range must be a [low, high] pair")
        kwargs["activity_range"] = tuple(value)
    return MonteCarloConfig(**kwargs)


def _montecarlo_key_document(config: MonteCarloConfig) -> dict[str, object]:
    """Canonical store-key form of a Monte-Carlo config (defaults filled)."""
    document: dict[str, object] = {
        "samples": config.samples,
        "seed": config.seed,
        "speed_rel_std": config.speed_rel_std,
        "temperature_std_c": config.temperature_std_c,
        "activity_range": list(config.activity_range),
    }
    for name in ("speed_distribution", "temperature_distribution", "activity_distribution"):
        spec = getattr(config, name)
        if spec is not None:
            document[name] = spec.to_dict()
    return document


class _StudyRequest:
    """A validated study request: ready-to-run pieces plus its store key."""

    __slots__ = ("spec", "axes", "analysis", "montecarlo", "workers", "backend", "key")

    def __init__(self, document: object, default_workers, default_backend) -> None:
        document = _require_mapping(document, "study request")
        _check_fields(
            document,
            {"scenario", "axes", "analysis", "montecarlo", "workers", "backend"},
            "study request",
        )
        if "scenario" not in document:
            raise ConfigError("study request needs a 'scenario' document")
        self.spec = ScenarioSpec.from_dict(_require_mapping(document["scenario"], "scenario"))
        axes = _require_mapping(document.get("axes", {}), "axes")
        self.axes = {name: list(values) for name, values in axes.items()}
        self.analysis = document.get("analysis", "balance")
        if self.analysis not in STUDY_KINDS:
            raise ConfigError(
                f"unknown analysis kind {self.analysis!r}; available: {list(STUDY_KINDS)}"
            )
        if "montecarlo" in document and self.analysis != "montecarlo":
            raise ConfigError("'montecarlo' settings require the 'montecarlo' analysis kind")
        self.montecarlo = (
            _parse_montecarlo(document["montecarlo"]) if "montecarlo" in document else None
        )
        self.workers, self.backend = _parse_workers_backend(
            document, default_workers, default_backend
        )
        # Validates the axes (names, collisions, emptiness) at submit time.
        study = self.build_study()
        self.key = {
            "kind": "study",
            "analysis": self.analysis,
            "scenario": self.spec.to_dict(),
            "axes": {
                name: [_axis_key_value(value) for value in values]
                for name, values in self.axes.items()
            },
            "montecarlo": (
                _montecarlo_key_document(study.montecarlo)
                if self.analysis == "montecarlo"
                else None
            ),
        }

    def build_study(self, evaluator_cache=None) -> Study:
        return Study(
            self.spec,
            axes=self.axes,
            montecarlo=self.montecarlo,
            evaluator_cache=evaluator_cache,
        )


def _axis_key_value(value: object) -> object:
    """Axis values as they appear in the store key (JSON scalars only)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigError(
        f"axis values must be JSON scalars in serve requests, got {type(value).__name__}"
    )


class _FleetRequest:
    """A validated fleet request: the materialized spec plus its store key."""

    __slots__ = (
        "fleet",
        "workers",
        "backend",
        "retries",
        "record_interval_s",
        "idle_step_s",
        "survival_buckets",
        "keep_vehicle_rows",
        "key",
    )

    def __init__(self, document: object, default_workers, default_backend) -> None:
        document = _require_mapping(document, "fleet request")
        _check_fields(
            document,
            {
                "fleet",
                "scenario",
                "vehicles",
                "seed",
                "chunk_vehicles",
                "workers",
                "backend",
                "retries",
                "record_interval_s",
                "idle_step_s",
                "survival_buckets",
                "keep_vehicle_rows",
            },
            "fleet request",
        )
        if ("fleet" in document) == ("scenario" in document):
            raise ConfigError("give exactly one of 'fleet' or 'scenario' in a fleet request")
        if "fleet" in document:
            fleet = FleetSpec.from_dict(_require_mapping(document["fleet"], "fleet"))
        else:
            fleet = FleetSpec.from_base(
                ScenarioSpec.from_dict(_require_mapping(document["scenario"], "scenario"))
            )
        self.fleet = fleet.with_population(
            vehicles=document.get("vehicles"),
            seed=document.get("seed"),
            chunk_vehicles=document.get("chunk_vehicles"),
        )
        self.workers, self.backend = _parse_workers_backend(
            document, default_workers, default_backend
        )
        self.retries = document.get("retries", 0)
        self.record_interval_s = document.get("record_interval_s", 1.0)
        self.idle_step_s = document.get("idle_step_s", 1.0)
        self.survival_buckets = document.get("survival_buckets", DEFAULT_SURVIVAL_BUCKETS)
        self.keep_vehicle_rows = bool(document.get("keep_vehicle_rows", False))
        # Mirrors FleetRunner.checkpoint_key(): the full fleet document plus
        # every runner parameter the kernels read.  keep_vehicle_rows shapes
        # the *document* (rows present or null), so it keys too; retries/
        # workers/backend shape only the execution plan and do not.
        self.key = {
            "kind": "fleet",
            "fleet": self.fleet.to_dict(),
            "record_interval_s": self.record_interval_s,
            "idle_step_s": self.idle_step_s,
            "survival_buckets": self.survival_buckets,
            "keep_vehicle_rows": self.keep_vehicle_rows,
        }

    def build_runner(
        self, evaluator_cache=None, checkpoint=None, progress=None, should_stop=None
    ) -> FleetRunner:
        return FleetRunner(
            self.fleet,
            workers=self.workers,
            backend=self.backend,
            survival_buckets=self.survival_buckets,
            keep_vehicle_rows=self.keep_vehicle_rows,
            record_interval_s=self.record_interval_s,
            idle_step_s=self.idle_step_s,
            checkpoint=checkpoint,
            retries=self.retries,
            progress=progress,
            should_stop=should_stop,
            evaluator_cache=evaluator_cache,
        )


class Job:
    """One submitted request: identity, state, live progress, outcome.

    States: ``queued`` (accepted, waiting for a worker), ``running``,
    ``done`` (result available — possibly ``partial`` after a stop
    request), ``failed`` (``error`` carries the one-line diagnosis).  A
    store hit skips the queue entirely: the job is born ``done`` with
    ``store_hit`` set and the stored bytes attached.

    Every observable mutation bumps a monotonic ``version`` and notifies
    waiters, which is what :meth:`wait_for_change` — the engine behind the
    HTTP layer's long-poll (``GET /jobs/{id}?wait=...&version=...``) —
    blocks on: a client holding version N sleeps server-side until the job
    moves past N (a progress event, a state change) instead of hammering
    fixed-interval polls.
    """

    def __init__(self, job_id: str, kind: str, digest: str, items_total, chunks_total) -> None:
        self.id = job_id
        self.kind = kind
        self.digest = digest
        self.state = "queued"
        self.store_hit = False
        self.partial = False
        self.version = 0
        self.error: str | None = None
        self.result_bytes: bytes | None = None
        self.failures: list[dict[str, object]] = []
        # A Condition doubles as the job's mutex (``with job._lock`` works
        # unchanged) and carries the long-poll wakeups.
        self._lock = threading.Condition()
        self._progress: dict[str, object] = {
            "items_done": 0,
            "items_total": items_total,
            "chunks_done": 0,
            "chunks_total": chunks_total,
            "failures": 0,
        }

    def _bump(self) -> None:
        """Advance the version and wake long-pollers (lock must be held)."""
        self.version += 1
        self._lock.notify_all()

    def _observe(self, event: Mapping[str, object]) -> None:
        """Engine observer: fold one progress event into the job record."""
        with self._lock:
            self._progress["items_done"] = event.get(
                "items_done", self._progress["items_done"]
            )
            self._progress["failures"] = event.get("failures", self._progress["failures"])
            if event.get("event") == "chunk":
                self._progress["chunks_done"] = event.get(
                    "chunks_done", self._progress["chunks_done"]
                )
            self._bump()

    def wait_for_change(self, version: int, timeout: float) -> dict[str, object]:
        """Block until the job moves past ``version`` (or ``timeout`` elapses).

        Returns the job-status document either way; a job already past the
        caller's version — or already terminal — returns immediately, so a
        stale or missing version degrades to a plain status read.
        """
        with self._lock:
            self._lock.wait_for(
                lambda: self.version != version or self.state in ("done", "failed"),
                timeout=timeout,
            )
            return self.to_document()

    def to_document(self) -> dict[str, object]:
        """The JSON-ready job-status payload (a consistent snapshot)."""
        with self._lock:
            return {
                "id": self.id,
                "kind": self.kind,
                "state": self.state,
                "digest": self.digest,
                "store_hit": self.store_hit,
                "partial": self.partial,
                "version": self.version,
                "progress": dict(self._progress),
                "failures": list(self.failures),
                "error": self.error,
                "result_ready": self.result_bytes is not None,
            }


class JobManager:
    """Accepts requests, runs them on worker threads, remembers results.

    Args:
        evaluator_cache: a shared :class:`~repro.serve.cache.EvaluatorLRU`
            (one is created with ``evaluator_capacity`` when omitted).
        evaluator_capacity: capacity of the auto-created LRU.
        store: a :class:`~repro.serve.store.ResultStore` (in-memory one
            created when omitted).
        workers: default engine pool width for requests that omit it.
        backend: default engine backend for requests that omit it.
        job_workers: how many jobs run concurrently (each job may itself
            fan out over engine workers).
        checkpoint_root: directory under which fleet jobs journal their
            chunks (per-job subdirectory named by the store digest); with
            it, a stopped or crashed job resumes on re-submission.
    """

    def __init__(
        self,
        evaluator_cache: EvaluatorLRU | None = None,
        evaluator_capacity: int = 8,
        store: ResultStore | None = None,
        workers: int | None = None,
        backend: str = "thread",
        job_workers: int = 1,
        checkpoint_root: str | Path | None = None,
    ) -> None:
        if not isinstance(job_workers, int) or isinstance(job_workers, bool) or job_workers < 1:
            raise ConfigError(f"job_workers must be a positive integer, got {job_workers!r}")
        # `is not None`, not truthiness: both containers define __len__, so
        # a freshly created (empty) cache or store is falsy.
        self.evaluator_cache = (
            evaluator_cache
            if evaluator_cache is not None
            else EvaluatorLRU(capacity=evaluator_capacity)
        )
        self.store = store if store is not None else ResultStore()
        self.default_workers = workers
        self.default_backend = backend
        self.checkpoint_root = Path(checkpoint_root) if checkpoint_root is not None else None
        self._started = time.monotonic()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._requests: dict[str, object] = {}
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._sequence = 0
        self._closed = False
        self._stop_event = threading.Event()
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-job-{i}", daemon=True)
            for i in range(job_workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------

    def submit_study(self, document: object) -> Job:
        """Validate and enqueue a study request (or answer from the store)."""
        request = _StudyRequest(document, self.default_workers, self.default_backend)
        items_total = len(request.build_study())
        return self._admit("study", request, items_total=items_total, chunks_total=None)

    def submit_fleet(self, document: object) -> Job:
        """Validate and enqueue a fleet request (or answer from the store)."""
        request = _FleetRequest(document, self.default_workers, self.default_backend)
        return self._admit(
            "fleet",
            request,
            items_total=request.fleet.vehicles,
            chunks_total=request.fleet.chunk_count(),
        )

    def _admit(self, kind: str, request, items_total, chunks_total) -> Job:
        digest = self.store.key_digest(request.key)
        with self._lock:
            if self._closed:
                raise ServeError("the job manager is shut down; not accepting requests")
            self._sequence += 1
            job_id = f"job-{self._sequence:06d}-{digest[:8]}"
            job = Job(job_id, kind, digest, items_total, chunks_total)
            self._jobs[job_id] = job
            self._order.append(job_id)
        stored = self.store.get(digest)
        if stored is not None:
            # Store hit: the result is already content-addressed — the job
            # is born done and never touches the queue or the engines.
            with job._lock:
                job.state = "done"
                job.store_hit = True
                job.result_bytes = stored
                job._bump()
            return job
        self._requests[job_id] = request
        self._queue.put(job_id)
        return job

    # -- lookup ---------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """Every accepted job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def result_bytes(self, job_id: str) -> bytes:
        """The finished job's result document bytes (the store's verbatim)."""
        job = self.get(job_id)
        with job._lock:
            if job.state == "failed":
                raise ServeError(f"job {job_id} failed: {job.error}")
            if job.result_bytes is None:
                raise ServeError(f"job {job_id} is {job.state}; result not ready")
            return job.result_bytes

    def stats(self) -> dict[str, object]:
        """Manager-level health for ``GET /healthz``.

        Job counts by state, this replica's identity (``pid`` — a
        multi-endpoint client can tell which replica answered) and uptime,
        plus the *full* evaluator-LRU and result-store counter sets
        (capacity/size/hits/misses/evictions; entries/bytes/budget/writes/
        evictions/oversize rejects).
        """
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for job in self.jobs():
            counts[job.state] += 1
        return {
            "jobs": counts,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "array_backend": active_backend_info(),
            "evaluator_cache": self.evaluator_cache.stats(),
            "store": self.store.stats(),
        }

    # -- execution ------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs[job_id]
            request = self._requests.pop(job_id, None)
            with job._lock:
                if job.state != "queued":
                    continue
                job.state = "running"
                job._bump()
            try:
                if job.kind == "study":
                    self._run_study(job, request)
                else:
                    self._run_fleet(job, request)
            except ReproError as error:
                with job._lock:
                    job.state = "failed"
                    job.error = str(error)
                    job._bump()
            except Exception as error:  # pragma: no cover - defensive
                with job._lock:
                    job.state = "failed"
                    job.error = f"{type(error).__name__}: {error}"
                    job._bump()

    def _finish(self, job: Job, document: dict[str, object], partial: bool) -> None:
        payload = encode_document(document)
        if not partial:
            # Only complete results are content-addressed: a partial
            # document depends on where the run stopped, so storing it
            # would poison every later request for the same key.
            self.store.put(job.digest, payload)
        with job._lock:
            job.partial = partial
            job.result_bytes = payload
            job.state = "done"
            job._bump()

    def _run_study(self, job: Job, request: _StudyRequest) -> None:
        study = request.build_study(evaluator_cache=self.evaluator_cache)
        result = study.run(
            request.analysis,
            workers=request.workers,
            backend=request.backend,
            progress=job._observe,
        )
        self._finish(job, study_result_document(result), partial=False)

    def _run_fleet(self, job: Job, request: _FleetRequest) -> None:
        checkpoint = None
        if self.checkpoint_root is not None:
            checkpoint = str(self.checkpoint_root / job.digest[:16])
        runner = request.build_runner(
            evaluator_cache=self.evaluator_cache,
            checkpoint=checkpoint,
            progress=job._observe,
            should_stop=self._stop_event.is_set,
        )
        result = runner.run()
        with job._lock:
            job.failures = list(result.metadata["failures"])
            job._bump()
        self._finish(job, fleet_result_document(result), partial=result.metadata["partial"])

    # -- shutdown -------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and wind the workers down.

        Args:
            drain: ``True`` finishes every job already accepted before
                returning.  ``False`` cancels still-queued jobs and raises
                the stop flag, which in-flight fleet runs observe at their
                next chunk boundary — with a ``checkpoint_root`` they end
                partial and journaled (resumable on re-submission).
            timeout: per-thread join timeout.
        """
        with self._lock:
            self._closed = True
        if not drain:
            self._stop_event.set()
            for job in self.jobs():
                with job._lock:
                    if job.state == "queued":
                        job.state = "failed"
                        job.error = "cancelled by server shutdown"
                        job._bump()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
