"""Blocking HTTP client for the serving layer (stdlib ``http.client``).

The in-repo counterpart of :mod:`repro.serve.api`: tests, benchmarks and
scripts drive a running server through this instead of hand-rolling HTTP.
Every call opens a fresh connection (the server closes after each
response anyway), decodes the JSON body, and raises
:class:`~repro.errors.ServeError` carrying the server's one-line
``error`` diagnosis on any non-2xx status.  :meth:`ServeClient.result_bytes`
returns the raw body without decoding — the byte-identity assertions
compare exactly what went over the wire.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.errors import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """Talks to one ``tpms-energy serve`` instance.

    Args:
        host: server host.
        port: server port.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _request(self, method: str, path: str, document: object = None) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if document is not None:
                body = json.dumps(document, allow_nan=False).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (ConnectionError, OSError) as error:
            raise ServeError(f"cannot reach serve at {self.host}:{self.port}: {error}") from error
        finally:
            connection.close()

    def _json(self, method: str, path: str, document: object = None) -> dict:
        status, payload = self._request(method, path, document)
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(f"bad JSON from {path}: {error}") from error
        if status >= 400:
            message = decoded.get("error", payload.decode("utf-8", "replace"))
            raise ServeError(f"{method} {path} -> {status}: {message}")
        return decoded

    # -- endpoints ------------------------------------------------------------

    def submit_study(self, document: dict) -> dict:
        """``POST /studies``; returns the job-status document."""
        return self._json("POST", "/studies", document)

    def submit_fleet(self, document: dict) -> dict:
        """``POST /fleet``; returns the job-status document."""
        return self._json("POST", "/fleet", document)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}``; the live job-status document."""
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """``GET /jobs``; every job in submission order."""
        return self._json("GET", "/jobs")["jobs"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /jobs/{id}/result`` — the raw body, byte-exact."""
        status, payload = self._request("GET", f"/jobs/{job_id}/result")
        if status != 200:
            try:
                message = json.loads(payload.decode("utf-8")).get("error", "")
            except (UnicodeDecodeError, json.JSONDecodeError):
                message = payload.decode("utf-8", "replace")
            raise ServeError(f"GET /jobs/{job_id}/result -> {status}: {message}")
        return payload

    def result(self, job_id: str) -> dict:
        """The finished job's result document, decoded."""
        return json.loads(self.result_bytes(job_id).decode("utf-8"))

    def scenarios(self) -> dict:
        """``GET /scenarios``; the registry listing."""
        return self._json("GET", "/scenarios")

    def health(self) -> dict:
        """``GET /healthz``; liveness plus cache/store/job counters."""
        return self._json("GET", "/healthz")

    # -- convenience ----------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05) -> dict:
        """Poll ``GET /jobs/{id}`` until the job is done or failed.

        Returns the final status document; raises :class:`ServeError` if
        the job fails or the timeout elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["state"] == "done":
                return document
            if document["state"] == "failed":
                raise ServeError(f"job {job_id} failed: {document['error']}")
            if time.monotonic() >= deadline:
                raise ServeError(f"job {job_id} still {document['state']} after {timeout:.0f}s")
            time.sleep(poll_s)
