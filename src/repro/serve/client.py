"""Replica-aware blocking HTTP client (stdlib ``http.client``).

The in-repo counterpart of :mod:`repro.serve.api`: tests, benchmarks, CI
and the ``tpms-energy submit`` subcommand drive running servers through
this instead of hand-rolling HTTP.  Every call opens a fresh connection
(the server closes after each response anyway) and decodes the JSON body.

Resilience model
----------------

The client holds an ordered list of replica *endpoints*.  Each request is
tried against the preferred endpoint first, then fails over down the list
on connection refusal/reset/timeout; a full pass with no answer is one
attempt, retried up to ``retries`` more times with deterministic
exponential backoff.  Whichever endpoint answers becomes preferred, so a
healthy replica keeps serving until it stops answering.  Retrying requests
is safe by construction: submissions are content-addressed (a duplicate
``POST`` of the same document is the same job or a store hit), and
store-hit replies are byte-identical — the serving layer's core contract.

Failures split into a typed taxonomy so callers retry exactly what
retrying can fix: :class:`~repro.errors.ServeConnectionError` (retryable —
no replica produced an answer) versus :class:`~repro.errors.ServeHTTPError`
(terminal — a replica answered with a non-2xx status, carried as
``.status``/``.body``).

:meth:`ServeClient.wait` prefers the server's long-poll
(``GET /jobs/{id}?wait=S&version=N``) whenever the status document carries
a ``version`` field; against an older server it degrades to polling on a
deterministic exponential backoff schedule capped at 1 s.
:meth:`run_study` / :meth:`run_fleet` wrap the whole
submit→wait→fetch-result exchange with failover-by-resubmission: if the
serving replica dies mid-job, the request is re-POSTed to a live replica,
which — with a shared store and checkpoint root — resumes the journaled
run and returns bytes identical to an uninterrupted one.
:meth:`ServeClient.result_bytes` returns the raw body without decoding —
the byte-identity assertions compare exactly what went over the wire.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.errors import ConfigError, ServeConnectionError, ServeError, ServeHTTPError

__all__ = ["ServeClient"]

#: First delay of every exponential backoff schedule (doubles per step).
_INITIAL_BACKOFF_S = 0.02
#: Ceiling of the poll/retry backoff schedule.
_BACKOFF_CAP_S = 1.0
#: How long one long-poll asks the server to hold (server caps at 30 s).
_LONG_POLL_S = 10.0


def _parse_endpoint(endpoint) -> tuple[str, int]:
    """Normalize ``"host:port"`` strings and ``(host, port)`` pairs."""
    if isinstance(endpoint, str):
        host, sep, port_text = endpoint.rpartition(":")
        if not sep or not host:
            raise ConfigError(f"endpoint must look like host:port, got {endpoint!r}")
        try:
            return host, int(port_text)
        except ValueError as error:
            raise ConfigError(f"endpoint {endpoint!r} has a non-integer port") from error
    try:
        host, port = endpoint
    except (TypeError, ValueError) as error:
        raise ConfigError(
            f"endpoint must be 'host:port' or (host, port), got {endpoint!r}"
        ) from error
    if not isinstance(host, str) or not isinstance(port, int) or isinstance(port, bool):
        raise ConfigError(f"endpoint must be (str host, int port), got {endpoint!r}")
    return host, port


def _backoff_schedule(initial_s: float = _INITIAL_BACKOFF_S, cap_s: float = _BACKOFF_CAP_S):
    """The deterministic delay sequence: initial, doubling, capped.

    Exposed as a generator so tests can pin the exact schedule the client
    sleeps on (0.02, 0.04, 0.08, ... capped at ``cap_s``).
    """
    delay = initial_s
    while True:
        yield min(delay, cap_s)
        delay = min(delay * 2, cap_s)


class ServeClient:
    """Talks to one or more ``tpms-energy serve`` replicas.

    Args:
        host: server host (single-replica shorthand).
        port: server port (single-replica shorthand).
        timeout: per-request socket timeout in seconds (a wedged replica
            counts as unreachable once it elapses).
        endpoints: replica list — ``"host:port"`` strings or ``(host,
            port)`` pairs, tried in order; overrides ``host``/``port``.
        retries: extra full passes over the endpoint list after the first
            all-endpoints-failed pass.
        backoff_s: first retry delay (doubles per retry, capped).
        backoff_cap_s: retry/poll delay ceiling.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
        endpoints=None,
        retries: int = 2,
        backoff_s: float = _INITIAL_BACKOFF_S,
        backoff_cap_s: float = _BACKOFF_CAP_S,
    ) -> None:
        if endpoints is None:
            endpoints = [(host, port)]
        if not endpoints:
            raise ConfigError("endpoints must name at least one replica")
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise ConfigError(f"retries must be a non-negative integer, got {retries!r}")
        self.endpoints = [_parse_endpoint(endpoint) for endpoint in endpoints]
        self.host, self.port = self.endpoints[0]
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._preferred = 0

    @property
    def preferred_endpoint(self) -> tuple[str, int]:
        """The endpoint that last answered (tried first on the next request)."""
        return self.endpoints[self._preferred]

    # -- transport ------------------------------------------------------------

    def _request_once(self, endpoint, method, path, body, headers) -> tuple[int, bytes]:
        host, port = endpoint
        connection = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _request(self, method: str, path: str, document: object = None) -> tuple[int, bytes]:
        """One request with failover: returns the first replica answer.

        An HTTP answer — any status — returns immediately; only transport
        failures (refused, reset, timed out) rotate to the next endpoint
        and, after a full fruitless pass, back off and retry.  Exhausting
        the budget raises :class:`ServeConnectionError` naming the last
        failure.
        """
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document, allow_nan=False).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Exception | None = None
        last_endpoint = self.endpoints[self._preferred]
        delays = _backoff_schedule(self.backoff_s, self.backoff_cap_s)
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(next(delays))
            for offset in range(len(self.endpoints)):
                index = (self._preferred + offset) % len(self.endpoints)
                try:
                    status, payload = self._request_once(
                        self.endpoints[index], method, path, body, headers
                    )
                except (ConnectionError, OSError, http.client.HTTPException) as error:
                    last_error = error
                    last_endpoint = self.endpoints[index]
                    continue
                self._preferred = index
                return status, payload
        host, port = last_endpoint
        attempts = self.retries + 1
        raise ServeConnectionError(
            f"cannot reach serve on any of {len(self.endpoints)} endpoint(s) "
            f"after {attempts} attempt(s); last: {host}:{port}: {last_error}"
        ) from last_error

    def _json(self, method: str, path: str, document: object = None) -> dict:
        status, payload = self._request(method, path, document)
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            if status >= 400:
                decoded = {}
            else:
                raise ServeError(f"bad JSON from {path}: {error}") from error
        if status >= 400:
            message = decoded.get("error", payload.decode("utf-8", "replace"))
            raise ServeHTTPError(
                f"{method} {path} -> {status}: {message}", status=status, body=payload
            )
        return decoded

    # -- endpoints ------------------------------------------------------------

    def submit_study(self, document: dict) -> dict:
        """``POST /studies``; returns the job-status document."""
        return self._json("POST", "/studies", document)

    def submit_fleet(self, document: dict) -> dict:
        """``POST /fleet``; returns the job-status document."""
        return self._json("POST", "/fleet", document)

    def job(self, job_id: str, wait: float | None = None, version: int | None = None) -> dict:
        """``GET /jobs/{id}``; the live job-status document.

        With ``wait`` the server holds the reply until the job changes
        (moves past ``version``) or ``wait`` seconds pass — the long-poll
        used by :meth:`wait`.
        """
        path = f"/jobs/{job_id}"
        params = []
        if wait is not None:
            params.append(f"wait={wait:.3f}")
        if version is not None:
            params.append(f"version={version}")
        if params:
            path += "?" + "&".join(params)
        return self._json("GET", path)

    def jobs(self) -> list[dict]:
        """``GET /jobs``; every job in submission order."""
        return self._json("GET", "/jobs")["jobs"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /jobs/{id}/result`` — the raw body, byte-exact."""
        status, payload = self._request("GET", f"/jobs/{job_id}/result")
        if status != 200:
            try:
                message = json.loads(payload.decode("utf-8")).get("error", "")
            except (UnicodeDecodeError, json.JSONDecodeError):
                message = payload.decode("utf-8", "replace")
            raise ServeHTTPError(
                f"GET /jobs/{job_id}/result -> {status}: {message}",
                status=status,
                body=payload,
            )
        return payload

    def result(self, job_id: str) -> dict:
        """The finished job's result document, decoded."""
        return json.loads(self.result_bytes(job_id).decode("utf-8"))

    def scenarios(self) -> dict:
        """``GET /scenarios``; the registry listing."""
        return self._json("GET", "/scenarios")

    def health(self) -> dict:
        """``GET /healthz``; liveness plus cache/store/job counters."""
        return self._json("GET", "/healthz")

    # -- convenience ----------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 120.0, poll_s: float | None = None) -> dict:
        """Wait until the job is done or failed; returns the final status.

        Long-polls when the server supports it (the status document carries
        a ``version``), so a chunk completion wakes the reply immediately;
        otherwise polls on the deterministic exponential backoff schedule
        starting at ``poll_s`` (default 20 ms) and capped at 1 s — long
        fleet jobs stop being hammered at a fixed 50 ms.  Raises
        :class:`ServeError` if the job fails or the timeout elapses first.
        """
        deadline = time.monotonic() + timeout
        delays = _backoff_schedule(
            poll_s if poll_s is not None else _INITIAL_BACKOFF_S, self.backoff_cap_s
        )
        document = self.job(job_id)
        while True:
            if document["state"] == "done":
                return document
            if document["state"] == "failed":
                raise ServeError(f"job {job_id} failed: {document['error']}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(f"job {job_id} still {document['state']} after {timeout:.0f}s")
            version = document.get("version")
            if version is not None:
                document = self.job(
                    job_id, wait=min(remaining, _LONG_POLL_S), version=version
                )
            else:
                time.sleep(min(next(delays), remaining))
                document = self.job(job_id)

    def run_study(self, document: dict, timeout: float = 600.0) -> tuple[dict, bytes]:
        """Submit a study and ride it to completion with replica failover."""
        return self._run(self.submit_study, document, timeout)

    def run_fleet(self, document: dict, timeout: float = 600.0) -> tuple[dict, bytes]:
        """Submit a fleet run and ride it to completion with replica failover."""
        return self._run(self.submit_fleet, document, timeout)

    def _run(self, submit, document: dict, timeout: float) -> tuple[dict, bytes]:
        """submit → wait → fetch, resubmitting across replica deaths.

        Returns ``(final_status, result_bytes)``.  Two failure shapes are
        survivable mid-exchange and both end in resubmission, which is
        idempotent because requests are content-addressed:

        * :class:`ServeConnectionError` — the serving replica vanished;
          the next pass reaches whichever replica still answers.
        * :class:`ServeHTTPError` 404 — we failed over mid-wait and the
          new replica has never heard of the dead replica's job id; the
          resubmitted document is a store hit (finished) or resumes from
          the shared checkpoint journal (unfinished).

        Every other error — a 400 document, a failed job — is terminal and
        propagates.
        """
        deadline = time.monotonic() + timeout
        delays = _backoff_schedule(self.backoff_s, self.backoff_cap_s)
        last_error: Exception | None = None
        while True:
            try:
                job = submit(document)
                remaining = max(0.1, deadline - time.monotonic())
                final = self.wait(job["id"], timeout=remaining)
                return final, self.result_bytes(job["id"])
            except ServeConnectionError as error:
                last_error = error
            except ServeHTTPError as error:
                if error.status != 404:
                    raise
                last_error = error
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"request did not complete within {timeout:.0f}s; last: {last_error}"
                )
            time.sleep(next(delays))
