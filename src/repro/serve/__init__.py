"""The serving layer: persistent state around the scenario/fleet engines.

One-shot CLI runs rebuild everything per invocation — evaluator, compiled
power table, census-timing walks — and throw it all away on exit.  The
serving layer keeps the expensive state alive across requests:

:mod:`repro.serve.cache`
    A bounded, lock-protected LRU of built ``(node, database, evaluator)``
    component triples, keyed exactly like ``Study._evaluator_for``
    (:meth:`~repro.scenario.spec.ScenarioSpec.evaluator_group_key`).  Both
    :class:`~repro.scenario.study.Study` and
    :class:`~repro.fleet.runner.FleetRunner` accept it via their
    ``evaluator_cache`` parameter, so compiled tables survive across jobs.

:mod:`repro.serve.jobs`
    A :class:`~repro.serve.jobs.JobManager` that accepts scenario/fleet
    JSON documents, runs them through the existing chunked engine on
    background worker threads, and exposes job states
    (``queued``/``running``/``done``/``failed``) with live per-chunk
    progress derived from the engine's observer hooks.

:mod:`repro.serve.store` / :mod:`repro.serve.budget`
    A content-addressed result store: results are keyed by the sha256 of
    the canonical spec document plus the result-shaping runner parameters
    (the same digest discipline checkpoints and run packages use), so a
    repeated request returns the stored bytes verbatim — byte-identical to
    a fresh sequential run.  A persistent store directory may be shared by
    N replica processes (cross-process advisory-locked index) and bounded
    by a :class:`~repro.serve.budget.StoreBudget` with LRU eviction.

:mod:`repro.serve.api` / :mod:`repro.serve.client`
    A stdlib-only HTTP front door (``asyncio`` + hand-rolled HTTP/1.1) and
    the matching replica-aware blocking client (multi-endpoint failover,
    bounded retries with exponential backoff, long-poll job waits) —
    ``POST /studies``, ``POST /fleet``, ``GET /jobs/{id}[?wait=S]``,
    ``GET /jobs/{id}/result``, ``GET /scenarios``, ``GET /healthz`` —
    started from the CLI as ``tpms-energy serve``; documents are submitted
    through replicas with ``tpms-energy submit``.
"""

from repro.serve.api import ServeServer
from repro.serve.budget import StoreBudget
from repro.serve.cache import EvaluatorLRU
from repro.serve.client import ServeClient
from repro.serve.jobs import (
    Job,
    JobManager,
    encode_document,
    fleet_result_document,
    study_result_document,
)
from repro.serve.store import ResultStore

__all__ = [
    "EvaluatorLRU",
    "Job",
    "JobManager",
    "ResultStore",
    "ServeClient",
    "ServeServer",
    "StoreBudget",
    "encode_document",
    "fleet_result_document",
    "study_result_document",
]
