"""Content-addressed result store — byte-exact replay of finished jobs.

A result is stored under the sha256 of its *request*: the canonical JSON
of the spec document plus the result-shaping runner parameters (seed,
record interval, survival buckets, ...), hashed through
:mod:`repro.digest` — the same canonical-digest discipline checkpoint
manifests and run-package ids use.  Execution-only parameters (workers,
backend) are deliberately *excluded* from the key: the engine's
row-identity contract makes them non-result-shaping, so a request run on
8 process workers hits the entry stored by a sequential run.

Values are opaque byte strings (the serialized result document).  Storing
and returning bytes — never re-parsed, never re-serialized — is what lets
the serving layer promise store-hit responses byte-identical to a fresh
run, and is asserted end-to-end by the test suite.

Multi-replica sharing
---------------------

With a directory the store persists each entry as ``<digest>.json`` via
the checkpoint subsystem's write-then-rename + fsync discipline (a torn
write can never surface as a corrupt entry), and N server processes may
share one directory: every metadata read-modify-write — the ``index.json``
recency/size table, eviction, the first-write-wins check — happens under a
cross-process advisory lock (:class:`~repro.fslock.FileLock` on ``.lock``),
so replicas see each other's writes and an eviction can never race a
concurrent ``get`` (both hold the lock while touching entry files).  A
:class:`~repro.serve.budget.StoreBudget` caps entries/bytes with
least-recently-used eviction; evicting is always safe because an evicted
entry is just a replay that recomputes to the same bytes.  Each process
additionally keeps a warm in-memory copy of entries it has served
(bounded by the same budget) so repeated hits skip the disk and the lock;
a warm copy outliving an on-disk eviction is harmless — content
addressing guarantees it still holds the exact bytes.

Without a directory the store is a budget-bounded in-memory map.  Both
modes are lock-protected and counter-instrumented.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.digest import canonical_digest
from repro.errors import ConfigError
from repro.fslock import FileLock
from repro.serve.budget import StoreBudget

__all__ = ["ResultStore"]

_INDEX = "index.json"
_LOCK = ".lock"
_HEX = set("0123456789abcdef")


class ResultStore:
    """Bytes keyed by content digest, optionally persisted to a directory.

    Args:
        directory: where entries live as ``<digest>.json`` files; ``None``
            keeps them in memory only (they die with the process).  A
            directory may be shared by any number of concurrent processes.
        budget: optional :class:`StoreBudget` capping entries/bytes with
            LRU eviction (enforced at open time too, so shrinking the
            budget of an existing directory evicts down to it).

    Counters: ``hits``/``misses`` count :meth:`get` outcomes, ``writes``
    counts :meth:`put` calls that stored a new entry, ``evictions``/
    ``evicted_bytes`` count budget evictions *performed by this process*,
    and ``oversize_rejects`` counts payloads no budget-sized store could
    ever hold.  All are surfaced by :meth:`stats` for ``/healthz``.
    """

    def __init__(
        self, directory: str | Path | None = None, budget: StoreBudget | None = None
    ) -> None:
        if budget is not None and not isinstance(budget, StoreBudget):
            raise ConfigError(
                f"budget must be a StoreBudget, got {type(budget).__name__}"
            )
        self._directory = Path(directory) if directory is not None else None
        self._budget = budget
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self._memory_bytes = 0
        self._tlock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.oversize_rejects = 0
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._flock = FileLock(self._directory / _LOCK)
            # Materialize (or adopt) the shared index and enforce the budget
            # immediately: a replica opening with a smaller budget shrinks
            # the directory before serving its first request.
            with self._flock:
                index = self._read_index()
                self._evict_locked(index, keep=None)
                self._write_index(index)

    @staticmethod
    def key_digest(document: object) -> str:
        """The store key of one request document (canonical-JSON sha256)."""
        try:
            return canonical_digest(document)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"store key is not canonical JSON: {exc}") from exc

    # -- paths and index ------------------------------------------------------

    def _path(self, digest: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{digest}.json"

    @staticmethod
    def _is_entry(path: Path) -> bool:
        stem = path.name[: -len(".json")]
        return (
            path.name.endswith(".json")
            and path.name != _INDEX
            and len(stem) == 64
            and set(stem) <= _HEX
        )

    def _read_index(self) -> dict:
        """The shared index document (rebuilt from the directory if unusable).

        Must be called with the advisory lock held.  A missing or corrupt
        index — a pre-budget store directory, a crash mid-adoption — is
        rebuilt by scanning the entry files, oldest-modified first, so
        recency degrades gracefully instead of failing the store.
        """
        path = self._directory / _INDEX
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            entries = {
                str(digest): {"size": int(entry["size"]), "used": int(entry["used"])}
                for digest, entry in document["entries"].items()
            }
            return {"version": 1, "clock": int(document["clock"]), "entries": entries}
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            pass
        entries: dict[str, dict[str, int]] = {}
        clock = 0
        files = [p for p in self._directory.iterdir() if self._is_entry(p)]
        for entry_path in sorted(files, key=lambda p: p.stat().st_mtime):
            clock += 1
            entries[entry_path.name[: -len(".json")]] = {
                "size": entry_path.stat().st_size,
                "used": clock,
            }
        return {"version": 1, "clock": clock, "entries": entries}

    def _write_index(self, index: dict) -> None:
        """Atomically persist the index (lock held): tmp + fsync + rename."""
        path = self._directory / _INDEX
        tmp = self._directory / (_INDEX + ".tmp")
        payload = (json.dumps(index, separators=(",", ":")) + "\n").encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _evict_locked(self, index: dict, keep: str | None) -> None:
        """Evict least-recently-used entries until the budget holds.

        Called with the advisory lock held, so no concurrent ``get`` can be
        mid-read of a file this removes.  ``keep`` (the entry being written)
        is never evicted — :meth:`StoreBudget.admits` already guaranteed it
        fits on its own.
        """
        if self._budget is None:
            return
        entries = index["entries"]
        while self._budget.exceeded(
            len(entries), sum(entry["size"] for entry in entries.values())
        ):
            candidates = [digest for digest in entries if digest != keep]
            if not candidates:
                break
            victim = min(candidates, key=lambda digest: entries[digest]["used"])
            size = entries[victim]["size"]
            self._path(victim).unlink(missing_ok=True)
            del entries[victim]
            self.evictions += 1
            self.evicted_bytes += size

    # -- in-memory map --------------------------------------------------------

    def _remember(self, digest: str, payload: bytes, count_evictions: bool) -> None:
        """Insert into the in-memory map and trim it to the budget (tlock held).

        For the memory-only store the trim *is* budget eviction and counts;
        for a persistent store the map is just this process's warm cache and
        trimming it is invisible (the entry is still on disk).
        """
        if digest not in self._memory:
            self._memory_bytes += len(payload)
        self._memory[digest] = payload
        self._memory.move_to_end(digest)
        if self._budget is None:
            return
        while self._budget.exceeded(len(self._memory), self._memory_bytes):
            victim = next(iter(self._memory))
            if victim == digest:
                break
            evicted = self._memory.pop(victim)
            self._memory_bytes -= len(evicted)
            if count_evictions:
                self.evictions += 1
                self.evicted_bytes += len(evicted)

    # -- public API -----------------------------------------------------------

    def get(self, digest: str) -> bytes | None:
        """The stored bytes for ``digest``, or ``None`` on a miss.

        Persistent mode refreshes the entry's recency in the shared index
        (under the advisory lock), so cross-process LRU eviction spares hot
        entries; hits served from this process's warm map skip the lock and
        leave the shared recency untouched — an acceptable approximation,
        since a wrongly-evicted entry only costs a deterministic recompute.
        """
        with self._tlock:
            payload = self._memory.get(digest)
            if payload is not None:
                self._memory.move_to_end(digest)
                self.hits += 1
                return payload
        if self._directory is None:
            with self._tlock:
                self.misses += 1
            return None
        with self._flock:
            index = self._read_index()
            entries = index["entries"]
            path = self._path(digest)
            if digest not in entries and path.exists():
                # Adopt a write this index never saw (legacy directory or a
                # file dropped in by hand).
                entries[digest] = {"size": path.stat().st_size, "used": 0}
            if digest not in entries or not path.exists():
                if digest in entries:
                    # The index outlived its file (crash between unlink and
                    # index write elsewhere); heal it.
                    del entries[digest]
                    self._write_index(index)
                with self._tlock:
                    self.misses += 1
                return None
            payload = path.read_bytes()
            index["clock"] += 1
            entries[digest]["used"] = index["clock"]
            entries[digest]["size"] = len(payload)
            self._write_index(index)
            with self._tlock:
                self._remember(digest, payload, count_evictions=False)
                self.hits += 1
        return payload

    def put(self, digest: str, payload: bytes) -> bool:
        """Store ``payload`` under ``digest``; ``True`` if this call stored it.

        Idempotent, first write wins — across threads *and* processes (the
        existence check and the write happen under the advisory lock).
        Content addressing makes a second write of the same digest carry
        the same bytes by construction, so re-puts are dropped rather than
        rewritten — a concurrent duplicate job can never tear an entry a
        reader is streaming.  A payload larger than the budget's byte cap
        is rejected (counted in ``oversize_rejects``) instead of evicting
        the whole store to make room.
        """
        if not isinstance(payload, bytes):
            raise ConfigError(
                f"result store payloads must be bytes, got {type(payload).__name__}"
            )
        if self._budget is not None and not self._budget.admits(len(payload)):
            with self._tlock:
                self.oversize_rejects += 1
            return False
        if self._directory is None:
            with self._tlock:
                if digest in self._memory:
                    return False
                self.writes += 1
                self._remember(digest, payload, count_evictions=True)
            return True
        stored = False
        with self._flock:
            index = self._read_index()
            entries = index["entries"]
            path = self._path(digest)
            dirty = False
            if digest not in entries and path.exists():
                entries[digest] = {"size": path.stat().st_size, "used": 0}
                dirty = True
            if digest not in entries:
                # Checkpoint-style atomicity: a crash mid-write leaves a
                # tmp file, never a half-written blessed entry.
                tmp = path.with_suffix(".json.tmp")
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
                index["clock"] += 1
                entries[digest] = {"size": len(payload), "used": index["clock"]}
                self._evict_locked(index, keep=digest)
                stored = True
                dirty = True
            if dirty:
                self._write_index(index)
            if stored:
                # Warm only what this call actually stored: on a lost
                # first-write-wins race the on-disk bytes are the truth and
                # the next get() warms them.
                with self._tlock:
                    self.writes += 1
                    self._remember(digest, payload, count_evictions=False)
        return stored

    def __contains__(self, digest: str) -> bool:
        with self._tlock:
            if digest in self._memory:
                return True
        if self._directory is None:
            return False
        with self._flock:
            return self._path(digest).exists()

    def __len__(self) -> int:
        if self._directory is None:
            with self._tlock:
                return len(self._memory)
        with self._flock:
            return len(self._read_index()["entries"])

    def stats(self) -> dict[str, object]:
        """Observable store state: size, budget, persistence mode, counters.

        ``entries``/``bytes`` describe the shared truth (the directory for
        a persistent store, the map otherwise); the counters are this
        process's lifetime totals.
        """
        if self._directory is not None:
            with self._flock:
                entries = self._read_index()["entries"]
                count = len(entries)
                total = sum(entry["size"] for entry in entries.values())
        else:
            with self._tlock:
                count = len(self._memory)
                total = self._memory_bytes
        return {
            "entries": count,
            "bytes": total,
            "persistent": self._directory is not None,
            "budget": self._budget.to_document() if self._budget is not None else None,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "oversize_rejects": self.oversize_rejects,
        }
