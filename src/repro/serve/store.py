"""Content-addressed result store — byte-exact replay of finished jobs.

A result is stored under the sha256 of its *request*: the canonical JSON
of the spec document plus the result-shaping runner parameters (seed,
record interval, survival buckets, ...), hashed through
:mod:`repro.digest` — the same canonical-digest discipline checkpoint
manifests and run-package ids use.  Execution-only parameters (workers,
backend) are deliberately *excluded* from the key: the engine's
row-identity contract makes them non-result-shaping, so a request run on
8 process workers hits the entry stored by a sequential run.

Values are opaque byte strings (the serialized result document).  Storing
and returning bytes — never re-parsed, never re-serialized — is what lets
the serving layer promise store-hit responses byte-identical to a fresh
run, and is asserted end-to-end by the test suite.

With a directory the store persists each entry as ``<digest>.json`` via
the checkpoint subsystem's write-then-rename + fsync discipline (a torn
write can never surface as a corrupt entry); without one it is a plain
in-memory dict.  Both modes are lock-protected and counter-instrumented.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.digest import canonical_digest
from repro.errors import ConfigError

__all__ = ["ResultStore"]


class ResultStore:
    """Bytes keyed by content digest, optionally persisted to a directory.

    Args:
        directory: where entries live as ``<digest>.json`` files; ``None``
            keeps them in memory only (they die with the process).

    Counters: ``hits``/``misses`` count :meth:`get` outcomes, ``writes``
    counts :meth:`put` calls that stored a new entry.  All are surfaced by
    :meth:`stats` for the ``/healthz`` endpoint.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @staticmethod
    def key_digest(document: object) -> str:
        """The store key of one request document (canonical-JSON sha256)."""
        try:
            return canonical_digest(document)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"store key is not canonical JSON: {exc}") from exc

    def _path(self, digest: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{digest}.json"

    def get(self, digest: str) -> bytes | None:
        """The stored bytes for ``digest``, or ``None`` on a miss."""
        with self._lock:
            payload = self._entries.get(digest)
            if payload is not None:
                self.hits += 1
                return payload
            if self._directory is not None:
                path = self._path(digest)
                if path.exists():
                    payload = path.read_bytes()
                    # Warm the in-memory map so repeated hits skip the disk.
                    self._entries[digest] = payload
                    self.hits += 1
                    return payload
            self.misses += 1
            return None

    def put(self, digest: str, payload: bytes) -> None:
        """Store ``payload`` under ``digest`` (idempotent; first write wins).

        Content addressing makes a second write of the same digest carry
        the same bytes by construction, so re-puts are dropped rather than
        rewritten — a concurrent duplicate job can never tear an entry a
        reader is streaming.
        """
        if not isinstance(payload, bytes):
            raise ConfigError(
                f"result store payloads must be bytes, got {type(payload).__name__}"
            )
        with self._lock:
            if digest in self._entries:
                return
            if self._directory is not None:
                path = self._path(digest)
                if not path.exists():
                    # Checkpoint-style atomicity: a crash mid-write leaves a
                    # tmp file, never a half-written blessed entry.
                    tmp = path.with_suffix(".json.tmp")
                    with open(tmp, "wb") as handle:
                        handle.write(payload)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, path)
            self._entries[digest] = payload
            self.writes += 1

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            if digest in self._entries:
                return True
            return self._directory is not None and self._path(digest).exists()

    def __len__(self) -> int:
        with self._lock:
            if self._directory is None:
                return len(self._entries)
            return sum(1 for _ in self._directory.glob("*.json"))

    def stats(self) -> dict[str, object]:
        """Observable store state: size, persistence mode, counters."""
        return {
            "entries": len(self),
            "persistent": self._directory is not None,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
