"""Bounded evaluator LRU — compiled power tables that outlive one request.

Building a scenario's components (:meth:`ScenarioSpec.build_components`)
re-targets the power database and compiles the evaluator's power table;
at serving scale that cost dominates small requests.  The
:class:`EvaluatorLRU` keeps the most recently used component triples
alive across jobs, keyed exactly like the per-study cache
(:meth:`~repro.scenario.spec.ScenarioSpec.evaluator_group_key`), so any
mix of studies and fleets sharing an (architecture, workload, database)
pays the build once.

Concurrency contract: ``get(key, builder)`` is single-flight per key —
when N threads miss the same key simultaneously, exactly one runs the
builder while the rest wait for its result; builds of *different* keys
proceed in parallel (the map lock is never held while building).  That is
what lets many concurrent ``Study.run`` calls share one LRU without
either duplicate compilation or a global build bottleneck.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.errors import ConfigError

__all__ = ["EvaluatorLRU"]


class _Flight:
    """One in-progress build other threads can wait on."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class EvaluatorLRU:
    """A bounded, lock-protected, single-flight LRU of built components.

    Args:
        capacity: maximum number of entries kept alive.  When a build
            pushes the map past the capacity, the least recently *used*
            entry is dropped (``evictions`` counts them).

    The cache is value-agnostic — it stores whatever the builder returns —
    but its intended cargo is the ``(node, database, evaluator)`` triples
    of :meth:`ScenarioSpec.build_components`, keyed by
    :meth:`ScenarioSpec.evaluator_group_key`.  Counters (``hits``,
    ``misses``, ``evictions``) are monotonic over the cache's lifetime and
    surfaced by :meth:`stats` (the ``/healthz`` endpoint reports them).
    """

    def __init__(self, capacity: int = 8) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ConfigError(
                f"evaluator LRU capacity must be a positive integer, got {capacity!r}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._inflight: dict[object, _Flight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.build_wall_time_s = 0.0
        self.last_build_wall_time_s = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: object, builder):
        """The cached value for ``key``, building it via ``builder`` on a miss.

        Exactly one thread runs ``builder`` per missing key; concurrent
        callers of the same key block until that build completes and share
        its result (they count as hits — they did not build).  A builder
        exception propagates to every waiter and leaves the key absent, so
        a later call retries the build.
        """
        if not callable(builder):
            raise ConfigError(f"LRU builder must be callable, got {type(builder).__name__}")
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                self.misses += 1
                leader = True
            else:
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.hits += 1
            return flight.value
        started = time.perf_counter()
        try:
            value = builder()
        except BaseException as error:
            with self._lock:
                flight.error = error
                del self._inflight[key]
            flight.done.set()
            raise
        elapsed = time.perf_counter() - started
        with self._lock:
            self.build_wall_time_s += elapsed
            self.last_build_wall_time_s = elapsed
            flight.value = value
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            del self._inflight[key]
        flight.done.set()
        return value

    def clear(self) -> None:
        """Drop every cached entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int | float]:
        """Observable cache state: capacity, size and lifetime counters.

        ``build_wall_time_s`` is the cumulative wall time spent inside
        successful builders (the "how much compilation is this replica
        paying" signal); ``last_build_wall_time_s`` is the most recent
        successful build alone.
        """
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "build_wall_time_s": self.build_wall_time_s,
                "last_build_wall_time_s": self.last_build_wall_time_s,
            }
