"""The HTTP front door — stdlib-only (``asyncio`` + hand-rolled HTTP/1.1).

Endpoints (all JSON in, JSON out)::

    POST /studies          submit a study request document -> job status
    POST /fleet            submit a fleet request document -> job status
    GET  /jobs/{id}        job status (state, progress, failures); with
                           ``?wait=S&version=N`` it long-polls: the reply
                           is held until the job moves past version N (a
                           chunk completes, the state changes) or S
                           seconds elapse, fed by the engine's per-chunk
                           observer events — clients stop fixed-interval
                           hammering
    GET  /jobs/{id}/result finished job's result document (stored bytes,
                           returned verbatim -> byte-identical replays)
    GET  /jobs             every job, in submission order
    GET  /scenarios        registry listing (components, cycles, axes)
    GET  /healthz          server liveness + uptime/pid + full cache,
                           store (budget, evictions) and job counters

The request/response handling is deliberately minimal: one request per
connection (``Connection: close``), bodies sized by ``Content-Length``.
Routing lives in the transport-free :class:`ServeApp` (unit-testable
without sockets); :class:`ServeServer` wraps it in an asyncio server that
runs either in the foreground (the ``tpms-energy serve`` subcommand) or
on a background thread (tests, benchmarks).

Error mapping: malformed documents (:class:`~repro.errors.ConfigError`)
are 400s, unknown jobs are 404s, asking for the result of an unfinished
job is a 409 — each with a one-line JSON ``{"error": ...}`` body, never a
traceback.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import urllib.parse
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ConfigError, ReproError, ServeError
from repro.scenario.listing import scenario_listing
from repro.serve.jobs import JobManager

__all__ = ["ServeApp", "ServeServer"]

_MAX_BODY_BYTES = 16 * 1024 * 1024
#: Upper bound on one long-poll hold; clients re-issue to wait longer.
_MAX_LONG_POLL_S = 30.0
#: Handler threads; sized so parked long-polls cannot starve status reads.
_HANDLER_THREADS = 32


class ServeApp:
    """Transport-free request router over one :class:`JobManager`."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        """Route one request; returns ``(status, body, content_type)``."""
        try:
            return self._route(method, path, body)
        except ConfigError as error:
            return _error(400, str(error))
        except ServeError as error:
            message = str(error)
            if message.startswith("unknown job"):
                return _error(404, message)
            return _error(409, message)
        except ReproError as error:
            return _error(500, str(error))

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        path, _, query = path.partition("?")
        params = urllib.parse.parse_qs(query)
        path = path.rstrip("/") or "/"
        if path == "/studies" or path == "/fleet":
            if method != "POST":
                return _error(405, f"{path} accepts POST only")
            document = _parse_body(body)
            if path == "/studies":
                job = self.manager.submit_study(document)
            else:
                job = self.manager.submit_fleet(document)
            return _json(202 if job.state == "queued" else 200, job.to_document())
        if path == "/jobs":
            if method != "GET":
                return _error(405, "/jobs accepts GET only")
            return _json(200, {"jobs": [job.to_document() for job in self.manager.jobs()]})
        if path.startswith("/jobs/"):
            if method != "GET":
                return _error(405, "job endpoints accept GET only")
            remainder = path[len("/jobs/") :]
            if remainder.endswith("/result"):
                job_id = remainder[: -len("/result")]
                payload = self.manager.result_bytes(job_id)
                # The stored bytes verbatim: re-serializing here would break
                # the byte-identity contract the store exists to provide.
                return 200, payload, "application/json"
            job = self.manager.get(remainder)
            if "wait" in params:
                wait_s = min(_parse_float(params, "wait"), _MAX_LONG_POLL_S)
                version = _parse_int(params, "version") if "version" in params else -1
                return _json(200, job.wait_for_change(version, max(0.0, wait_s)))
            return _json(200, job.to_document())
        if path == "/scenarios":
            if method != "GET":
                return _error(405, "/scenarios accepts GET only")
            return _json(200, scenario_listing())
        if path == "/healthz":
            if method != "GET":
                return _error(405, "/healthz accepts GET only")
            return _json(200, {"status": "ok", **self.manager.stats()})
        return _error(404, f"no route for {path!r}")


def _parse_float(params: dict[str, list[str]], name: str) -> float:
    try:
        return float(params[name][0])
    except (TypeError, ValueError) as error:
        raise ConfigError(f"query parameter {name!r} must be a number: {error}") from error


def _parse_int(params: dict[str, list[str]], name: str) -> int:
    try:
        return int(params[name][0])
    except (TypeError, ValueError) as error:
        raise ConfigError(f"query parameter {name!r} must be an integer: {error}") from error


def _parse_body(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigError(f"request body is not valid JSON: {error}") from error


def _json(status: int, document: object) -> tuple[int, bytes, str]:
    return status, (json.dumps(document, allow_nan=False) + "\n").encode("utf-8"), (
        "application/json"
    )


def _error(status: int, message: str) -> tuple[int, bytes, str]:
    return _json(status, {"error": message})


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServeServer:
    """Asyncio HTTP server around a :class:`ServeApp`.

    Two run modes:

    * ``serve_forever()`` — foreground, until :meth:`stop` (the CLI's
      ``tpms-energy serve``; Ctrl-C triggers a graceful drain).
    * ``start()`` / ``stop()`` — background thread owning its own event
      loop (tests and benchmarks); ``start`` returns once the socket is
      bound and :attr:`port` is known, so ``port=0`` (ephemeral) works.

    ``stop(drain=True)`` closes the listener and then shuts the job
    manager down — draining finishes accepted jobs, ``drain=False`` asks
    in-flight fleet runs to checkpoint and stop at the next chunk
    boundary.
    """

    def __init__(self, manager: JobManager, host: str = "127.0.0.1", port: int = 0) -> None:
        self.manager = manager
        self.app = ServeApp(manager)
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        # A dedicated handler pool (not the loop's default executor): long
        # polls park a thread for up to _MAX_LONG_POLL_S each, and sizing
        # the pool explicitly keeps them from starving anything else that
        # borrows the default executor.
        self._executor = ThreadPoolExecutor(
            max_workers=_HANDLER_THREADS, thread_name_prefix="serve-http"
        )

    # -- asyncio plumbing -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, payload, content_type = await self._handle_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            writer.close()
            return
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head + payload)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    async def _handle_request(self, reader) -> tuple[int, bytes, str]:
        request_line = (await reader.readline()).decode("ascii", "replace").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return _error(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("ascii", "replace").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return _error(400, f"bad Content-Length {value.strip()!r}")
        if content_length > _MAX_BODY_BYTES:
            return _error(413, f"request body over {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        # Submissions validate specs and may touch the store; job execution
        # itself is already on the manager's worker threads.  Run the
        # handler off the event loop so a slow validation never blocks
        # status polls from other connections.
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, self.app.handle, method, path, body)

    async def _serve(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ServeServer":
        """Run the server on a background thread; returns once bound."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise ServeError(f"server failed to start: {self._startup_error}")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def serve_forever(self, ready=None) -> None:
        """Run in the foreground until interrupted (the CLI path).

        Args:
            ready: optional callback invoked with the server once the
                socket is bound — with ``port=0`` this is the only moment
                the actual port becomes known, and the CLI uses it to
                print the real endpoint (the replica harness reads it).
        """
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self._serve())
        self._ready.set()
        if ready is not None:
            ready(self)
        # Explicit loop-level handlers, not a bare KeyboardInterrupt catch:
        # a service must honor SIGTERM (process managers send it), and a
        # backgrounded non-interactive shell starts children with SIGINT
        # ignored — add_signal_handler overrides both dispositions.  The
        # KeyboardInterrupt fallback keeps Ctrl-C working on platforms
        # without loop signal handlers.
        stop_signals = (signal.SIGINT, signal.SIGTERM)
        installed = []
        for stop_signal in stop_signals:
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(stop_signal, loop.stop)
                installed.append(stop_signal)
        try:
            loop.run_forever()
        except KeyboardInterrupt:
            pass
        finally:
            for stop_signal in installed:
                loop.remove_signal_handler(stop_signal)
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()
            self._executor.shutdown(wait=False)
            self.manager.shutdown(drain=True)

    def stop(self, drain: bool = True) -> None:
        """Close the listener, stop the loop, shut the job manager down."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self._executor.shutdown(wait=False)
        self.manager.shutdown(drain=drain)
