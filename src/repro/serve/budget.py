"""Size/entry budgets for the content-addressed result store.

A persistent :class:`~repro.serve.store.ResultStore` shared by N replicas
grows without bound unless something evicts: every distinct request that
ever completed leaves a ``<digest>.json`` behind.  A :class:`StoreBudget`
caps the store by entry count and/or total payload bytes; the store
enforces it with least-recently-*used* eviction (a :meth:`ResultStore.get`
refreshes recency through the shared index, so hot entries survive cold
ones) under the cross-process advisory lock, which is what makes the cap
hold even with several replicas writing concurrently.

Eviction is always safe here because the store is content-addressed: an
evicted entry is not lost state, just a replay that will be recomputed —
and recomputed to the *same bytes* — on the next request for its digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["StoreBudget"]


@dataclass(frozen=True)
class StoreBudget:
    """An upper bound on what the result store may keep.

    Args:
        max_entries: maximum number of stored results (``None`` = no cap).
        max_bytes: maximum total payload bytes (``None`` = no cap).  A
            single payload larger than ``max_bytes`` can never be admitted;
            the store rejects it (counted, the job still returns its
            result) rather than evicting the whole store for one entry.

    At least one cap must be set — an all-``None`` budget is a config
    error, not a silent no-op.
    """

    max_entries: int | None = None
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            raise ConfigError("a store budget needs max_entries and/or max_bytes")
        for name in ("max_entries", "max_bytes"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(
                    f"store budget {name} must be a positive integer, got {value!r}"
                )

    @classmethod
    def from_cli(
        cls, budget_mb: float | None, budget_entries: int | None
    ) -> "StoreBudget | None":
        """Build a budget from the ``--store-budget-*`` CLI flags (or ``None``)."""
        if budget_mb is None and budget_entries is None:
            return None
        max_bytes = None
        if budget_mb is not None:
            max_bytes = int(budget_mb * 1024 * 1024)
            if max_bytes < 1:
                raise ConfigError(
                    f"--store-budget-mb must be positive, got {budget_mb!r}"
                )
        return cls(max_entries=budget_entries, max_bytes=max_bytes)

    def admits(self, size: int) -> bool:
        """Whether a payload of ``size`` bytes can ever fit under this budget."""
        return self.max_bytes is None or size <= self.max_bytes

    def exceeded(self, entries: int, total_bytes: int) -> bool:
        """Whether a store holding ``entries``/``total_bytes`` is over budget."""
        if self.max_entries is not None and entries > self.max_entries:
            return True
        return self.max_bytes is not None and total_bytes > self.max_bytes

    def to_document(self) -> dict[str, int | None]:
        """The JSON-ready form reported by ``stats()`` / ``GET /healthz``."""
        return {"max_entries": self.max_entries, "max_bytes": self.max_bytes}
