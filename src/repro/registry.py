"""The generic named-factory registry backing every declarative namespace.

Scenario components (architectures, power databases, scavengers, storage,
drive cycles — :mod:`repro.scenario.registry`) and population distributions
(:mod:`repro.fleet.distributions`) all resolve "name plus parameters"
references through instances of the :class:`Registry` defined here.  The
class lives in its own dependency-free module so any subsystem can host a
registry without importing another subsystem's package.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterator, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T", bound=Callable[..., object])


class Registry:
    """A named mapping from component names to factory callables.

    Factories are invoked with the scenario's keyword parameters; a factory
    that rejects its parameters (``TypeError``) is reported as a
    :class:`~repro.errors.ConfigError` naming the component, so malformed
    scenario documents fail with a readable message instead of a traceback
    from deep inside a constructor.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., object]] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, factory: Callable[..., object] | None = None):
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering an existing name raises :class:`ConfigError`; use
        :meth:`unregister` first to replace a seeded component.
        """
        if not name or not isinstance(name, str):
            raise ConfigError(f"{self.kind} name must be a non-empty string")

        def _store(target: _T) -> _T:
            if name in self._factories:
                raise ConfigError(
                    f"{self.kind} {name!r} is already registered; "
                    "unregister it first to replace it"
                )
            self._factories[name] = target
            return target

        if factory is None:
            return _store
        return _store(factory)

    def unregister(self, name: str) -> None:
        """Remove a registered component (no-op safety net not provided)."""
        if name not in self._factories:
            raise ConfigError(f"no {self.kind} named {name!r} to unregister")
        del self._factories[name]

    # -- lookup -------------------------------------------------------------

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def factory(self, name: str) -> Callable[..., object]:
        """The factory registered under ``name``."""
        self.validate(name)
        return self._factories[name]

    def validate(self, name: str) -> None:
        """Raise a helpful :class:`ConfigError` when ``name`` is unknown."""
        if name not in self._factories:
            raise ConfigError(f"unknown {self.kind} {name!r}; available: {self.names()}")

    def create(self, name: str, **params: object) -> object:
        """Instantiate the component ``name`` with keyword ``params``.

        Parameters are validated against the factory signature *before* the
        call, so a malformed scenario document becomes a one-line
        :class:`ConfigError` while a genuine bug inside a factory still
        surfaces as its own traceback.
        """
        factory = self.factory(name)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # pragma: no cover - C callables
            signature = None
        if signature is not None:
            try:
                signature.bind(**params)
            except TypeError as exc:
                raise ConfigError(
                    f"invalid parameters {sorted(params)} for {self.kind} "
                    f"{name!r}: {exc}"
                ) from exc
        return factory(**params)
