"""Pluggable array backends for the hot kernels — registry and selection.

The three hottest kernels (the evaluator's schedule-energy batch, the
storage trajectory scan, and the fleet's bin-union energy sweep riding the
first) execute through one narrow seam, :class:`~repro.backend.base.ArrayBackend`.
This package hosts the registry of implementations and the selection
logic:

* ``numpy`` — the default and authoritative reference (bit-identical to
  the pre-seam code by construction);
* ``numba`` — optional JIT-compiled kernel bodies; import-guarded, listed
  only when the package is installed;
* ``float32`` — a reduced-precision policy for throughput-bound fleet
  runs where only survival statistics are the product.

Selection precedence is **explicit argument > ``REPRO_ARRAY_BACKEND``
environment variable > ``"numpy"``** — :func:`resolve_backend` implements
it and every consumer (``EnergyEvaluator(backend=...)``,
``trajectory(backend=...)``, ``FleetRunner(array_backend=...)``, the CLI's
``--array-backend``) funnels through it.  Backend choice is an execution
policy: it must never enter spec digests, store keys or checkpoint run
keys (the row-identity contract), and it does not — specs carry no backend
field.

Instances are memoized per name: the numba backend's compilation state
survives across evaluators, and repeated resolution is a dict hit.
"""

from __future__ import annotations

import os

from repro.backend.base import ArrayBackend, NumpyBackend
from repro.backend.float32_backend import Float32Backend
from repro.backend.numba_backend import NumbaBackend, numba_available, numba_version
from repro.errors import ConfigError
from repro.registry import Registry

__all__ = [
    "ARRAY_BACKENDS",
    "ARRAY_BACKEND_ENV",
    "ArrayBackend",
    "Float32Backend",
    "NumbaBackend",
    "NumpyBackend",
    "active_backend_info",
    "available_backends",
    "register_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is given.
ARRAY_BACKEND_ENV = "REPRO_ARRAY_BACKEND"

#: Default backend name — the reference implementation.
DEFAULT_BACKEND = "numpy"

#: The user-extensible named-factory registry of array backends.
ARRAY_BACKENDS = Registry("array backend")
ARRAY_BACKENDS.register("numpy", NumpyBackend)
ARRAY_BACKENDS.register("float32", Float32Backend)
ARRAY_BACKENDS.register("numba", NumbaBackend)


def register_backend(name: str, factory=None):
    """Register a third-party backend factory; usable as a decorator."""
    return ARRAY_BACKENDS.register(name, factory)


#: Memoized instances (JIT compilation state must outlive one evaluator).
_INSTANCES: dict[str, ArrayBackend] = {}


def resolve_backend(backend: "ArrayBackend | str | None" = None) -> ArrayBackend:
    """Resolve a backend selection to a (memoized) :class:`ArrayBackend`.

    Args:
        backend: an :class:`ArrayBackend` instance (returned as-is), a
            registered name, or ``None`` — which consults the
            ``REPRO_ARRAY_BACKEND`` environment variable and falls back to
            the ``numpy`` default.

    Raises:
        ConfigError: unknown name, a backend whose dependency is missing
            (the numba backend without the numba package), or a non-string
            selection; environment-sourced failures name the variable.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    from_env = False
    if backend is None:
        backend = os.environ.get(ARRAY_BACKEND_ENV) or DEFAULT_BACKEND
        from_env = backend != DEFAULT_BACKEND
    if not isinstance(backend, str):
        raise ConfigError(
            f"array backend must be a name or an ArrayBackend, got {type(backend).__name__}"
        )
    cached = _INSTANCES.get(backend)
    if cached is not None:
        return cached
    try:
        instance = ARRAY_BACKENDS.create(backend)
    except ConfigError as error:
        if from_env:
            raise ConfigError(f"{ARRAY_BACKEND_ENV}: {error}") from error
        raise
    if not isinstance(instance, ArrayBackend):
        raise ConfigError(
            f"array backend {backend!r} factory returned "
            f"{type(instance).__name__}, not an ArrayBackend"
        )
    _INSTANCES[backend] = instance
    return instance


def available_backends() -> list[str]:
    """Registered backend names whose dependencies are actually present.

    The numba backend is *silently* absent here when the package is not
    installed — only an explicit request for it raises.
    """
    names = []
    for name in ARRAY_BACKENDS.names():
        if name == "numba" and not numba_available():
            continue
        names.append(name)
    return names


def active_backend_info(backend: "ArrayBackend | str | None" = None) -> dict[str, object]:
    """Machine-readable identity of the active backend.

    Used by ``GET /healthz`` and the benchmark/run-package environment
    stamp.  Includes the installed numba version whenever the package is
    present (metadata lookup — numba itself is not imported), so a numpy
    run on a numba-capable host is distinguishable from one where the
    numba leg was impossible.
    """
    resolved = resolve_backend(backend)
    info: dict[str, object] = {"name": resolved.name, "precision": resolved.precision}
    version = numba_version()
    if version is not None:
        info["numba"] = version
    return info
