"""The ``float32`` precision policy: trade per-joule precision for bandwidth.

Throughput-bound fleet runs spend their time moving the dense ``(rows,
points)`` power matrices and the per-step ledger arrays through memory;
where only survival/brown-out statistics are the product, halving the
element width halves that traffic.  This backend keeps the authoritative
float64 expressions for the *entry* math (the compiled-table evaluation)
and demotes the dense products and the ledger recurrence to float32.

It is a **reduced-precision** backend: results are close to float64
(pinned-tolerance tested) but not bit-identical, so per-joule study kinds
(``report``, ``balance``) refuse it, and replicas sharing a
content-addressed result store must not mix it with float64 runs.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["Float32Backend"]


class Float32Backend(ArrayBackend):
    """Float32 dense matrices and ledger scan over the float64 entry math."""

    name = "float32"
    precision = "float32"
    dtype = np.float32

    def breakdown_components(
        self, table, rows, supply_v, temperature_c, process_dynamic, process_leakage
    ) -> tuple[np.ndarray, np.ndarray]:
        dynamic, static = table.breakdown_components(
            rows,
            supply_v,
            temperature_c,
            process_dynamic=process_dynamic,
            process_leakage=process_leakage,
        )
        return dynamic.astype(np.float32), static.astype(np.float32)

    def trajectory_scan(
        self, stored, required, load, leak_amounts, charge_j, active, capacity_j, restart_j
    ) -> tuple:
        from repro.scavenger.storage import reference_scan

        # Cast the per-step arrays and the running charge once at the seam;
        # NEP-50 promotion keeps every step of the recurrence in float32
        # (python-float parameters like the capacity are weakly typed).
        return reference_scan(
            np.asarray(stored, dtype=np.float32),
            np.asarray(required, dtype=np.float32),
            np.asarray(load, dtype=np.float32),
            np.asarray(leak_amounts, dtype=np.float32),
            np.float32(charge_j),
            active,
            capacity_j,
            restart_j,
            dtype=np.float32,
        )
