"""The optional ``numba`` backend: JIT-compiled bodies for both hot kernels.

Import-guarded end to end: without the ``numba`` package this module still
imports (availability is probed through ``importlib.util.find_spec``, the
package itself is only imported when the backend is actually constructed),
the backend is absent from :func:`repro.backend.available_backends`, and
explicitly requesting it raises a one-line
:class:`~repro.errors.ConfigError` with the install hint.

The JIT kernels mirror the numpy expressions *operation for operation* —
same voltage selection, same factor order, same ``min``/``max`` clipping —
so the storage scan is bitwise identical to the reference (pure IEEE
add/sub/min) and the power breakdown matches within libm round-off; the
1e-9 scalar<->batch equivalence suites are the promotion gate, run under
``REPRO_ARRAY_BACKEND=numba`` in CI.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backend.base import ArrayBackend
from repro.errors import ConfigError

__all__ = ["NumbaBackend", "numba_available", "numba_version"]

#: Compiled dispatchers, built once per process on first use (compilation
#: costs seconds; instances resolved through the registry are memoized, so
#: the cost is paid at most once per kernel shape).
_KERNELS: dict[str, object] = {}


def numba_available() -> bool:
    """True when the numba package is importable (without importing it)."""
    return importlib.util.find_spec("numba") is not None


def numba_version() -> str | None:
    """The installed numba version, or None — via metadata, not import."""
    if not numba_available():
        return None
    try:
        from importlib.metadata import version

        return version("numba")
    except Exception:  # pragma: no cover - metadata-less installs
        return None


def _kernels():
    """Build (or fetch) the JIT-compiled kernel pair."""
    kernels = _KERNELS.get("pair")
    if kernels is not None:
        return kernels
    import numba

    @numba.njit(cache=False)
    def breakdown(
        rows,
        supply,
        temperature,
        process_dynamic,
        process_leakage,
        dynamic_reference_w,
        dynamic_reference_v,
        frequency_scale,
        leakage_reference_w,
        leakage_reference_t,
        leakage_reference_v,
        doubling_celsius,
        dibl_coefficient,
        rail_voltage_v,
        tracks_core_supply,
    ):
        row_count = rows.shape[0]
        point_count = supply.shape[0]
        dynamic = np.empty((row_count, point_count))
        static = np.empty((row_count, point_count))
        for i in range(row_count):
            row = rows[i]
            for p in range(point_count):
                voltage = supply[p] if tracks_core_supply[row] else rail_voltage_v[row]
                dynamic[i, p] = (
                    dynamic_reference_w[row]
                    * (voltage / dynamic_reference_v[row]) ** 2
                    * frequency_scale[row]
                    * process_dynamic[p]
                )
                temperature_factor = 2.0 ** (
                    (temperature[p] - leakage_reference_t[row]) / doubling_celsius[row]
                )
                reference_v = leakage_reference_v[row]
                voltage_factor = max(
                    0.0,
                    1.0 + dibl_coefficient[row] * (voltage - reference_v) / reference_v,
                )
                static[i, p] = (
                    leakage_reference_w[row]
                    * temperature_factor
                    * voltage_factor
                    * process_leakage[p]
                )
        return dynamic, static

    @numba.njit(cache=False)
    def scan(stored, required, load, leak_amounts, charge, active, capacity, restart):
        count = stored.shape[0]
        charge_out = np.empty(count)
        active_out = np.empty(count, dtype=np.bool_)
        banked_out = np.empty(count)
        drawn_out = np.zeros(count)
        attempted = np.zeros(count, dtype=np.bool_)
        withdrew = np.zeros(count, dtype=np.bool_)
        brownouts = 0
        for i in range(count):
            if not active and charge >= restart:
                active = True
            banked = min(stored[i], capacity - charge)
            charge = charge + banked
            banked_out[i] = banked
            if active:
                attempted[i] = True
                if required[i] > charge:
                    charge = 0.0
                    active = False
                    brownouts += 1
                else:
                    charge = charge - required[i]
                    withdrew[i] = True
                    drawn_out[i] = load[i]
            loss = min(charge, leak_amounts[i])
            charge = charge - loss
            charge_out[i] = charge
            active_out[i] = active
        return (
            charge_out,
            active_out,
            banked_out,
            drawn_out,
            attempted,
            withdrew,
            brownouts,
            charge,
        )

    kernels = (breakdown, scan)
    _KERNELS["pair"] = kernels
    return kernels


def _as_points(values, count: int) -> np.ndarray:
    """Normalize a scalar-or-array condition column to a ``(P,)`` array."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 0:
        return np.full(count, float(array))
    return np.ascontiguousarray(array)


class NumbaBackend(ArrayBackend):
    """JIT-compiled kernel bodies behind the same seam semantics."""

    name = "numba"
    precision = "float64"
    dtype = np.float64

    def __init__(self) -> None:
        if not numba_available():
            raise ConfigError(
                "array backend 'numba' requires the numba package "
                "(pip install numba); available backends exclude it until then"
            )

    def breakdown_components(
        self, table, rows, supply_v, temperature_c, process_dynamic, process_leakage
    ) -> tuple[np.ndarray, np.ndarray]:
        breakdown, _scan = _kernels()
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.intp))
        # The point axis is defined by the condition columns, not the rows.
        supply = np.atleast_1d(np.ascontiguousarray(np.asarray(supply_v, dtype=np.float64)))
        count = supply.shape[0]
        return breakdown(
            rows,
            supply,
            _as_points(temperature_c, count),
            _as_points(process_dynamic, count),
            _as_points(process_leakage, count),
            table.dynamic_reference_w,
            table.dynamic_reference_v,
            table.frequency_scale,
            table.leakage_reference_w,
            table.leakage_reference_t,
            table.leakage_reference_v,
            table.doubling_celsius,
            table.dibl_coefficient,
            table.rail_voltage_v,
            table.tracks_core_supply,
        )

    def trajectory_scan(
        self, stored, required, load, leak_amounts, charge_j, active, capacity_j, restart_j
    ) -> tuple:
        _breakdown, scan = _kernels()
        (
            charge_out,
            active_out,
            banked_out,
            drawn_out,
            attempted,
            withdrew,
            brownouts,
            final_charge,
        ) = scan(
            np.ascontiguousarray(stored),
            np.ascontiguousarray(required),
            np.ascontiguousarray(load),
            np.ascontiguousarray(leak_amounts),
            float(charge_j),
            bool(active),
            float(capacity_j),
            float(restart_j),
        )
        return (
            charge_out,
            active_out,
            banked_out,
            drawn_out,
            attempted,
            withdrew,
            int(brownouts),
            float(final_charge),
        )
