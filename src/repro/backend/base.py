"""The array-backend seam: one narrow interface under the three hot kernels.

The repo's batch engine funnels essentially all of its floating-point work
through two dense primitives:

* the **power breakdown** — the ``(rows, points)`` dynamic/static matrices
  of :meth:`~repro.power.compiled.CompiledPowerTable.breakdown_components`
  that ``EnergyEvaluator._schedule_energy_batch`` (and through it the
  emulator's ``evaluate_energy_bins`` and the fleet's cross-vehicle bin
  sweep) accumulates into per-revolution energies;
* the **storage ledger scan** — the sequential deposit/withdraw/leak
  recurrence of :func:`repro.scavenger.storage.trajectory` that turns
  per-step harvest/load arrays into a state-of-charge trajectory.

An :class:`ArrayBackend` implements exactly those two primitives.  The
``numpy`` backend below is the default and the *authoritative reference*:
it delegates verbatim to the existing compiled-table expressions and the
storage module's reference scan, so selecting it is bit-identical to not
having a seam at all.  Alternative backends (``numba`` JIT, the ``float32``
precision policy) are promoted through the existing scalar<->batch
equivalence suites — see :mod:`repro.backend` for selection and registry.

Backends are an **execution policy, never an input**: a backend choice must
not enter scenario/fleet digests, store keys or checkpoint run keys (the
row-identity contract), which is why :class:`ScenarioSpec` and
:class:`FleetSpec` carry no backend field and selection happens at the
evaluator/runner/CLI layer only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayBackend", "NumpyBackend"]


class ArrayBackend:
    """Interface of one array-execution backend for the hot kernels.

    Attributes:
        name: registry name of the backend (``"numpy"``, ``"numba"``, ...).
        precision: ``"float64"`` or ``"float32"`` — consumers with a
            bit-identity contract (per-joule report/balance kinds) refuse
            reduced-precision backends.
        dtype: the numpy dtype of accumulation arrays the kernels allocate.
    """

    name = "abstract"
    precision = "float64"
    dtype = np.float64

    def breakdown_components(
        self,
        table,
        rows: np.ndarray,
        supply_v,
        temperature_c,
        process_dynamic,
        process_leakage,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dynamic and static power of ``rows`` x points, each ``(R, P)``.

        Semantics are defined by
        :meth:`~repro.power.compiled.CompiledPowerTable.breakdown_components`
        (activity factors are applied later, per phase, by the evaluator's
        accumulation loop — they never reach this seam).
        """
        raise NotImplementedError

    def trajectory_scan(
        self,
        stored: np.ndarray,
        required: np.ndarray,
        load: np.ndarray,
        leak_amounts: np.ndarray,
        charge_j: float,
        active: bool,
        capacity_j: float,
        restart_j: float,
    ) -> tuple:
        """The storage ledger recurrence over N steps.

        Inputs are the *hoisted* per-step quantities (post-efficiency
        deposits, pre-efficiency withdrawals, leak energies) prepared by
        :func:`repro.scavenger.storage.trajectory`; semantics are defined by
        the reference scan in that module (restart hysteresis, brown-out
        accounting, capacity/zero clipping via the shared step primitives).

        Returns ``(charge_out, active_out, banked_out, drawn_out,
        attempted, withdrew, brownout_events, final_charge_j)``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary (benchmark tables, error messages)."""
        return f"{self.name} ({self.precision})"


class NumpyBackend(ArrayBackend):
    """The default backend: the existing numpy expressions, verbatim.

    Both primitives delegate to the code that defines their semantics — the
    compiled table's vectorized expressions and the storage module's
    reference scan — so this backend is bit-identical to the pre-seam
    behavior by construction, not by test.  It is the floor every other
    backend is benchmarked and equivalence-gated against.
    """

    name = "numpy"
    precision = "float64"
    dtype = np.float64

    def breakdown_components(
        self, table, rows, supply_v, temperature_c, process_dynamic, process_leakage
    ) -> tuple[np.ndarray, np.ndarray]:
        return table.breakdown_components(
            rows,
            supply_v,
            temperature_c,
            process_dynamic=process_dynamic,
            process_leakage=process_leakage,
        )

    def trajectory_scan(
        self, stored, required, load, leak_amounts, charge_j, active, capacity_j, restart_j
    ) -> tuple:
        # Imported lazily: the storage module resolves backends at call time,
        # so a top-level import here would be circular.
        from repro.scavenger.storage import reference_scan

        return reference_scan(
            stored, required, load, leak_amounts, charge_j, active, capacity_j, restart_j
        )
