"""Plain-text table rendering for reports and example output."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import ExportError


def _format_cell(value: object, float_digits: int) -> str:
    """Render one cell: floats get a fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Iterable[str] | None = None,
    float_digits: int = 2,
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Args:
        rows: the rows; every row is a mapping from column name to value.
        columns: column order; defaults to the keys of the first row.
        float_digits: precision for float cells.
        title: optional title line printed above the table.

    Raises:
        ExportError: if there are no rows or a row is missing a column.
    """
    if not rows:
        raise ExportError("cannot render a table with no rows")
    column_names = list(columns) if columns is not None else list(rows[0].keys())
    if not column_names:
        raise ExportError("cannot render a table with no columns")

    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for name in column_names:
            if name not in row:
                raise ExportError(f"row {row!r} is missing column {name!r}")
            rendered.append(_format_cell(row[name], float_digits))
        rendered_rows.append(rendered)

    widths = [
        max(len(name), *(len(r[index]) for r in rendered_rows))
        for index, name in enumerate(column_names)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(name.ljust(width) for name, width in zip(column_names, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines.append(header)
    lines.append(separator)
    for rendered in rendered_rows:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(rendered, widths))
        )
    return "\n".join(lines)
