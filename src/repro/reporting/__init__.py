"""Reporting helpers: text tables, ASCII curve plots, CSV/JSON exports.

The original tools reported through a spreadsheet's charts; in a library the
equivalents are plain-text tables and quick terminal plots (used by the
examples and the benchmark harness) plus machine-readable exports.
"""

from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.export import rows_to_csv, rows_to_json
from repro.reporting.tables import render_table

__all__ = ["render_table", "ascii_plot", "rows_to_csv", "rows_to_json"]
