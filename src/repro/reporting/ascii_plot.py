"""Terminal line plots for quick inspection of curves.

Used by the examples to show the Fig. 2 energy-balance curves and the Fig. 3
instant-power trace without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ExportError

_MARKERS = "*o+x#@"


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more series against a shared x axis as an ASCII chart.

    Args:
        x: shared x values (must be non-empty and monotonically increasing).
        series: mapping of series name to y values (same length as ``x``).
        width: chart width in characters (excluding the axis).
        height: chart height in characters.
        x_label: label printed under the x axis.
        y_label: label printed above the chart.

    Returns:
        The chart as a multi-line string with a legend.
    """
    if len(x) == 0:
        raise ExportError("cannot plot an empty x axis")
    if not series:
        raise ExportError("cannot plot zero series")
    if width < 10 or height < 4:
        raise ExportError("plot area is too small")
    x_values = np.asarray(x, dtype=float)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ExportError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )

    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_values.min()), float(x_values.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        y_values = np.asarray(values, dtype=float)
        for x_value, y_value in zip(x_values, y_values):
            column = int(round((x_value - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y_value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines: list[str] = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{y_max:10.3g} |"
        elif row_index == height - 1:
            prefix = f"{y_min:10.3g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_min:<10.3g}" + " " * max(0, width - 20) + f"{x_max:>10.3g}"
    )
    if x_label:
        lines.append(" " * 11 + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
