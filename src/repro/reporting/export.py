"""CSV / JSON export of tabular results.

Non-finite floats (``nan``, ``inf``) have no representation in strict JSON
and are ambiguous in CSV, so both writers normalize them:

* :func:`rows_to_json` serializes every non-finite float — including numpy
  scalars and values nested inside lists/tuples/dicts — as ``null``, and
  passes ``allow_nan=False`` to :func:`json.dumps` so an unnormalized value
  can never slip through as invalid JSON.
* :func:`rows_to_csv` writes an empty cell for non-finite floats (the CSV
  counterpart of ``null``), so downstream parsers see a missing value rather
  than a locale-dependent ``nan``/``inf`` string.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ExportError


def _validate_rows(rows: Sequence[Mapping[str, object]]) -> list[str]:
    """Check rows share a column set and return the column order."""
    if not rows:
        raise ExportError("cannot export zero rows")
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ExportError(
                "all rows must share the same columns; "
                f"expected {columns}, got {list(row.keys())}"
            )
    return columns


def _is_non_finite_float(value: object) -> bool:
    """True for float-like scalars (including numpy) that are nan or +/-inf."""
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, np.floating):
        return not math.isfinite(float(value))
    return False


def _json_safe(value: object) -> object:
    """Normalize one cell for strict JSON.

    Non-finite floats become ``None`` (documented as ``null`` in the file),
    numpy scalars become their Python equivalents, and containers are
    normalized recursively.
    """
    if _is_non_finite_float(value):
        return None
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return value


def json_ready(value: object) -> object:
    """Public strict-JSON normalization of any nested value.

    The benchmark harness (and any consumer wrapping rows with metadata —
    environment stamps, timing context) uses this to reuse the exact
    normalization rules of :func:`rows_to_json` when building composite
    documents.
    """
    return _json_safe(value)


def _csv_safe(value: object) -> object:
    """Normalize one cell for CSV: non-finite floats become an empty cell."""
    if _is_non_finite_float(value):
        return ""
    return value


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write dict rows to a CSV file and return the path.

    Non-finite floats are written as empty cells (see the module docstring).
    """
    columns = _validate_rows(rows)
    target = Path(path)
    try:
        with target.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in rows:
                writer.writerow({key: _csv_safe(value) for key, value in row.items()})
    except OSError as exc:
        raise ExportError(f"cannot write CSV to {target}") from exc
    return target


def rows_to_json(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write dict rows to a JSON file (list of objects) and return the path.

    Non-finite floats serialize as ``null`` (see the module docstring); the
    output is always strict JSON.
    """
    _validate_rows(rows)
    target = Path(path)
    payload = [{key: _json_safe(value) for key, value in row.items()} for row in rows]
    try:
        text = json.dumps(payload, indent=2, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ExportError(f"rows are not JSON-serializable: {exc}") from exc
    try:
        target.write_text(text, encoding="utf-8")
    except OSError as exc:
        raise ExportError(f"cannot write JSON to {target}") from exc
    return target
