"""CSV / JSON export of tabular results."""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ExportError


def _validate_rows(rows: Sequence[Mapping[str, object]]) -> list[str]:
    """Check rows share a column set and return the column order."""
    if not rows:
        raise ExportError("cannot export zero rows")
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ExportError(
                "all rows must share the same columns; "
                f"expected {columns}, got {list(row.keys())}"
            )
    return columns


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write dict rows to a CSV file and return the path."""
    columns = _validate_rows(rows)
    target = Path(path)
    try:
        with target.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in rows:
                writer.writerow(dict(row))
    except OSError as exc:
        raise ExportError(f"cannot write CSV to {target}") from exc
    return target


def _json_safe(value: object) -> object:
    """Replace non-finite floats (not representable in strict JSON) with None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def rows_to_json(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write dict rows to a JSON file (list of objects) and return the path."""
    _validate_rows(rows)
    target = Path(path)
    payload = [{key: _json_safe(value) for key, value in row.items()} for row in rows]
    try:
        target.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    except OSError as exc:
        raise ExportError(f"cannot write JSON to {target}") from exc
    return target
