"""Temperature conditions and a first-order in-tyre thermal model.

The paper notes that *"static power is mainly linked to the working
temperature of the circuit"*.  The actual tyre temperature during a drive is
not available (it was measured on Pirelli's prototypes), so we substitute a
simple physically motivated model: the in-tyre air heats above ambient with a
speed-dependent steady-state rise and a first-order time constant.  That is
sufficient to exercise the temperature → leakage → energy-balance code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Automotive-grade ambient operating range (AEC-Q100 grade 1) in Celsius.
MIN_AMBIENT_C = -40.0
MAX_AMBIENT_C = 125.0


class TemperatureProfile:
    """Base class for time-dependent temperature profiles.

    A profile maps an absolute simulation time (seconds) to a junction
    temperature in degrees Celsius.  Subclasses override
    :meth:`temperature_at`.
    """

    def temperature_at(self, time_s: float) -> float:
        """Return the temperature in Celsius at ``time_s`` seconds."""
        raise NotImplementedError

    def average(self, start_s: float, end_s: float, samples: int = 64) -> float:
        """Average temperature over ``[start_s, end_s]`` using uniform sampling."""
        if end_s < start_s:
            raise ConfigurationError(
                f"interval end {end_s} precedes start {start_s}"
            )
        if end_s == start_s or samples <= 1:
            return self.temperature_at(start_s)
        step = (end_s - start_s) / (samples - 1)
        total = 0.0
        for index in range(samples):
            total += self.temperature_at(start_s + index * step)
        return total / samples


@dataclass(frozen=True)
class ConstantTemperature(TemperatureProfile):
    """A constant temperature, the default working condition of the spreadsheet."""

    celsius: float = 25.0

    def __post_init__(self) -> None:
        if not (MIN_AMBIENT_C - 50.0 <= self.celsius <= MAX_AMBIENT_C + 75.0):
            raise ConfigurationError(
                f"temperature {self.celsius} degC is outside any plausible "
                f"automotive range"
            )

    def temperature_at(self, time_s: float) -> float:
        return self.celsius


@dataclass(frozen=True)
class LinearRamp(TemperatureProfile):
    """A linear temperature ramp between two points in time.

    Useful for worst-case sweeps such as a cold start that warms up to the
    full in-tyre temperature.
    """

    start_celsius: float
    end_celsius: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ConfigurationError("ramp duration must be positive")

    def temperature_at(self, time_s: float) -> float:
        if time_s <= 0.0:
            return self.start_celsius
        if time_s >= self.duration_s:
            return self.end_celsius
        fraction = time_s / self.duration_s
        return self.start_celsius + fraction * (self.end_celsius - self.start_celsius)


@dataclass
class TyreThermalModel(TemperatureProfile):
    """First-order thermal model of the in-tyre environment.

    The steady-state temperature rise above ambient is proportional to the
    square of the vehicle speed (rolling-resistance losses grow roughly with
    speed), saturating at ``max_rise_c``.  The instantaneous temperature
    relaxes towards the steady state with time constant ``time_constant_s``.

    The model is driven by calling :meth:`advance` with ``(dt, speed)``
    samples; :meth:`temperature_at` then reports the temperature reached at
    the end of the last advanced step, which is how the emulator uses it.

    Attributes:
        ambient_celsius: ambient (outside-tyre) temperature.
        rise_coefficient: steady-state rise in Celsius per (m/s)^2.
        max_rise_c: saturation of the self-heating rise.
        time_constant_s: first-order thermal time constant of the tyre cavity.
    """

    ambient_celsius: float = 25.0
    rise_coefficient: float = 0.045
    max_rise_c: float = 55.0
    time_constant_s: float = 600.0
    _current_celsius: float = field(init=False, default=0.0)
    _current_time_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.time_constant_s <= 0.0:
            raise ConfigurationError("thermal time constant must be positive")
        if self.rise_coefficient < 0.0:
            raise ConfigurationError("rise coefficient must be non-negative")
        if self.max_rise_c < 0.0:
            raise ConfigurationError("maximum rise must be non-negative")
        self._current_celsius = self.ambient_celsius
        self._current_time_s = 0.0

    @property
    def current_celsius(self) -> float:
        """Temperature reached after the steps advanced so far."""
        return self._current_celsius

    def steady_state(self, speed_ms: float) -> float:
        """Steady-state in-tyre temperature at a constant speed (m/s)."""
        rise = min(self.rise_coefficient * speed_ms * speed_ms, self.max_rise_c)
        return self.ambient_celsius + rise

    def advance(self, dt_s: float, speed_ms: float) -> float:
        """Advance the thermal state by ``dt_s`` seconds at ``speed_ms``.

        Returns the temperature at the end of the step.  Uses the exact
        solution of the first-order relaxation over the step, so large steps
        remain stable.
        """
        if dt_s < 0.0:
            raise ConfigurationError("time step must be non-negative")
        target = self.steady_state(speed_ms)
        alpha = 1.0 - math.exp(-dt_s / self.time_constant_s)
        self._current_celsius += alpha * (target - self._current_celsius)
        self._current_time_s += dt_s
        return self._current_celsius

    def reset(self) -> None:
        """Return the model to the ambient temperature at time zero."""
        self._current_celsius = self.ambient_celsius
        self._current_time_s = 0.0

    def temperature_at(self, time_s: float) -> float:
        """Report the last advanced temperature (profile-protocol adapter).

        The thermal model is stateful and driven by the emulator; callers
        that only need a profile value receive the most recent state.
        """
        return self._current_celsius


def standard_corners_celsius() -> tuple[float, float, float]:
    """Return the (cold, nominal, hot) temperature corners used by the spreadsheet."""
    return (MIN_AMBIENT_C, 25.0, MAX_AMBIENT_C)
