"""Process-variation models: corners and Monte-Carlo sampling.

The paper lists *process variation* among the parameters the analysis tools
must take into account.  We model it with the classic corner abstraction
(slow/typical/fast devices) plus a lognormal Monte-Carlo sampler for leakage,
which is the quantity most sensitive to process spread.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class ProcessCorner(enum.Enum):
    """Named process corners.

    The value of each member is ``(dynamic_factor, leakage_factor)`` — the
    multiplicative factors applied to the typical dynamic and static power.
    Fast silicon switches faster (slightly higher dynamic power at the same
    frequency because of higher overshoot currents) and leaks much more;
    slow silicon leaks less.
    """

    SLOW = (0.95, 0.45)
    TYPICAL = (1.0, 1.0)
    FAST = (1.05, 2.6)

    @property
    def dynamic_factor(self) -> float:
        """Multiplier applied to dynamic power at this corner."""
        return self.value[0]

    @property
    def leakage_factor(self) -> float:
        """Multiplier applied to leakage power at this corner."""
        return self.value[1]

    @classmethod
    def from_name(cls, name: str) -> "ProcessCorner":
        """Look a corner up by case-insensitive name (``"slow"``, ``"tt"``...)."""
        aliases = {
            "slow": cls.SLOW,
            "ss": cls.SLOW,
            "typical": cls.TYPICAL,
            "tt": cls.TYPICAL,
            "nom": cls.TYPICAL,
            "fast": cls.FAST,
            "ff": cls.FAST,
        }
        key = name.strip().lower()
        if key not in aliases:
            raise ConfigurationError(f"unknown process corner {name!r}")
        return aliases[key]


@dataclass(frozen=True)
class ProcessVariation:
    """A process condition: a corner plus optional extra spread factors.

    ``extra_dynamic`` and ``extra_leakage`` let a Monte-Carlo sampler layer
    per-die variation on top of the corner.
    """

    corner: ProcessCorner = ProcessCorner.TYPICAL
    extra_dynamic: float = 1.0
    extra_leakage: float = 1.0

    def __post_init__(self) -> None:
        if self.extra_dynamic <= 0.0 or self.extra_leakage <= 0.0:
            raise ConfigurationError("process spread factors must be positive")

    @property
    def dynamic_factor(self) -> float:
        """Total multiplier on dynamic power."""
        return self.corner.dynamic_factor * self.extra_dynamic

    @property
    def leakage_factor(self) -> float:
        """Total multiplier on leakage power."""
        return self.corner.leakage_factor * self.extra_leakage


class MonteCarloSampler:
    """Sample per-die process variations around the typical corner.

    Dynamic power variation is modelled as a narrow normal distribution;
    leakage variation as a lognormal distribution (leakage of real dice spans
    roughly an order of magnitude).  Sampling is reproducible through the
    ``seed`` argument.
    """

    def __init__(
        self,
        dynamic_sigma: float = 0.03,
        leakage_sigma_log: float = 0.35,
        seed: int = 0,
    ) -> None:
        if dynamic_sigma < 0.0 or leakage_sigma_log < 0.0:
            raise ConfigurationError("sigma parameters must be non-negative")
        self.dynamic_sigma = dynamic_sigma
        self.leakage_sigma_log = leakage_sigma_log
        self._rng = np.random.default_rng(seed)

    def sample(self) -> ProcessVariation:
        """Draw one die: a :class:`ProcessVariation` around the typical corner."""
        dynamic = max(0.5, 1.0 + self._rng.normal(0.0, self.dynamic_sigma))
        leakage = float(
            math.exp(self._rng.normal(0.0, self.leakage_sigma_log))
        )
        return ProcessVariation(
            corner=ProcessCorner.TYPICAL,
            extra_dynamic=float(dynamic),
            extra_leakage=leakage,
        )

    def sample_many(self, count: int) -> list[ProcessVariation]:
        """Draw ``count`` independent dice."""
        if count < 0:
            raise ConfigurationError("sample count must be non-negative")
        return [self.sample() for _ in range(count)]
