"""Working-condition models: temperature, supply voltage, process variation.

The paper distinguishes *operating conditions* (how each functional block is
configured, how many samples are acquired) from *working conditions*
(temperature, supply voltage) and *process variation*.  This package models
the working conditions and process variation; operating conditions live with
the functional blocks themselves (:mod:`repro.blocks`).
"""

from repro.conditions.batch import BatchConditions
from repro.conditions.operating_point import OperatingPoint
from repro.conditions.process import (
    MonteCarloSampler,
    ProcessCorner,
    ProcessVariation,
)
from repro.conditions.supply import SupplyCondition, SupplyRail
from repro.conditions.temperature import (
    ConstantTemperature,
    TemperatureProfile,
    TyreThermalModel,
)

__all__ = [
    "BatchConditions",
    "OperatingPoint",
    "ProcessCorner",
    "ProcessVariation",
    "MonteCarloSampler",
    "SupplyCondition",
    "SupplyRail",
    "TemperatureProfile",
    "ConstantTemperature",
    "TyreThermalModel",
]
