"""Columnar batches of working conditions for the vectorized evaluation path.

A :class:`BatchConditions` is the array counterpart of a sequence of
:class:`~repro.conditions.operating_point.OperatingPoint` rows: one float64
array per condition axis (speed, temperature, core supply voltage, process
factors).  The compiled power table and the batch evaluator APIs consume
these arrays directly, so sweep workloads never allocate per-point
``OperatingPoint`` objects on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.conditions.operating_point import TEMPERATURE_RANGE_C, OperatingPoint
from repro.errors import ConfigurationError


def _column(values, count: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-point sequence to an ``(N,)`` float64 array."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 0:
        array = np.full(count, float(array))
    if array.ndim != 1 or array.shape[0] != count:
        raise ConfigurationError(
            f"{name} must be a scalar or a 1-D array of length {count}"
        )
    return array


@dataclass(frozen=True, eq=False)
class BatchConditions:
    """N working conditions stored column-wise.

    Attributes:
        speed_kmh: cruising speed per point.
        temperature_c: junction temperature per point.
        supply_v: core supply voltage per point.
        dynamic_factor: process multiplier on dynamic power per point.
        leakage_factor: process multiplier on leakage power per point.
        activity: per-point workload activity factor.  It multiplies the
            activity factor of every block a phase overrides out of its
            resting mode (the paper's workload-intensity knob), so
            Monte-Carlo workload sweeps can vary the computational load per
            sample; 1.0 (the default) reproduces the scalar
            :class:`OperatingPoint` semantics exactly.
    """

    speed_kmh: np.ndarray
    temperature_c: np.ndarray
    supply_v: np.ndarray
    dynamic_factor: np.ndarray
    leakage_factor: np.ndarray
    activity: np.ndarray = None  # type: ignore[assignment]  # filled in __post_init__

    def __post_init__(self) -> None:
        count = len(self.speed_kmh)
        if self.activity is None:
            object.__setattr__(self, "activity", np.ones(count))
        for name in (
            "temperature_c",
            "supply_v",
            "dynamic_factor",
            "leakage_factor",
            "activity",
        ):
            if len(getattr(self, name)) != count:
                raise ConfigurationError("batch condition columns must be equal length")
        if np.any(self.speed_kmh < 0.0):
            raise ConfigurationError("speed must be non-negative")
        low, high = TEMPERATURE_RANGE_C
        # Written as not-all-inside rather than any-outside so NaN is rejected
        # too, exactly like the scalar OperatingPoint range check.
        if not np.all((self.temperature_c >= low) & (self.temperature_c <= high)):
            raise ConfigurationError(
                "a batch temperature is outside the modelled range "
                f"[{low}, {high}] degC"
            )
        if np.any(self.supply_v <= 0.0):
            raise ConfigurationError("supply voltage must be positive")
        # Mirror ProcessVariation: total process factors are always strictly
        # positive on the scalar path, so the batch path rejects the same
        # inputs instead of silently computing zero/negative power.
        if np.any(self.dynamic_factor <= 0.0) or np.any(self.leakage_factor <= 0.0):
            raise ConfigurationError("process factors must be positive")
        # Written as not-all-valid so NaN activities are rejected too.
        if not np.all(self.activity >= 0.0):
            raise ConfigurationError("activity factors must be non-negative")

    def __len__(self) -> int:
        return len(self.speed_kmh)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_points(cls, points: Sequence[OperatingPoint]) -> "BatchConditions":
        """Extract the condition columns from a sequence of operating points."""
        return cls(
            speed_kmh=np.array([p.speed_kmh for p in points], dtype=np.float64),
            temperature_c=np.array([p.temperature_c for p in points], dtype=np.float64),
            supply_v=np.array([p.supply_voltage for p in points], dtype=np.float64),
            dynamic_factor=np.array(
                [p.process.dynamic_factor for p in points], dtype=np.float64
            ),
            leakage_factor=np.array(
                [p.process.leakage_factor for p in points], dtype=np.float64
            ),
        )

    @classmethod
    def from_arrays(
        cls,
        speed_kmh,
        temperature_c,
        base_point: OperatingPoint | None = None,
        supply_v=None,
        dynamic_factor=None,
        leakage_factor=None,
        activity=None,
    ) -> "BatchConditions":
        """Build a batch from speed/temperature arrays plus shared conditions.

        ``base_point`` supplies the (scalar) core supply and process
        conditions when per-point overrides are not given; this is the grid
        evaluator's constructor, and it never allocates per-point objects.
        ``activity`` optionally gives the per-point workload activity factor
        (scalar or length-N array, default 1.0 everywhere).
        """
        base = base_point or OperatingPoint()
        speeds = np.asarray(speed_kmh, dtype=np.float64)
        if speeds.ndim == 0:
            speeds = speeds.reshape(1)
        if speeds.ndim != 1:
            raise ConfigurationError("speed must be a scalar or a 1-D array")
        count = len(speeds)
        return cls(
            speed_kmh=speeds,
            temperature_c=_column(temperature_c, count, "temperature"),
            supply_v=_column(
                base.supply_voltage if supply_v is None else supply_v,
                count,
                "supply voltage",
            ),
            dynamic_factor=_column(
                base.process.dynamic_factor if dynamic_factor is None else dynamic_factor,
                count,
                "dynamic process factor",
            ),
            leakage_factor=_column(
                base.process.leakage_factor if leakage_factor is None else leakage_factor,
                count,
                "leakage process factor",
            ),
            activity=_column(
                1.0 if activity is None else activity, count, "activity factor"
            ),
        )

    def point_at(self, index: int) -> OperatingPoint:
        """Reconstruct row ``index`` as a scalar :class:`OperatingPoint`.

        Used by reference/fallback paths that need to hand one batch row to
        the scalar evaluator.  The process factors are re-expressed as extra
        spread around the typical corner (they must be positive).  The
        activity column has no scalar :class:`OperatingPoint` counterpart —
        scalar reference paths take it as an explicit ``activity_scale``
        argument instead (see ``EnergyEvaluator.schedule_report``) — so
        callers falling back through ``point_at`` must check it is 1.0.
        """
        from repro.conditions.process import ProcessVariation
        from repro.conditions.supply import SupplyCondition, SupplyRail

        rail = SupplyRail(
            name="vdd_core", nominal_v=float(self.supply_v[index]), tolerance=0.0
        )
        return OperatingPoint(
            temperature_c=float(self.temperature_c[index]),
            supply=SupplyCondition(rail=rail),
            process=ProcessVariation(
                extra_dynamic=float(self.dynamic_factor[index]),
                extra_leakage=float(self.leakage_factor[index]),
            ),
            speed_kmh=float(self.speed_kmh[index]),
        )

    @classmethod
    def grid(
        cls,
        speeds_kmh,
        temperatures_c,
        base_point: OperatingPoint | None = None,
    ) -> "BatchConditions":
        """Row-major speed x temperature grid (speed varies slowest)."""
        speeds = np.asarray(speeds_kmh, dtype=np.float64)
        temperatures = np.asarray(temperatures_c, dtype=np.float64)
        if speeds.ndim != 1 or temperatures.ndim != 1:
            raise ConfigurationError("grid axes must be 1-D arrays")
        speed_grid = np.repeat(speeds, len(temperatures))
        temperature_grid = np.tile(temperatures, len(speeds))
        return cls.from_arrays(speed_grid, temperature_grid, base_point=base_point)
