"""Supply-voltage working conditions.

The spreadsheet evaluates the node power across supply corners because both
dynamic power (quadratic in V) and leakage (roughly linear-to-exponential in
V, modelled linearly with a DIBL-like coefficient) depend on the rail
voltage.  Self-powered nodes regulate the scavenged energy onto one or more
rails; this module describes those rails and their corner values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SupplyRail:
    """A regulated supply rail of the Sensor Node.

    Attributes:
        name: rail identifier, e.g. ``"vdd_core"`` or ``"vdd_rf"``.
        nominal_v: nominal regulated voltage.
        tolerance: relative tolerance (0.05 means +/-5 %).
        regulator_efficiency: DC-DC / LDO efficiency used when referring block
            power back to the storage element.
    """

    name: str
    nominal_v: float
    tolerance: float = 0.05
    regulator_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.nominal_v <= 0.0:
            raise ConfigurationError(f"rail {self.name!r} voltage must be positive")
        if not 0.0 <= self.tolerance < 1.0:
            raise ConfigurationError(f"rail {self.name!r} tolerance must be in [0, 1)")
        if not 0.0 < self.regulator_efficiency <= 1.0:
            raise ConfigurationError(
                f"rail {self.name!r} regulator efficiency must be in (0, 1]"
            )

    @property
    def minimum_v(self) -> float:
        """Lowest in-tolerance rail voltage."""
        return self.nominal_v * (1.0 - self.tolerance)

    @property
    def maximum_v(self) -> float:
        """Highest in-tolerance rail voltage."""
        return self.nominal_v * (1.0 + self.tolerance)

    def scaled(self, factor: float) -> "SupplyRail":
        """Return a copy of the rail with the nominal voltage scaled by ``factor``.

        Used by the voltage-scaling optimization technique.
        """
        if factor <= 0.0:
            raise ConfigurationError("voltage scale factor must be positive")
        return SupplyRail(
            name=self.name,
            nominal_v=self.nominal_v * factor,
            tolerance=self.tolerance,
            regulator_efficiency=self.regulator_efficiency,
        )


@dataclass(frozen=True)
class SupplyCondition:
    """A supply working condition: the actual voltage applied to a block.

    ``corner`` is one of ``"min"``, ``"nom"``, ``"max"`` and selects which end
    of the rail tolerance band is used.
    """

    rail: SupplyRail
    corner: str = "nom"

    _VALID_CORNERS = ("min", "nom", "max")

    def __post_init__(self) -> None:
        if self.corner not in self._VALID_CORNERS:
            raise ConfigurationError(
                f"supply corner must be one of {self._VALID_CORNERS}, got {self.corner!r}"
            )

    @property
    def voltage(self) -> float:
        """The voltage selected by the corner."""
        if self.corner == "min":
            return self.rail.minimum_v
        if self.corner == "max":
            return self.rail.maximum_v
        return self.rail.nominal_v


#: Default core rail of the Sensor Node (deep-submicron logic).
CORE_RAIL = SupplyRail(name="vdd_core", nominal_v=1.2, tolerance=0.05)

#: Default analog / sensor front-end rail.
ANALOG_RAIL = SupplyRail(name="vdd_analog", nominal_v=1.8, tolerance=0.05)

#: Default RF transmitter rail.
RF_RAIL = SupplyRail(name="vdd_rf", nominal_v=1.8, tolerance=0.05)


def default_rails() -> dict[str, SupplyRail]:
    """Return the default rail set of the reference Sensor Node architecture."""
    return {rail.name: rail for rail in (CORE_RAIL, ANALOG_RAIL, RF_RAIL)}
