"""The :class:`OperatingPoint` — one row of working conditions in the spreadsheet.

An operating point bundles everything outside the node architecture that
influences its power: junction temperature, supply voltage, process
variation, and the cruising speed (which sets the wheel-round period and the
speed-dependent duty cycles).  Every query into the power database and every
energy evaluation is made *at* an operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.conditions.process import ProcessCorner, ProcessVariation
from repro.conditions.supply import CORE_RAIL, SupplyCondition
from repro.errors import ConfigurationError
from repro.units import kmh_to_ms

#: Modelled junction-temperature range in degrees Celsius; shared by the
#: scalar :class:`OperatingPoint` validation and the batch-condition columns
#: so the two paths can never disagree on what is in range.
TEMPERATURE_RANGE_C = (-60.0, 200.0)


@dataclass(frozen=True)
class OperatingPoint:
    """Working conditions at which power and energy are evaluated.

    Attributes:
        temperature_c: junction temperature in degrees Celsius.
        supply: the supply condition applied to the core rail.  Blocks on
            other rails scale from their own nominal rail; the core supply is
            the one the optimization techniques act on.
        process: process-variation condition.
        speed_kmh: vehicle cruising speed in km/h.  ``0`` means the vehicle is
            stationary (no wheel rounds, no harvesting).
    """

    temperature_c: float = 25.0
    supply: SupplyCondition = field(
        default_factory=lambda: SupplyCondition(rail=CORE_RAIL, corner="nom")
    )
    process: ProcessVariation = field(default_factory=ProcessVariation)
    speed_kmh: float = 60.0

    def __post_init__(self) -> None:
        if self.speed_kmh < 0.0:
            raise ConfigurationError("speed must be non-negative")
        if not TEMPERATURE_RANGE_C[0] <= self.temperature_c <= TEMPERATURE_RANGE_C[1]:
            raise ConfigurationError(
                f"temperature {self.temperature_c} degC is outside the modelled range"
            )

    @property
    def speed_ms(self) -> float:
        """Cruising speed in m/s."""
        return kmh_to_ms(self.speed_kmh)

    @property
    def supply_voltage(self) -> float:
        """Core supply voltage selected by the supply condition."""
        return self.supply.voltage

    @property
    def is_moving(self) -> bool:
        """True when the wheel is rotating (speed above zero)."""
        return self.speed_kmh > 0.0

    def at_speed(self, speed_kmh: float) -> "OperatingPoint":
        """Return a copy of this operating point at a different speed."""
        return replace(self, speed_kmh=speed_kmh)

    def at_temperature(self, temperature_c: float) -> "OperatingPoint":
        """Return a copy of this operating point at a different temperature."""
        return replace(self, temperature_c=temperature_c)

    def with_supply(self, supply: SupplyCondition) -> "OperatingPoint":
        """Return a copy of this operating point with a different supply condition."""
        return replace(self, supply=supply)

    def with_process(self, process: ProcessVariation) -> "OperatingPoint":
        """Return a copy of this operating point with a different process condition."""
        return replace(self, process=process)

    def describe(self) -> str:
        """One-line human-readable summary, used in reports."""
        return (
            f"{self.speed_kmh:.0f} km/h, {self.temperature_c:.0f} degC, "
            f"{self.supply_voltage:.2f} V, corner={self.process.corner.name.lower()}"
        )


def nominal_operating_point(speed_kmh: float = 60.0) -> OperatingPoint:
    """The nominal working condition used throughout the examples and benches."""
    return OperatingPoint(temperature_c=25.0, speed_kmh=speed_kmh)


def worst_case_operating_point(speed_kmh: float = 60.0) -> OperatingPoint:
    """Hot, fast-corner condition: the pessimistic leakage scenario."""
    return OperatingPoint(
        temperature_c=125.0,
        process=ProcessVariation(corner=ProcessCorner.FAST),
        speed_kmh=speed_kmh,
    )


def best_case_operating_point(speed_kmh: float = 60.0) -> OperatingPoint:
    """Cold, slow-corner condition: the optimistic leakage scenario."""
    return OperatingPoint(
        temperature_c=-40.0,
        process=ProcessVariation(corner=ProcessCorner.SLOW),
        speed_kmh=speed_kmh,
    )
