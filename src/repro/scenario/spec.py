"""The :class:`ScenarioSpec` — a frozen, declarative description of one experiment.

A scenario names everything one run of the toolkit needs — architecture,
power characterization, scavenger and its sizing, storage element, drive
cycle, environment (temperature / process / supply / speed) and workload
overrides — by *registry name plus parameters*.  Being plain data, a spec
can be built from Python kwargs or from a dict/JSON document, round-trips
through :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`, and is
the unit the :class:`~repro.scenario.study.Study` runner grid-expands.

A minimal JSON document::

    {
        "name": "quickstart",
        "architecture": "baseline",
        "scavenger": "piezoelectric",
        "storage": "supercapacitor",
        "drive_cycle": {"name": "urban", "params": {"repetitions": 2}},
        "environment": {"temperature_c": 25.0, "speed_kmh": 60.0}
    }

Every malformed document fails with a :class:`~repro.errors.ConfigError`
naming the offending field — never a bare ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import TEMPERATURE_RANGE_C, OperatingPoint
from repro.conditions.process import ProcessCorner, ProcessVariation
from repro.conditions.supply import CORE_RAIL, SupplyCondition
from repro.errors import ConfigError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger
from repro.scavenger.storage import StorageElement
from repro.scenario.registry import (
    ARCHITECTURES,
    DRIVE_CYCLES,
    POWER_DATABASES,
    SCAVENGERS,
    STORAGE_ELEMENTS,
    Registry,
)
from repro.vehicle.drive_cycle import DriveCycle

_SUPPLY_CORNERS = ("min", "nom", "max")


def _is_positive_finite(value: object) -> bool:
    """True for int/float scalars that are finite and strictly positive."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    return math.isfinite(value) and value > 0.0


@dataclass(frozen=True)
class ComponentRef:
    """A reference to a registered component: a name plus keyword parameters.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so two
    references built from differently-ordered documents compare equal (and
    the reference is hashable whenever its parameter values are).
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("component name must be a non-empty string")
        normalized = tuple(sorted((str(k), v) for k, v in self.params))
        object.__setattr__(self, "params", normalized)

    @classmethod
    def coerce(cls, value: object, field_name: str) -> "ComponentRef":
        """Accept a ``ComponentRef``, a bare name, or a ``{name, params}`` mapping."""
        if isinstance(value, ComponentRef):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"name", "params"}
            if unknown:
                raise ConfigError(
                    f"scenario field {field_name!r} has unknown keys {sorted(unknown)}; "
                    "expected 'name' and optional 'params'"
                )
            if "name" not in value:
                raise ConfigError(f"scenario field {field_name!r} needs a 'name'")
            params = value.get("params", {})
            if not isinstance(params, Mapping):
                raise ConfigError(f"scenario field {field_name!r}: 'params' must be a mapping")
            return cls(name=value["name"], params=tuple(params.items()))
        raise ConfigError(
            f"scenario field {field_name!r} must be a component name or a "
            f"{{'name', 'params'}} mapping, got {type(value).__name__}"
        )

    def to_dict(self) -> object:
        """Compact serialized form: the bare name when there are no params."""
        if not self.params:
            return self.name
        return {"name": self.name, "params": dict(self.params)}

    def build(self, registry: Registry) -> object:
        """Instantiate the referenced component from ``registry``."""
        return registry.create(self.name, **dict(self.params))

    def describe(self) -> str:
        """Short human-readable form used in labels and tables."""
        if not self.params:
            return self.name
        inner = ", ".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}({inner})"


def _ref(name: str) -> ComponentRef:
    return ComponentRef(name=name)


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, validated description of one energy-analysis experiment.

    Attributes:
        name: scenario label used in study rows and reports.
        architecture: Sensor Node architecture reference
            (:data:`~repro.scenario.registry.ARCHITECTURES`).
        power_database: characterization library reference
            (:data:`~repro.scenario.registry.POWER_DATABASES`).
        scavenger: harvester reference
            (:data:`~repro.scenario.registry.SCAVENGERS`).
        scavenger_size: size factor applied on top of the scavenger's own
            parameters (the paper's device-size knob).
        storage: storage-element reference, or ``None`` to skip emulation.
        drive_cycle: drive-cycle reference, or ``None`` for point analyses.
        temperature_c: junction temperature of the evaluation.
        speed_kmh: cruising speed of the point analyses (must be positive).
        supply_corner: core-rail supply corner, one of ``min``/``nom``/``max``.
        process_corner: process corner name (``typical``, ``fast``, ``slow``...).
        tx_interval_revs: workload override — transmit every N revolutions
            (``None`` keeps the architecture's own setting).
        payload_bits: workload override — radio payload size in bits.
    """

    name: str = "scenario"
    architecture: ComponentRef = field(default_factory=lambda: _ref("baseline"))
    power_database: ComponentRef = field(default_factory=lambda: _ref("reference"))
    scavenger: ComponentRef = field(default_factory=lambda: _ref("piezoelectric"))
    scavenger_size: float = 1.0
    storage: ComponentRef | None = field(default_factory=lambda: _ref("supercapacitor"))
    drive_cycle: ComponentRef | None = None
    temperature_c: float = 25.0
    speed_kmh: float = 60.0
    supply_corner: str = "nom"
    process_corner: str = "typical"
    tx_interval_revs: int | None = None
    payload_bits: int | None = None

    # -- validation ---------------------------------------------------------

    def __post_init__(self) -> None:
        set_attr = object.__setattr__
        set_attr(self, "architecture", ComponentRef.coerce(self.architecture, "architecture"))
        set_attr(self, "power_database", ComponentRef.coerce(self.power_database, "power_database"))
        set_attr(self, "scavenger", ComponentRef.coerce(self.scavenger, "scavenger"))
        if self.storage is not None:
            set_attr(self, "storage", ComponentRef.coerce(self.storage, "storage"))
        if self.drive_cycle is not None:
            set_attr(self, "drive_cycle", ComponentRef.coerce(self.drive_cycle, "drive_cycle"))

        if not self.name or not isinstance(self.name, str):
            raise ConfigError("scenario name must be a non-empty string")
        ARCHITECTURES.validate(self.architecture.name)
        POWER_DATABASES.validate(self.power_database.name)
        SCAVENGERS.validate(self.scavenger.name)
        if self.storage is not None:
            STORAGE_ELEMENTS.validate(self.storage.name)
        if self.drive_cycle is not None:
            DRIVE_CYCLES.validate(self.drive_cycle.name)

        if not _is_positive_finite(self.scavenger_size):
            raise ConfigError("scenario scavenger_size must be a positive finite number")
        if not _is_positive_finite(self.speed_kmh):
            raise ConfigError("scenario speed_kmh must be a positive finite number")
        low, high = TEMPERATURE_RANGE_C
        if not isinstance(self.temperature_c, (int, float)) or not (
            low <= self.temperature_c <= high
        ):
            raise ConfigError(
                f"scenario temperature_c must lie in [{low}, {high}] degC, "
                f"got {self.temperature_c!r}"
            )
        if self.supply_corner not in _SUPPLY_CORNERS:
            raise ConfigError(
                f"scenario supply_corner must be one of {_SUPPLY_CORNERS}, "
                f"got {self.supply_corner!r}"
            )
        try:
            ProcessCorner.from_name(self.process_corner)
        except Exception as exc:
            raise ConfigError(f"unknown scenario process_corner {self.process_corner!r}") from exc
        if self.tx_interval_revs is not None and (
            not isinstance(self.tx_interval_revs, int) or self.tx_interval_revs < 1
        ):
            raise ConfigError("scenario tx_interval_revs must be a positive integer")
        if self.payload_bits is not None and (
            not isinstance(self.payload_bits, int) or self.payload_bits < 1
        ):
            raise ConfigError("scenario payload_bits must be a positive integer")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form, JSON-serializable and accepted by :meth:`from_dict`."""
        document: dict[str, object] = {
            "name": self.name,
            "architecture": self.architecture.to_dict(),
            "power_database": self.power_database.to_dict(),
            "scavenger": self.scavenger.to_dict(),
            "scavenger_size": self.scavenger_size,
            "storage": self.storage.to_dict() if self.storage is not None else None,
            "drive_cycle": (
                self.drive_cycle.to_dict() if self.drive_cycle is not None else None
            ),
            "environment": {
                "temperature_c": self.temperature_c,
                "speed_kmh": self.speed_kmh,
                "supply_corner": self.supply_corner,
                "process_corner": self.process_corner,
            },
        }
        workload: dict[str, object] = {}
        if self.tx_interval_revs is not None:
            workload["tx_interval_revs"] = self.tx_interval_revs
        if self.payload_bits is not None:
            workload["payload_bits"] = self.payload_bits
        if workload:
            document["workload"] = workload
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "ScenarioSpec":
        """Build a validated spec from a plain dict (e.g. parsed JSON).

        Unknown top-level, ``environment`` or ``workload`` keys raise
        :class:`~repro.errors.ConfigError` so typos never pass silently.
        """
        if not isinstance(document, Mapping):
            raise ConfigError(
                f"a scenario document must be a mapping, got {type(document).__name__}"
            )
        known = {
            "name",
            "architecture",
            "power_database",
            "scavenger",
            "scavenger_size",
            "storage",
            "drive_cycle",
            "environment",
            "workload",
        }
        unknown = set(document) - known
        if unknown:
            raise ConfigError(
                f"unknown scenario field(s) {sorted(unknown)}; known fields: {sorted(known)}"
            )

        environment = document.get("environment", {})
        if not isinstance(environment, Mapping):
            raise ConfigError("scenario 'environment' must be a mapping")
        env_known = {"temperature_c", "speed_kmh", "supply_corner", "process_corner"}
        env_unknown = set(environment) - env_known
        if env_unknown:
            raise ConfigError(
                f"unknown environment field(s) {sorted(env_unknown)}; "
                f"known fields: {sorted(env_known)}"
            )

        workload = document.get("workload", {})
        if not isinstance(workload, Mapping):
            raise ConfigError("scenario 'workload' must be a mapping")
        load_known = {"tx_interval_revs", "payload_bits"}
        load_unknown = set(workload) - load_known
        if load_unknown:
            raise ConfigError(
                f"unknown workload field(s) {sorted(load_unknown)}; "
                f"known fields: {sorted(load_known)}"
            )

        kwargs: dict[str, object] = {}
        for key in ("name", "scavenger_size"):
            if key in document:
                kwargs[key] = document[key]
        for key in ("architecture", "power_database", "scavenger"):
            if key in document:
                kwargs[key] = ComponentRef.coerce(document[key], key)
        for key in ("storage", "drive_cycle"):
            if key in document and document[key] is not None:
                kwargs[key] = ComponentRef.coerce(document[key], key)
            elif key in document:
                kwargs[key] = None
        kwargs.update({key: environment[key] for key in environment})
        kwargs.update({key: workload[key] for key in workload})
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document string."""
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> Path:
        """Write the spec as a JSON file and return the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    # -- grid axes ----------------------------------------------------------

    #: Accepted axis names (plus aliases) for :meth:`with_axis` / study grids.
    _AXIS_ALIASES = {
        "architecture": "architecture",
        "power_database": "power_database",
        "database": "power_database",
        "scavenger": "scavenger",
        "scavenger_size": "scavenger_size",
        "size": "scavenger_size",
        "storage": "storage",
        "drive_cycle": "drive_cycle",
        "cycle": "drive_cycle",
        "temperature": "temperature_c",
        "temperature_c": "temperature_c",
        "speed": "speed_kmh",
        "speed_kmh": "speed_kmh",
        "supply_corner": "supply_corner",
        "process_corner": "process_corner",
        "tx_interval_revs": "tx_interval_revs",
        "payload_bits": "payload_bits",
        "name": "name",
    }

    @classmethod
    def axis_names(cls) -> list[str]:
        """Every accepted grid-axis name (including aliases), sorted."""
        return sorted(cls._AXIS_ALIASES)

    def with_axis(self, axis: str, value: object) -> "ScenarioSpec":
        """Return a copy of the spec with one grid axis overridden.

        ``axis`` accepts the canonical field names plus the short aliases
        used by the CLI (``temperature``, ``speed``, ``cycle``, ``size``,
        ``database``).  Component axes accept a bare name or a
        ``{name, params}`` mapping.
        """
        if axis not in self._AXIS_ALIASES:
            raise ConfigError(f"unknown scenario axis {axis!r}; known axes: {self.axis_names()}")
        field_name = self._AXIS_ALIASES[axis]
        if field_name in ("architecture", "power_database", "scavenger"):
            value = ComponentRef.coerce(value, field_name)
        elif field_name in ("storage", "drive_cycle") and value is not None:
            value = ComponentRef.coerce(value, field_name)
        return replace(self, **{field_name: value})

    def with_axes(self, **axes: object) -> "ScenarioSpec":
        """Apply several :meth:`with_axis` overrides at once."""
        spec = self
        for axis, value in axes.items():
            spec = spec.with_axis(axis, value)
        return spec

    # -- component construction ---------------------------------------------

    def build_node(self) -> SensorNode:
        """Instantiate the architecture and apply the workload overrides."""
        node = self.architecture.build(ARCHITECTURES)
        if not isinstance(node, SensorNode):
            raise ConfigError(
                f"architecture {self.architecture.name!r} did not produce a SensorNode"
            )
        if self.tx_interval_revs is not None or self.payload_bits is not None:
            radio = node.radio
            if self.tx_interval_revs is not None:
                radio = replace(radio, tx_interval_revs=self.tx_interval_revs)
            if self.payload_bits is not None:
                radio = replace(radio, payload_bits=self.payload_bits)
            node = node.with_radio(radio)
        return node

    def build_database(self) -> PowerDatabase:
        """Instantiate the power characterization library."""
        database = self.power_database.build(POWER_DATABASES)
        if not isinstance(database, PowerDatabase):
            raise ConfigError(
                f"power database {self.power_database.name!r} did not produce "
                "a PowerDatabase"
            )
        return database

    def build_scavenger(self) -> EnergyScavenger:
        """Instantiate the scavenger, scaled by :attr:`scavenger_size`."""
        scavenger = self.scavenger.build(SCAVENGERS)
        if not isinstance(scavenger, EnergyScavenger):
            raise ConfigError(
                f"scavenger {self.scavenger.name!r} did not produce an EnergyScavenger"
            )
        if self.scavenger_size != 1.0:
            scavenger = scavenger.scaled(self.scavenger_size)
        return scavenger

    def build_storage(self) -> StorageElement | None:
        """Instantiate the storage element (``None`` when the spec has none)."""
        if self.storage is None:
            return None
        storage = self.storage.build(STORAGE_ELEMENTS)
        if not isinstance(storage, StorageElement):
            raise ConfigError(
                f"storage element {self.storage.name!r} did not produce a StorageElement"
            )
        return storage

    def build_drive_cycle(self) -> DriveCycle | None:
        """Instantiate the drive cycle (``None`` when the spec has none)."""
        if self.drive_cycle is None:
            return None
        cycle = self.drive_cycle.build(DRIVE_CYCLES)
        if not isinstance(cycle, DriveCycle):
            raise ConfigError(f"drive cycle {self.drive_cycle.name!r} did not produce a DriveCycle")
        return cycle

    def evaluator_group_key(self) -> str:
        """Cache key under which scenarios share one evaluator/compiled table.

        Scenarios agreeing on architecture, workload overrides and power
        database evaluate identically per operating condition, so study grid
        points and fleet vehicles with equal keys share one
        :class:`~repro.core.evaluator.EnergyEvaluator`.  Repr-keyed rather
        than hashed: component params may hold unhashable JSON values
        (lists, dicts), and dataclass reprs of equal refs match.  Every
        sharing consumer derives its key HERE — if a new spec field ever
        affects the compiled table, extending this tuple fixes them all.
        """
        return repr(
            (
                self.architecture,
                self.tx_interval_revs,
                self.payload_bits,
                self.power_database,
            )
        )

    def build_components(self, backend=None) -> tuple:
        """Build the ``(node, database, evaluator)`` triple of this scenario.

        The shareable unit behind :meth:`evaluator_group_key`: callers memo
        the result under that key (study evaluator cache, process-worker
        memos, fleet groups).  ``backend`` selects the evaluator's array
        backend — an execution policy threaded to
        :class:`~repro.core.evaluator.EnergyEvaluator`, deliberately NOT
        part of :meth:`evaluator_group_key` (backends must never enter
        digests or store keys).
        """
        from repro.core.evaluator import EnergyEvaluator

        node = self.build_node()
        database = self.build_database()
        return node, database, EnergyEvaluator(node, database, backend=backend)

    def operating_point(self) -> OperatingPoint:
        """The :class:`OperatingPoint` described by the environment fields."""
        return OperatingPoint(
            temperature_c=float(self.temperature_c),
            speed_kmh=float(self.speed_kmh),
            supply=SupplyCondition(rail=CORE_RAIL, corner=self.supply_corner),
            process=ProcessVariation(corner=ProcessCorner.from_name(self.process_corner)),
        )

    def describe(self) -> str:
        """One-line summary used by study rows and the CLI."""
        parts = [
            self.architecture.describe(),
            f"db={self.power_database.describe()}",
            f"scavenger={self.scavenger.describe()} x{self.scavenger_size:g}",
            f"{self.temperature_c:g} degC",
            f"{self.speed_kmh:g} km/h",
        ]
        if self.drive_cycle is not None:
            parts.append(f"cycle={self.drive_cycle.describe()}")
        return ", ".join(parts)


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Read a scenario JSON file into a validated :class:`ScenarioSpec`.

    Raises:
        ConfigError: when the file is missing, is not valid JSON, or the
            document fails spec validation.
    """
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read scenario file {target}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"scenario file {target} is not valid JSON: {exc}") from exc
    return ScenarioSpec.from_dict(document)
