"""Seeded Monte-Carlo workload sampling for the ``montecarlo`` study kind.

The paper's design-space questions are usually asked at a handful of nominal
operating points; real drives are distributions.  A Monte-Carlo study samples
N (speed, temperature, activity, phase-pattern) conditions around a
scenario's operating point from seeded distributions and pushes them through
the workload-vectorized batch engine
(:meth:`~repro.core.evaluator.EnergyEvaluator.schedule_energy_sweep`), so the
whole sample population evaluates in a handful of array expressions instead
of N scalar schedule reports.

Determinism contract: the random stream is derived from ``(seed, scenario
document)``, never from execution order, so a grid point draws the same
sample population whether the study runs sequentially or on a thread pool —
``Study.run(workers=4)`` rows are identical to the sequential ones.

The per-axis samplers ride the fleet distribution registry
(:mod:`repro.fleet.distributions`): the defaults reproduce the historical
clipped normal/uniform draws rng-call-for-rng-call, and the optional
``speed_distribution`` / ``temperature_distribution`` /
``activity_distribution`` fields swap in any registered kind (log-normal
speeds, correlated temperature, user-registered samplers) without touching
the stream derivation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.blocks.node import SensorNode
from repro.conditions.batch import BatchConditions
from repro.conditions.operating_point import TEMPERATURE_RANGE_C, OperatingPoint
from repro.errors import ConfigError
from repro.fleet.distributions import DistributionSpec

#: Slowest speed worth sampling: below ~5 km/h the node is effectively at
#: standstill and the revolution-schedule model does not apply.
_MIN_SPEED_KMH = 5.0


@dataclass(frozen=True)
class MonteCarloDraws:
    """One sampled workload population, ready for the batch engine.

    Attributes:
        conditions: the per-sample operating conditions (speed, temperature
            and workload activity columns; supply/process come from the
            scenario's operating point).
        patterns: ``(N, 3)`` boolean array of per-sample conditional-phase
            flags ``(transmits, refreshes_slow, writes_nvm)``.
    """

    conditions: BatchConditions
    patterns: np.ndarray

    def __len__(self) -> int:
        return len(self.conditions)


@dataclass(frozen=True)
class MonteCarloConfig:
    """Sampling distributions of one Monte-Carlo workload study.

    Attributes:
        samples: population size per grid point.
        seed: base seed of the deterministic random stream.
        speed_rel_std: relative standard deviation of the default (normal)
            speed distribution around the scenario's cruising speed.
        temperature_std_c: standard deviation of the default (normal)
            temperature distribution around the scenario's temperature.
        activity_range: ``(low, high)`` bounds of the default uniform
            per-sample workload activity factor
            (see ``BatchConditions.activity``).
        speed_distribution: optional registered distribution replacing the
            default speed sampler (a kind name, a ``{kind, params}``
            mapping, or a :class:`~repro.fleet.distributions.DistributionSpec`);
            draws are still clipped into the node's sustainable range.
        temperature_distribution: optional distribution replacing the
            default temperature sampler; draws are clipped to the modelled
            temperature range.
        activity_distribution: optional distribution replacing the default
            activity sampler; draws must stay positive.
    """

    samples: int = 512
    seed: int = 2011
    speed_rel_std: float = 0.15
    temperature_std_c: float = 7.5
    activity_range: tuple[float, float] = (0.6, 1.0)
    speed_distribution: DistributionSpec | None = None
    temperature_distribution: DistributionSpec | None = None
    activity_distribution: DistributionSpec | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.samples, int) or self.samples < 1:
            raise ConfigError("montecarlo samples must be a positive integer")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigError("montecarlo seed must be a non-negative integer")
        if self.speed_rel_std < 0.0 or self.temperature_std_c < 0.0:
            raise ConfigError("montecarlo standard deviations must be non-negative")
        low, high = self.activity_range
        if not (0.0 < low <= high):
            raise ConfigError("montecarlo activity_range must satisfy 0 < low <= high")
        for field_name in (
            "speed_distribution",
            "temperature_distribution",
            "activity_distribution",
        ):
            value = getattr(self, field_name)
            if value is not None:
                object.__setattr__(
                    self, field_name, DistributionSpec.coerce(value, field_name)
                )

    # -- deterministic stream -------------------------------------------------

    def rng_for(self, scenario_document: str) -> np.random.Generator:
        """The random generator of one grid point.

        Seeded from the config seed plus a digest of the scenario document,
        so the stream is a pure function of (config, scenario) — independent
        of grid position and of whether the study runs on worker threads.
        """
        digest = zlib.crc32(scenario_document.encode("utf-8"))
        return np.random.default_rng((self.seed, digest))

    # -- sampling -------------------------------------------------------------

    def draw(
        self,
        node: SensorNode,
        point: OperatingPoint,
        rng: np.random.Generator,
    ) -> MonteCarloDraws:
        """Sample one workload population around ``point``.

        Speeds are clipped into the node's sustainable range (worst-case
        schedule feasibility), temperatures into the modelled range, so every
        draw is evaluable; the conditional-phase flags are Bernoulli draws
        with the architecture's own per-revolution occurrence probabilities.

        Per-axis samplers come from the distribution registry; the default
        specs reproduce the historical clipped normal/uniform draws
        rng-call-for-rng-call, so a default config's stream is bit-identical
        to the pre-registry implementation.
        """
        count = self.samples
        ceiling = node.max_sustainable_speed_kmh() * 0.999
        low_speed = min(_MIN_SPEED_KMH, ceiling)
        speed_spec = self.speed_distribution or DistributionSpec(
            "normal",
            (("mean", point.speed_kmh), ("std", self.speed_rel_std * point.speed_kmh)),
        )
        speeds = np.clip(
            np.asarray(speed_spec.build().sample(rng, count), dtype=float),
            low_speed,
            ceiling,
        )
        low_t, high_t = TEMPERATURE_RANGE_C
        temperature_spec = self.temperature_distribution or DistributionSpec(
            "normal",
            (("mean", point.temperature_c), ("std", self.temperature_std_c)),
        )
        temperatures = np.clip(
            np.asarray(temperature_spec.build().sample(rng, count), dtype=float),
            low_t,
            high_t,
        )
        activity_low, activity_high = self.activity_range
        activity_spec = self.activity_distribution or DistributionSpec(
            "uniform", (("low", activity_low), ("high", activity_high))
        )
        activities = np.asarray(activity_spec.build().sample(rng, count), dtype=float)
        nvm_probability = (
            1.0 / node.memory.nvm_write_interval_revs if node.memory.use_nvm else 0.0
        )
        patterns = np.column_stack(
            (
                rng.random(count) < 1.0 / node.radio.tx_interval_revs,
                rng.random(count) < 1.0 / node.sensors.slow_refresh_interval_revs,
                rng.random(count) < nvm_probability,
            )
        )
        conditions = BatchConditions.from_arrays(
            speeds,
            temperatures,
            base_point=point,
            activity=activities,
        )
        return MonteCarloDraws(conditions=conditions, patterns=patterns)


def summarize_energies(
    energies: np.ndarray, periods: np.ndarray, samples: int
) -> dict[str, object]:
    """Row figures of one Monte-Carlo population (energies in J, periods in s)."""
    power_uw = energies / periods * 1e6
    return {
        "samples": samples,
        "mean_uj_per_rev": float(np.mean(energies)) * 1e6,
        "std_uj_per_rev": float(np.std(energies)) * 1e6,
        "p05_uj_per_rev": float(np.percentile(energies, 5.0)) * 1e6,
        "p95_uj_per_rev": float(np.percentile(energies, 95.0)) * 1e6,
        "max_uj_per_rev": float(np.max(energies)) * 1e6,
        "mean_power_uw": float(np.mean(power_uw)),
        "p95_power_uw": float(np.percentile(power_uw, 95.0)),
    }
