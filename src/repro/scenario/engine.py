"""Chunked work-item execution engine shared by studies and fleet runs.

Every "run many independent work items" loop in the toolkit used to live
inside :meth:`repro.scenario.study.Study.run`: scheduling, worker pools,
per-item timing and row collection were welded to the study grid.  This
module extracts that machinery into a reusable engine with a streaming
contract::

    work-item iterator  →  chunked thread/process execution  →  row sink

* **Work items** come from any iterable; the engine consumes it lazily in
  chunks, so neither the item list nor the result set ever needs to be
  materialized wholesale (a million-vehicle fleet streams through a bounded
  window of in-flight work).
* **Execution** runs sequentially (``workers=1`` or fewer than two items),
  on a thread pool, or on a process pool.  The process backend ships each
  item through a caller-provided *payload* function (something picklable —
  scenario JSON documents, vehicle parameter tuples) to a module-level
  *worker* function, using the fork context so user registry registrations
  reach the workers.
* **Results** are pushed to a ``sink(index, result)`` callback in input
  order as the bounded in-flight window advances — never held back until
  the whole run finishes, and never barriered between chunks (as one item
  finishes, the next is submitted).  Rows are identical (order, values,
  key order) to a sequential run whichever backend executes them.

Per-item wall times and the executed backend land in the returned
:class:`EngineReport`, which is how ``StudyResult.metadata`` keeps its
timing bookkeeping.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ConfigError

#: Backends the engine understands.
ENGINE_BACKENDS = ("thread", "process")

#: Default number of in-flight items per worker slot.  The sliding window
#: keeps ``chunk_size * workers`` items submitted at any moment: large
#: enough that no worker starves while the window head finishes, small
#: enough that results stream to the sink promptly and lazily-produced work
#: items are not all materialized up front.
DEFAULT_CHUNK_SIZE = 8


def process_pool_context():
    """The multiprocessing context of the process backend.

    Forked workers inherit user registry registrations (and the loaded
    modules), which is what lets a payload referencing a ``register_*``-ed
    component rebuild inside the pool.  Platforms without fork (Windows;
    macOS defaults to spawn) fall back to the default context, where only
    importable registrations survive — the explicit request keeps the
    behaviour deterministic instead of riding the interpreter's changing
    default (spawn/forkserver).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


@dataclass(frozen=True)
class EngineReport:
    """Bookkeeping of one engine run.

    Attributes:
        backend: the backend that actually executed the items —
            ``"sequential"``, ``"thread"`` or ``"process"`` (a parallel
            request over zero or one items degrades to sequential).
        workers: the effective pool width used.
        items: number of work items executed.
        wall_time_s: total wall time of the run.
        item_wall_times_s: per-item wall times, in input order.  For the
            process backend the time is measured inside the worker and
            covers the payload rebuild plus the kernel, mirroring what the
            in-process path measures.
    """

    backend: str
    workers: int
    items: int
    wall_time_s: float
    item_wall_times_s: tuple[float, ...]


def _timed_process_task(task):
    """Module-level worker wrapper: run one payload and time it in-worker."""
    worker, payload = task
    started = time.perf_counter()
    return worker(payload), time.perf_counter() - started


class ChunkedEngine:
    """Chunked, order-preserving executor for independent work items.

    Args:
        workers: pool width.  ``None`` or 1 executes sequentially.
        backend: ``"thread"`` (default) or ``"process"`` (see the module
            docstring); ignored — sequential — when fewer than two items or
            workers arrive.
        chunk_size: in-flight items per worker slot
            (:data:`DEFAULT_CHUNK_SIZE`); the sliding submission window is
            ``chunk_size * workers`` items.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "thread",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if workers is None:
            workers = 1
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ConfigError(f"workers must be a positive integer, got {workers!r}")
        if backend not in ENGINE_BACKENDS:
            raise ConfigError(
                f"unknown execution backend {backend!r}; "
                f"available: {list(ENGINE_BACKENDS)}"
            )
        if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
            raise ConfigError(f"chunk_size must be a positive integer, got {chunk_size!r}")
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size

    def run(
        self,
        items: Iterable[object],
        kernel: Callable[[object], object],
        sink: Callable[[int, object], None],
        process_worker: Callable[[object], object] | None = None,
        process_payload: Callable[[object], object] | None = None,
    ) -> EngineReport:
        """Execute ``kernel`` over ``items`` and stream results to ``sink``.

        Args:
            items: the work items; consumed lazily, chunk by chunk.
            kernel: in-process item evaluator (sequential and thread
                backends, and the sequential degradation of the process
                backend — a single-item "grid" never pays pool start-up).
            sink: called as ``sink(index, result)`` in input order as
                results complete.
            process_worker: module-level (picklable) function executing one
                *payload* in a worker process; required for the process
                backend.
            process_payload: maps an item to the picklable payload shipped
                to ``process_worker``; required for the process backend.

        Returns:
            An :class:`EngineReport` with the executed backend and timings.
        """
        missing_worker = process_worker is None or process_payload is None
        if self.backend == "process" and self.workers > 1 and missing_worker:
            raise ConfigError("the process backend needs process_worker and process_payload")
        iterator = iter(items)
        # Peek ahead far enough to know whether a pool is worth starting:
        # zero or one items degrade to the sequential path on any backend.
        head = list(itertools.islice(iterator, 2))
        parallel = self.workers > 1 and len(head) > 1
        iterator = itertools.chain(head, iterator)

        started = time.perf_counter()
        timings: list[float] = []
        index = 0
        window = self.chunk_size * self.workers
        if parallel and self.backend == "process":
            backend_used = "process"
            with ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=process_pool_context(),
            ) as pool:
                tasks = ((process_worker, process_payload(item)) for item in iterator)
                index = self._drain_window(
                    pool, _timed_process_task, tasks, window, sink, timings
                )
        elif parallel:
            backend_used = "thread"

            def timed(item):
                item_started = time.perf_counter()
                return kernel(item), time.perf_counter() - item_started

            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                index = self._drain_window(pool, timed, iterator, window, sink, timings)
        else:
            backend_used = "sequential"
            for item in iterator:
                item_started = time.perf_counter()
                result = kernel(item)
                timings.append(time.perf_counter() - item_started)
                sink(index, result)
                index += 1
        return EngineReport(
            backend=backend_used,
            workers=self.workers if parallel else 1,
            items=index,
            wall_time_s=time.perf_counter() - started,
            item_wall_times_s=tuple(timings),
        )

    @staticmethod
    def _drain_window(pool, task, items, window, sink, timings) -> int:
        """Sliding-window submission: bounded in-flight, ordered release.

        At most ``window`` futures are submitted at any moment; as the
        *oldest* completes, its result goes to the sink (preserving input
        order) and the next item is submitted — no barrier, so a slow item
        never idles the other workers beyond the window bound.
        """
        pending: deque = deque()
        index = 0
        for item in items:
            if len(pending) >= window:
                result, elapsed = pending.popleft().result()
                sink(index, result)
                timings.append(elapsed)
                index += 1
            pending.append(pool.submit(task, item))
        while pending:
            result, elapsed = pending.popleft().result()
            sink(index, result)
            timings.append(elapsed)
            index += 1
        return index
