"""Chunked work-item execution engine shared by studies and fleet runs.

Every "run many independent work items" loop in the toolkit used to live
inside :meth:`repro.scenario.study.Study.run`: scheduling, worker pools,
per-item timing and row collection were welded to the study grid.  This
module extracts that machinery into a reusable engine with a streaming
contract::

    work-item iterator  →  chunked thread/process execution  →  row sink

* **Work items** come from any iterable; the engine consumes it lazily in
  chunks, so neither the item list nor the result set ever needs to be
  materialized wholesale (a million-vehicle fleet streams through a bounded
  window of in-flight work).
* **Execution** runs sequentially (``workers=1`` or fewer than two items),
  on a thread pool, or on a process pool.  The process backend ships each
  item through a caller-provided *payload* function (something picklable —
  scenario JSON documents, vehicle parameter tuples) to a module-level
  *worker* function, using the fork context so user registry registrations
  reach the workers.
* **Results** are pushed to a ``sink(index, result)`` callback in input
  order as the bounded in-flight window advances — never held back until
  the whole run finishes, and never barriered between chunks (as one item
  finishes, the next is submitted).  Rows are identical (order, values,
  key order) to a sequential run whichever backend executes them.
* **Failure degradation** is bounded and structured: per-item exceptions
  are retried up to ``retries`` times with a backoff, and a dead worker
  process (``BrokenProcessPool``) rebuilds the pool and resubmits the
  in-flight window within the same budget.  Exhausted budgets either raise
  (``failure_mode="raise"``, the default — the original exception type for
  item errors, an :class:`~repro.errors.EngineError` naming the in-flight
  item indices for worker death) or surface as :class:`EngineFailure`
  records on the report (``failure_mode="collect"``) while the run carries
  on.

Per-item wall times and the executed backend land in the returned
:class:`EngineReport`, which is how ``StudyResult.metadata`` keeps its
timing bookkeeping.  :meth:`ChunkedEngine.run_chunks` layers checkpointed,
resumable execution over pre-chunked work (see
:mod:`repro.scenario.checkpoint`).

**Observability and cancellation.**  Long-lived callers (the serving
layer's job manager) watch a run through the ``progress`` callback: the
engine calls it with a small event dict after every settled item
(``{"event": "item", "items_done": n, "failures": k}``) and — under
:meth:`ChunkedEngine.run_chunks` — after every completed chunk
(``{"event": "chunk", ...}`` with chunk/item counts and whether the chunk
was replayed from a checkpoint).  ``run_chunks`` additionally accepts a
``should_stop`` callable, polled before each *new* chunk is executed:
returning ``True`` ends the run early at a chunk boundary
(``stopped_early`` on the report) with every completed chunk already
journaled — which is what makes graceful service shutdown equivalent to a
resumable interruption.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.errors import ConfigError, EngineError

#: Backends the engine understands.
ENGINE_BACKENDS = ("thread", "process")

#: Default number of in-flight items per worker slot.  The sliding window
#: keeps ``chunk_size * workers`` items submitted at any moment: large
#: enough that no worker starves while the window head finishes, small
#: enough that results stream to the sink promptly and lazily-produced work
#: items are not all materialized up front.
DEFAULT_CHUNK_SIZE = 8

#: Failure modes: ``"raise"`` propagates the first exhausted failure,
#: ``"collect"`` records it on the report and keeps running.
FAILURE_MODES = ("raise", "collect")


def process_pool_context():
    """The multiprocessing context of the process backend.

    Forked workers inherit user registry registrations (and the loaded
    modules), which is what lets a payload referencing a ``register_*``-ed
    component rebuild inside the pool.  Platforms without fork (Windows;
    macOS defaults to spawn) fall back to the default context, where only
    importable registrations survive — the explicit request keeps the
    behaviour deterministic instead of riding the interpreter's changing
    default (spawn/forkserver).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


@dataclass(frozen=True)
class EngineFailure:
    """One work item the engine gave up on (its retry budget exhausted).

    Attributes:
        index: the item's input-order index (global across a
            :meth:`ChunkedEngine.run_chunks` run).
        attempts: how many times the item was attempted.
        kind: ``"exception"`` (the kernel raised) or ``"worker-death"``
            (the process executing it died).
        error: one-line description of the final failure.
    """

    index: int
    attempts: int
    kind: str
    error: str

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for metadata and checkpoint journals."""
        return {
            "index": self.index,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, document) -> "EngineFailure":
        return cls(
            index=int(document["index"]),
            attempts=int(document["attempts"]),
            kind=str(document["kind"]),
            error=str(document["error"]),
        )


@dataclass(frozen=True)
class EngineReport:
    """Bookkeeping of one engine run.

    Attributes:
        backend: the backend that actually executed the items —
            ``"sequential"``, ``"thread"`` or ``"process"`` (a parallel
            request over zero or one items degrades to sequential; a fully
            checkpoint-replayed ``run_chunks`` reports ``"resumed"``).
        workers: the effective pool width used.
        items: number of work items executed (including replayed and failed
            ones).
        wall_time_s: total wall time of the run.
        item_wall_times_s: per-item wall times, in input order.  For the
            process backend the time is measured inside the worker and
            covers the payload rebuild plus the kernel, mirroring what the
            in-process path measures.  A failed item's entry covers its
            final attempt; a replayed item's entry is the journaled time of
            the original execution.
        failures: items given up on (``failure_mode="collect"`` only).
        retries: total extra attempts spent across all items.
        pool_rebuilds: process pools rebuilt after a worker death.
        chunks: chunks completed by :meth:`ChunkedEngine.run_chunks`
            (executed + replayed); 0 for plain :meth:`ChunkedEngine.run`.
        resumed_chunks: chunks replayed from a checkpoint journal.
        resumed_items: items replayed from a checkpoint journal.
        stopped_early: ``run_chunks`` hit its ``max_new_chunks`` budget
            before exhausting the chunk iterator (the run is partial).
    """

    backend: str
    workers: int
    items: int
    wall_time_s: float
    item_wall_times_s: tuple[float, ...]
    failures: tuple[EngineFailure, ...] = ()
    retries: int = 0
    pool_rebuilds: int = 0
    chunks: int = 0
    resumed_chunks: int = 0
    resumed_items: int = 0
    stopped_early: bool = False


@dataclass(frozen=True)
class _FailedItem:
    """In-band marker a retry wrapper returns when collecting failures."""

    kind: str
    error: str


def _run_attempts(call, retries: int, backoff_s: float, collect: bool):
    """Run ``call`` with a bounded retry budget.

    Returns ``(value, elapsed_s, attempts)`` where ``value`` is the result
    or — when ``collect`` and the budget is exhausted — a :class:`_FailedItem`.
    In raise mode the final attempt's exception propagates unchanged (so a
    retry-less engine behaves exactly like the pre-retry engine).  The
    elapsed time spans all attempts, mirroring what the caller would have
    waited.
    """
    started = time.perf_counter()
    attempts = 0
    while True:
        attempts += 1
        try:
            value = call()
        except Exception as error:
            if attempts <= retries:
                if backoff_s > 0.0:
                    time.sleep(backoff_s)
                continue
            if collect:
                failure = _FailedItem(
                    kind="exception", error=f"{type(error).__name__}: {error}"
                )
                return failure, time.perf_counter() - started, attempts
            raise
        return value, time.perf_counter() - started, attempts


def _timed_process_task(task):
    """Module-level worker wrapper: run one payload, retry and time in-worker."""
    worker, payload, retries, backoff_s, collect = task
    return _run_attempts(lambda: worker(payload), retries, backoff_s, collect)


def _notify_item(progress, items_done: int, failure_count: int) -> None:
    """Emit one per-item progress event (no-op without an observer)."""
    if progress is not None:
        progress({"event": "item", "items_done": items_done, "failures": failure_count})


class ChunkedEngine:
    """Chunked, order-preserving executor for independent work items.

    Args:
        workers: pool width.  ``None`` or 1 executes sequentially.
        backend: ``"thread"`` (default) or ``"process"`` (see the module
            docstring); ignored — sequential — when fewer than two items or
            workers arrive.
        chunk_size: in-flight items per worker slot
            (:data:`DEFAULT_CHUNK_SIZE`); the sliding submission window is
            ``chunk_size * workers`` items.
        retries: extra attempts per item (and per-item worker deaths
            survived) before the engine gives up on it.
        retry_backoff_s: pause before each retry (and before rebuilding a
            dead process pool).
        failure_mode: what an exhausted retry budget does — ``"raise"``
            (default) propagates, ``"collect"`` records an
            :class:`EngineFailure` on the report and skips the item's sink
            call.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "thread",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        failure_mode: str = "raise",
    ) -> None:
        if workers is None:
            workers = 1
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ConfigError(f"workers must be a positive integer, got {workers!r}")
        if backend not in ENGINE_BACKENDS:
            raise ConfigError(
                f"unknown execution backend {backend!r}; "
                f"available: {list(ENGINE_BACKENDS)}"
            )
        if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
            raise ConfigError(f"chunk_size must be a positive integer, got {chunk_size!r}")
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise ConfigError(f"retries must be a non-negative integer, got {retries!r}")
        if (
            not isinstance(retry_backoff_s, (int, float))
            or isinstance(retry_backoff_s, bool)
            or retry_backoff_s < 0.0
        ):
            raise ConfigError(
                f"retry_backoff_s must be a non-negative number, got {retry_backoff_s!r}"
            )
        if failure_mode not in FAILURE_MODES:
            raise ConfigError(
                f"unknown failure_mode {failure_mode!r}; available: {list(FAILURE_MODES)}"
            )
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size
        self.retries = retries
        self.retry_backoff_s = float(retry_backoff_s)
        self.failure_mode = failure_mode

    # -- single-pass execution ----------------------------------------------

    def run(
        self,
        items: Iterable[object],
        kernel: Callable[[object], object],
        sink: Callable[[int, object], None],
        process_worker: Callable[[object], object] | None = None,
        process_payload: Callable[[object], object] | None = None,
        progress: Callable[[dict], None] | None = None,
    ) -> EngineReport:
        """Execute ``kernel`` over ``items`` and stream results to ``sink``.

        Args:
            items: the work items; consumed lazily, chunk by chunk.
            kernel: in-process item evaluator (sequential and thread
                backends, and the sequential degradation of the process
                backend — a single-item "grid" never pays pool start-up).
            sink: called as ``sink(index, result)`` in input order as
                results complete; failed items (``failure_mode="collect"``)
                are skipped, their indices recorded on the report.
            process_worker: module-level (picklable) function executing one
                *payload* in a worker process; required for the process
                backend.
            process_payload: maps an item to the picklable payload shipped
                to ``process_worker``; required for the process backend.
            progress: optional observer called after every settled item with
                ``{"event": "item", "items_done": n, "failures": k}``
                (cumulative counts, input order — right after the item's
                sink call).  Exceptions it raises propagate, so observers
                must be cheap and non-throwing.

        Returns:
            An :class:`EngineReport` with the executed backend and timings.
        """
        missing_worker = process_worker is None or process_payload is None
        if self.backend == "process" and self.workers > 1 and missing_worker:
            raise ConfigError("the process backend needs process_worker and process_payload")
        if progress is not None and not callable(progress):
            raise ConfigError(f"progress must be callable, got {progress!r}")
        iterator = iter(items)
        # Peek ahead far enough to know whether a pool is worth starting:
        # zero or one items degrade to the sequential path on any backend.
        head = list(itertools.islice(iterator, 2))
        parallel = self.workers > 1 and len(head) > 1
        iterator = itertools.chain(head, iterator)

        started = time.perf_counter()
        timings: list[float] = []
        failures: list[EngineFailure] = []
        counters = {"retries": 0, "pool_rebuilds": 0}
        collect = self.failure_mode == "collect"
        window = self.chunk_size * self.workers
        if parallel and self.backend == "process":
            backend_used = "process"
            tasks = (
                (process_worker, process_payload(item), self.retries, self.retry_backoff_s, collect)
                for item in iterator
            )
            items_run = self._drain_process(
                tasks, window, sink, timings, failures, counters, progress
            )
        elif parallel:
            backend_used = "thread"

            def timed(item):
                return _run_attempts(
                    lambda: kernel(item), self.retries, self.retry_backoff_s, collect
                )

            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                items_run = self._drain_window(
                    pool, timed, iterator, window, sink, timings, failures, counters, progress
                )
        else:
            backend_used = "sequential"
            items_run = 0
            for item in iterator:
                value, elapsed, attempts = _run_attempts(
                    lambda: kernel(item), self.retries, self.retry_backoff_s, collect
                )
                counters["retries"] += attempts - 1
                timings.append(elapsed)
                if isinstance(value, _FailedItem):
                    failures.append(
                        EngineFailure(
                            index=items_run,
                            attempts=attempts,
                            kind=value.kind,
                            error=value.error,
                        )
                    )
                else:
                    sink(items_run, value)
                items_run += 1
                _notify_item(progress, items_run, len(failures))
        return EngineReport(
            backend=backend_used,
            workers=self.workers if parallel else 1,
            items=items_run,
            wall_time_s=time.perf_counter() - started,
            item_wall_times_s=tuple(timings),
            failures=tuple(failures),
            retries=counters["retries"],
            pool_rebuilds=counters["pool_rebuilds"],
        )

    def _drain_window(
        self, pool, task, items, window, sink, timings, failures, counters, progress=None
    ) -> int:
        """Sliding-window submission: bounded in-flight, ordered release.

        At most ``window`` futures are submitted at any moment; as the
        *oldest* completes, its result goes to the sink (preserving input
        order) and the next item is submitted — no barrier, so a slow item
        never idles the other workers beyond the window bound.
        """
        pending: deque = deque()
        index = 0
        for item in items:
            if len(pending) >= window:
                index = self._settle(
                    pending.popleft(), index, sink, timings, failures, counters, progress
                )
            pending.append(pool.submit(task, item))
        while pending:
            index = self._settle(
                pending.popleft(), index, sink, timings, failures, counters, progress
            )
        return index

    @staticmethod
    def _settle(future, index, sink, timings, failures, counters, progress=None) -> int:
        """Release one completed future to the sink (or the failure list)."""
        value, elapsed, attempts = future.result()
        counters["retries"] += attempts - 1
        timings.append(elapsed)
        if isinstance(value, _FailedItem):
            failures.append(
                EngineFailure(index=index, attempts=attempts, kind=value.kind, error=value.error)
            )
        else:
            sink(index, value)
        _notify_item(progress, index + 1, len(failures))
        return index + 1

    def _drain_process(
        self, tasks, window, sink, timings, failures, counters, progress=None
    ) -> int:
        """The process-backend drain: the sliding window plus death recovery.

        A dead worker process poisons every in-flight future
        (``BrokenProcessPool``), with no indication of which item killed it —
        so a death charges one attempt to *every* pending item, the pool is
        rebuilt and the window resubmitted in order.  Items whose budget is
        exhausted either abort the run with an :class:`EngineError` naming
        the in-flight indices (``failure_mode="raise"``) or become
        ``"worker-death"`` failures on the report (``"collect"``).
        """
        context = process_pool_context()
        pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=context)
        # Entries: [item index, task tuple, deaths, future]; future is None
        # once the entry's budget is exhausted in collect mode.
        pending: deque[list] = deque()
        iterator = iter(tasks)
        exhausted = False
        submitted = 0
        index = 0
        try:
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        task = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append([submitted, task, 0, pool.submit(_timed_process_task, task)])
                    submitted += 1
                if not pending:
                    break
                entry = pending[0]
                if entry[3] is None:
                    # Budget exhausted by worker deaths (collect mode).
                    pending.popleft()
                    timings.append(0.0)
                    failures.append(
                        EngineFailure(
                            index=entry[0],
                            attempts=entry[2],
                            kind="worker-death",
                            error="process worker died while running this item",
                        )
                    )
                    index += 1
                    _notify_item(progress, index, len(failures))
                    continue
                try:
                    value, elapsed, attempts = entry[3].result()
                except BrokenProcessPool:
                    pool = self._recover_dead_pool(pool, pending, counters)
                    continue
                pending.popleft()
                counters["retries"] += attempts - 1
                timings.append(elapsed)
                if isinstance(value, _FailedItem):
                    failures.append(
                        EngineFailure(
                            index=entry[0], attempts=attempts, kind=value.kind, error=value.error
                        )
                    )
                else:
                    sink(entry[0], value)
                index += 1
                _notify_item(progress, index, len(failures))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return index

    def _recover_dead_pool(self, pool, pending, counters) -> ProcessPoolExecutor:
        """Replace a broken pool, charging one death to every in-flight item."""
        in_flight = sorted(entry[0] for entry in pending if entry[3] is not None)
        for entry in pending:
            if entry[3] is not None:
                entry[2] += 1
        over_budget = [entry for entry in pending if entry[3] is not None and entry[2] > self.retries]
        if over_budget and self.failure_mode == "raise":
            raise EngineError(
                f"process worker died while running item(s) {in_flight} "
                f"(retry budget {self.retries} exhausted); "
                "rerun with retries > 0 to rebuild the pool, or resume from a "
                "checkpoint to keep completed chunks"
            )
        pool.shutdown(wait=False, cancel_futures=True)
        if self.retry_backoff_s > 0.0:
            time.sleep(self.retry_backoff_s)
        counters["pool_rebuilds"] += 1
        counters["retries"] += len(in_flight)
        pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=process_pool_context())
        for entry in pending:
            if entry[3] is None:
                continue
            if entry[2] > self.retries:
                entry[3] = None  # collect mode: surfaced when it reaches the head
            else:
                entry[3] = pool.submit(_timed_process_task, entry[1])
        return pool

    # -- checkpointed chunk execution ---------------------------------------

    def run_chunks(
        self,
        chunks: Iterable[Iterable[object]],
        kernel: Callable[[object], object],
        sink: Callable[[int, object], None],
        checkpoint=None,
        max_new_chunks: int | None = None,
        process_worker: Callable[[object], object] | None = None,
        process_payload: Callable[[object], object] | None = None,
        progress: Callable[[dict], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> EngineReport:
        """Execute pre-chunked work with optional checkpointed resume.

        Each chunk either *replays* from the checkpoint journal (its results
        stream to the sink exactly as the original execution produced them,
        byte for byte) or *executes* through :meth:`run` and — before its
        results reach the sink — is journaled atomically, so a crash at any
        instant loses at most the chunk in flight.

        Args:
            chunks: iterable of work-item chunks (each an iterable, consumed
                one chunk at a time; indices are global across chunks).
            kernel/process_worker/process_payload: as in :meth:`run`.
            sink: called as ``sink(global_index, result)`` in input order.
            checkpoint: a :class:`~repro.scenario.checkpoint.CheckpointStore`
                (or ``None`` to run without journaling).
            max_new_chunks: execute at most this many non-replayed chunks,
                then stop (``stopped_early`` on the report); replayed chunks
                are free.  ``None`` runs to completion.
            progress: optional observer; receives the per-item events of
                :meth:`run` with *global* item counts, plus one
                ``{"event": "chunk", "chunk": i, "chunks_done": c,
                "items_done": n, "resumed": bool, "failures": k}`` event
                after every completed (executed or replayed) chunk.
            should_stop: optional cancellation hook, polled before each NEW
                chunk is executed.  Returning ``True`` ends the run at a
                chunk boundary with ``stopped_early`` set — completed chunks
                are already journaled, so a checkpointed run resumes exactly
                where the stop landed (graceful-shutdown semantics).

        Returns:
            An :class:`EngineReport` aggregated over all chunks.
        """
        if max_new_chunks is not None and (
            not isinstance(max_new_chunks, int)
            or isinstance(max_new_chunks, bool)
            or max_new_chunks < 1
        ):
            raise ConfigError(
                f"max_new_chunks must be a positive integer, got {max_new_chunks!r}"
            )
        if progress is not None and not callable(progress):
            raise ConfigError(f"progress must be callable, got {progress!r}")
        if should_stop is not None and not callable(should_stop):
            raise ConfigError(f"should_stop must be callable, got {should_stop!r}")
        started = time.perf_counter()
        timings: list[float] = []
        failures: list[EngineFailure] = []
        backend_used: str | None = None
        counters = {"retries": 0, "pool_rebuilds": 0}
        chunks_done = 0
        resumed_chunks = 0
        resumed_items = 0
        executed_chunks = 0
        stopped_early = False
        workers_used = 1
        global_index = 0

        def chunk_event(chunk_index: int, resumed: bool) -> None:
            if progress is not None:
                progress(
                    {
                        "event": "chunk",
                        "chunk": chunk_index,
                        "chunks_done": chunks_done,
                        "items_done": global_index,
                        "resumed": resumed,
                        "failures": len(failures),
                    }
                )

        for chunk_index, chunk in enumerate(chunks):
            chunk_items = list(chunk)
            if checkpoint is not None and checkpoint.has_chunk(chunk_index):
                results, wall_times, chunk_failures = checkpoint.load_chunk(
                    chunk_index, expected_items=len(chunk_items)
                )
                failed = {failure["index"] for failure in chunk_failures}
                for offset, result in enumerate(results):
                    if offset in failed:
                        continue
                    sink(global_index + offset, result)
                timings.extend(wall_times)
                for failure in chunk_failures:
                    failures.append(
                        EngineFailure.from_dict(
                            {**failure, "index": global_index + failure["index"]}
                        )
                    )
                global_index += len(chunk_items)
                resumed_chunks += 1
                resumed_items += len(chunk_items)
                chunks_done += 1
                chunk_event(chunk_index, resumed=True)
                continue
            if max_new_chunks is not None and executed_chunks >= max_new_chunks:
                stopped_early = True
                break
            if should_stop is not None and should_stop():
                stopped_early = True
                break

            buffer: list[object] = [None] * len(chunk_items)

            def buffer_sink(local_index, result, _buffer=buffer):
                _buffer[local_index] = result

            def item_progress(event, _base=global_index, _failed_before=len(failures)):
                if progress is not None:
                    progress(
                        {
                            **event,
                            "items_done": _base + event["items_done"],
                            "failures": _failed_before + event["failures"],
                        }
                    )

            try:
                report = self.run(
                    chunk_items,
                    kernel,
                    buffer_sink,
                    process_worker=process_worker,
                    process_payload=process_payload,
                    progress=item_progress if progress is not None else None,
                )
            except EngineError as error:
                raise EngineError(f"chunk {chunk_index}: {error}") from error
            if checkpoint is not None:
                checkpoint.record_chunk(
                    chunk_index,
                    results=buffer,
                    wall_times_s=list(report.item_wall_times_s),
                    failures=[failure.to_dict() for failure in report.failures],
                )
            failed_local = {failure.index for failure in report.failures}
            for offset, result in enumerate(buffer):
                if offset in failed_local:
                    continue
                sink(global_index + offset, result)
            timings.extend(report.item_wall_times_s)
            for failure in report.failures:
                failures.append(replace(failure, index=global_index + failure.index))
            counters["retries"] += report.retries
            counters["pool_rebuilds"] += report.pool_rebuilds
            if backend_used is None or report.backend != "sequential":
                backend_used = report.backend
                workers_used = max(workers_used, report.workers)
            global_index += len(chunk_items)
            executed_chunks += 1
            chunks_done += 1
            chunk_event(chunk_index, resumed=False)
        return EngineReport(
            backend=backend_used if backend_used is not None else "resumed",
            workers=workers_used,
            items=global_index,
            wall_time_s=time.perf_counter() - started,
            item_wall_times_s=tuple(timings),
            failures=tuple(failures),
            retries=counters["retries"],
            pool_rebuilds=counters["pool_rebuilds"],
            chunks=chunks_done,
            resumed_chunks=resumed_chunks,
            resumed_items=resumed_items,
            stopped_early=stopped_early,
        )
