"""Declarative scenario API: spec → registry → study runner.

This package is the canonical front door of the toolkit.  A
:class:`ScenarioSpec` names one experiment declaratively (architecture,
power database, scavenger + sizing, storage, drive cycle, environment and
workload overrides) through string-keyed component registries; a
:class:`Study` expands a spec plus axis overrides into a scenario grid and
runs any analysis kind over it on the vectorized batch path, returning a
uniform :class:`StudyResult` that exports through
:mod:`repro.reporting.export`.

Quickstart::

    from repro.scenario import ScenarioSpec, Study

    spec = ScenarioSpec.from_dict({
        "architecture": "baseline",
        "scavenger": "piezoelectric",
        "environment": {"temperature_c": 25.0, "speed_kmh": 60.0},
    })
    result = Study(spec, axes={"temperature": [-20.0, 25.0, 85.0]}).run("balance")
    print(result.as_table())
"""

from repro.scenario.registry import (
    ARCHITECTURES,
    DRIVE_CYCLES,
    POWER_DATABASES,
    SCAVENGERS,
    STORAGE_ELEMENTS,
    Registry,
    register_architecture,
    register_drive_cycle,
    register_power_database,
    register_scavenger,
    register_storage,
)
from repro.scenario.checkpoint import CheckpointStore
from repro.scenario.engine import ChunkedEngine, EngineFailure, EngineReport
from repro.scenario.montecarlo import MonteCarloConfig, MonteCarloDraws
from repro.scenario.spec import ComponentRef, ScenarioSpec, load_scenario
from repro.scenario.study import STUDY_KINDS, Study, StudyResult, run_study

__all__ = [
    "ScenarioSpec",
    "ComponentRef",
    "load_scenario",
    "Study",
    "StudyResult",
    "run_study",
    "STUDY_KINDS",
    "CheckpointStore",
    "ChunkedEngine",
    "EngineFailure",
    "EngineReport",
    "MonteCarloConfig",
    "MonteCarloDraws",
    "Registry",
    "ARCHITECTURES",
    "POWER_DATABASES",
    "SCAVENGERS",
    "STORAGE_ELEMENTS",
    "DRIVE_CYCLES",
    "register_architecture",
    "register_power_database",
    "register_scavenger",
    "register_storage",
    "register_drive_cycle",
]
