"""The :class:`Study` runner — grid-expand a scenario and run any analysis kind.

A study is one :class:`~repro.scenario.spec.ScenarioSpec` plus *axis
overrides*: lists of values per grid axis, e.g. ``temperature=[-20, 25, 85]``
and ``architecture=["baseline", "optimized"]``.  The runner expands the cross
product into a scenario grid and executes one analysis kind over every grid
point:

``balance``
    Break-even (minimum activation) speed plus the energy balance at the
    scenario's operating point (the Fig. 2 figures).
``report``
    Average per-wheel-round energy split (dynamic/static), average power and
    the stand-still floor.
``optimize``
    Duty-cycle-driven technique selection and re-estimation (energy before /
    after, saving).
``emulate``
    Long-window emulation over the scenario's drive cycle (operating windows,
    harvested/consumed energy, brown-outs).
``explore``
    Design-space snapshot: break-even speed and the 60 km/h energy snapshot,
    matching :mod:`repro.optimization.exploration`.
``montecarlo``
    Seeded Monte-Carlo workload sweep: N (speed, temperature, activity,
    phase-pattern) samples around the scenario's operating point, evaluated
    through the workload-vectorized
    :meth:`~repro.core.evaluator.EnergyEvaluator.schedule_energy_sweep`
    (see :mod:`repro.scenario.montecarlo`).

Grid points that share an architecture, workload and power database also
share one :class:`~repro.core.evaluator.EnergyEvaluator` — and therefore one
compiled power table — so a temperature sweep over the PR-1 batch path pays
the database re-targeting and table compilation once.  The sharing is
observable through ``StudyResult.metadata['evaluator_builds']`` /
``['evaluator_cache_hits']``, which the regression tests pin down.

``Study.run(workers=N)`` delegates the scheduling to the shared
:class:`~repro.scenario.engine.ChunkedEngine` (the same engine the fleet
runner rides): grid points stream through a chunked thread pool — the
evaluator cache is lock-protected, random streams are derived per scenario
(never from execution order), and rows keep the sequential order — so a
parallel run returns rows identical, order and values, to the sequential
one.  ``backend="process"`` swaps the thread pool for a process pool: each
grid point's spec travels to the worker as its JSON-round-trippable
document and is rebuilt there, which sidesteps the GIL for CPU-bound kinds
(``optimize``, ``emulate``) at the cost of per-worker evaluator builds.
Per-run wall time and per-row timings land in
``StudyResult.metadata['wall_time_s']`` / ``['row_wall_times_s']`` (and the
``backend``) so performance regressions are observable from the result
alone.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.backend import resolve_backend
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.emulator import NodeEmulator
from repro.errors import ConfigError
from repro.optimization.apply import apply_assignments
from repro.optimization.selection import select_techniques
from repro.reporting.export import rows_to_csv, rows_to_json
from repro.reporting.tables import render_table
from repro.scenario.engine import ChunkedEngine
from repro.scenario.montecarlo import MonteCarloConfig, summarize_energies
from repro.scenario.spec import ComponentRef, ScenarioSpec

#: Analysis kinds the runner understands.
STUDY_KINDS = ("balance", "report", "optimize", "emulate", "explore", "montecarlo")

#: Kinds whose rows ARE joule figures: their contract is float64
#: bit-identity with the scalar reference, so reduced-precision array
#: backends are refused for them (see :meth:`Study.run`).
_PER_JOULE_KINDS = frozenset({"balance", "report"})

#: Default speed grid of the balance/explore kinds (km/h), Fig. 2 range.
DEFAULT_BREAK_EVEN_RANGE = (5.0, 250.0)


def _axis_display(value: object) -> object:
    """How an axis value appears in result rows (components by their name)."""
    if isinstance(value, ComponentRef):
        return value.describe()
    return value


@dataclass(frozen=True)
class StudyResult:
    """Uniform result of one study run: per-scenario rows plus metadata.

    Attributes:
        kind: the analysis kind that produced the rows.
        axes: the grid-axis names, in expansion order.
        rows: one mapping per grid point; every row shares the same columns
            (scenario label, axis values, then the kind's figures), so the
            whole result exports directly through
            :mod:`repro.reporting.export`.
        metadata: run bookkeeping — grid shape, evaluator build/cache-hit
            counters, the base scenario document.
    """

    kind: str
    axes: tuple[str, ...]
    rows: tuple[Mapping[str, object], ...]
    metadata: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def as_rows(self) -> list[dict[str, object]]:
        """The rows as plain dicts (for tables and exports)."""
        return [dict(row) for row in self.rows]

    def column(self, name: str) -> list[object]:
        """One column across every row."""
        if self.rows and name not in self.rows[0]:
            raise ConfigError(
                f"study result has no column {name!r}; "
                f"columns: {list(self.rows[0])}"
            )
        return [row[name] for row in self.rows]

    def as_table(self, title: str | None = None, float_digits: int = 2) -> str:
        """Plain-text table of the rows (see :func:`render_table`)."""
        return render_table(
            self.as_rows(),
            title=title or f"Study — {self.kind}",
            float_digits=float_digits,
        )

    def to_csv(self, path: str | Path) -> Path:
        """Export the rows as CSV through :mod:`repro.reporting.export`."""
        return rows_to_csv(self.as_rows(), path)

    def to_json(self, path: str | Path) -> Path:
        """Export the rows as JSON through :mod:`repro.reporting.export`."""
        return rows_to_json(self.as_rows(), path)


class Study:
    """Expands a spec plus axis overrides into a grid and runs an analysis.

    Args:
        spec: the base scenario every grid point derives from.
        axes: mapping of axis name (see
            :meth:`ScenarioSpec.axis_names`) to the list of values to sweep.
            Omitted or empty means a single-scenario study.

    Example::

        study = Study(spec, axes={
            "temperature": [-20.0, 25.0, 85.0],
            "architecture": ["baseline", "optimized"],
        })
        result = study.run("balance")
        result.to_csv("grid.csv")
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        axes: Mapping[str, Sequence[object]] | None = None,
        montecarlo: MonteCarloConfig | None = None,
        evaluator_cache=None,
    ) -> None:
        if not isinstance(spec, ScenarioSpec):
            raise ConfigError(f"a study needs a ScenarioSpec, got {type(spec).__name__}")
        if evaluator_cache is not None and not callable(
            getattr(evaluator_cache, "get", None)
        ):
            raise ConfigError(
                "evaluator_cache must expose get(key, builder) "
                f"(e.g. repro.serve.EvaluatorLRU), got {type(evaluator_cache).__name__}"
            )
        if montecarlo is not None and not isinstance(montecarlo, MonteCarloConfig):
            raise ConfigError(
                f"montecarlo must be a MonteCarloConfig, got {type(montecarlo).__name__}"
            )
        self.spec = spec
        self.montecarlo = montecarlo or MonteCarloConfig()
        normalized: dict[str, list[object]] = {}
        canonical_fields: dict[str, str] = {}
        for axis, values in (axes or {}).items():
            if axis not in ScenarioSpec.axis_names():
                raise ConfigError(
                    f"unknown scenario axis {axis!r}; "
                    f"known axes: {ScenarioSpec.axis_names()}"
                )
            # Aliases resolve to one spec field; two axes driving the same
            # field ("temperature" + "temperature_c") would silently let the
            # later override win, so reject the collision up front.
            field = ScenarioSpec._AXIS_ALIASES[axis]
            if field in canonical_fields:
                raise ConfigError(
                    f"axes {canonical_fields[field]!r} and {axis!r} both drive "
                    f"the scenario field {field!r}; give only one of them"
                )
            canonical_fields[field] = axis
            values = list(values)
            if not values:
                raise ConfigError(f"axis {axis!r} needs at least one value")
            normalized[axis] = values
        self.axes = normalized
        # (architecture ref, workload overrides, database ref) -> shared
        # (node, database, evaluator); grid points differing only in
        # environment or scavenger/storage reuse the compiled table.  The
        # lock makes lookups/builds single-flight when run(workers=N)
        # executes grid points on a thread pool.  An external
        # ``evaluator_cache`` (the serving layer's bounded LRU) replaces the
        # per-study dict so compiled tables survive across studies; the
        # per-run builds/hits counters keep their meaning either way.
        self._evaluators: dict[str, tuple] = {}
        self._external_cache = evaluator_cache
        self._evaluator_lock = threading.Lock()
        self.evaluator_builds = 0
        self.evaluator_cache_hits = 0

    # -- grid expansion -----------------------------------------------------

    def scenarios(self) -> list[tuple[dict[str, object], ScenarioSpec]]:
        """The expanded grid: ``(axis_values, spec)`` per grid point."""
        if not self.axes:
            return [({}, self.spec)]
        names = list(self.axes)
        grid: list[tuple[dict[str, object], ScenarioSpec]] = []
        for combination in itertools.product(*(self.axes[name] for name in names)):
            overrides = dict(zip(names, combination))
            spec = self.spec
            for axis, value in overrides.items():
                spec = spec.with_axis(axis, value)
            grid.append((overrides, spec))
        return grid

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    # -- shared evaluator cache ---------------------------------------------

    def _evaluator_for(self, spec: ScenarioSpec):
        """The shared (node, database, evaluator) triple of one grid point."""
        key = spec.evaluator_group_key()
        if self._external_cache is not None:
            built: list[bool] = []

            def builder():
                built.append(True)
                return spec.build_components()

            components = self._external_cache.get(key, builder)
            with self._evaluator_lock:
                if built:
                    self.evaluator_builds += 1
                else:
                    self.evaluator_cache_hits += 1
            return components
        with self._evaluator_lock:
            cached = self._evaluators.get(key)
            if cached is not None:
                self.evaluator_cache_hits += 1
                return cached
            self.evaluator_builds += 1
            self._evaluators[key] = spec.build_components()
            return self._evaluators[key]

    # -- execution ----------------------------------------------------------

    def run(
        self,
        kind: str = "balance",
        workers: int | None = None,
        backend: str = "thread",
        progress=None,
    ) -> StudyResult:
        """Execute ``kind`` over every grid point and collect uniform rows.

        Args:
            kind: one of :data:`STUDY_KINDS`.
            workers: optional pool width.  ``None`` or 1 runs the grid
                sequentially; larger values execute grid points concurrently
                while preserving the sequential row order and values exactly
                (evaluator sharing is lock-protected and every random stream
                is derived per scenario, never from execution order).
            backend: ``"thread"`` (default) shares one process and the
                evaluator cache across workers — right when numpy releases
                the GIL on large arrays.  ``"process"`` ships each grid
                point's spec document to a worker process (riding on the
                JSON round-trip) and rebuilds the components there — right
                for CPU-bound kinds (``optimize``, ``emulate``) whose
                per-row Python work serializes under the GIL.  Rows are
                identical either way; with the process backend the evaluator
                builds happen in the workers, so the parent's
                ``evaluator_builds``/``evaluator_cache_hits`` counters stay
                at zero.
            progress: optional engine observer (see
                :meth:`~repro.scenario.engine.ChunkedEngine.run`); the
                serving layer uses it for live per-row job progress.
        """
        if kind not in STUDY_KINDS:
            raise ConfigError(f"unknown analysis kind {kind!r}; available: {list(STUDY_KINDS)}")
        if workers is None:
            workers = 1
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ConfigError(f"workers must be a positive integer, got {workers!r}")
        if backend not in ("thread", "process"):
            raise ConfigError(
                f"unknown study backend {backend!r}; available: ['thread', 'process']"
            )
        # Per-joule kinds are a float64 bit-identity contract; a
        # reduced-precision array backend (the float32 policy) is refused
        # here rather than silently degrading the reported joule figures.
        array_backend = resolve_backend(None)
        if kind in _PER_JOULE_KINDS and array_backend.precision != "float64":
            raise ConfigError(
                f"array backend {array_backend.name!r} ({array_backend.precision}) "
                f"cannot run the per-joule {kind!r} kind; per-joule figures "
                "require a float64 backend (numpy)"
            )
        runner = getattr(self, f"_run_{kind}")
        builds_before = self.evaluator_builds
        hits_before = self.evaluator_cache_hits
        grid = self.scenarios()

        def kernel(item: tuple[dict[str, object], ScenarioSpec]) -> dict[str, object]:
            overrides, spec = item
            row: dict[str, object] = {"scenario": spec.name}
            for axis in self.axes:
                row[axis] = _axis_display(overrides[axis])
            row.update(runner(spec))
            return row

        def payload(item: tuple[dict[str, object], ScenarioSpec]):
            # Ship each grid point as its JSON-round-trippable document plus
            # the pre-rendered axis cells: the worker rebuilds the spec
            # through the registries and assembles the *complete* row, so
            # ordering and key order match the sequential run exactly.
            overrides, spec = item
            cells = tuple((axis, _axis_display(overrides[axis])) for axis in self.axes)
            return (spec.to_dict(), cells, kind, self.montecarlo)

        # The scheduling/worker/timing machinery is the shared chunked
        # engine; the study only supplies the row kernels and collects the
        # streamed rows (grid points sharing an evaluator warm each other's
        # caches — the lock-protected cache needs no other coordination).
        rows: list[dict[str, object]] = []
        engine = ChunkedEngine(workers=workers, backend=backend)
        report = engine.run(
            grid,
            kernel,
            lambda _index, row: rows.append(row),
            process_worker=_process_grid_point,
            process_payload=payload,
            progress=progress,
        )
        metadata = {
            "kind": kind,
            "grid_points": len(rows),
            "axes": {name: [_axis_display(v) for v in vals] for name, vals in self.axes.items()},
            # Per-run deltas: the Study-level counters keep accumulating so a
            # second run() on a warm study reports its own builds/hits.
            "evaluator_builds": self.evaluator_builds - builds_before,
            "evaluator_cache_hits": self.evaluator_cache_hits - hits_before,
            "base_scenario": self.spec.to_dict(),
            # Timing bookkeeping: total wall time of this run plus each grid
            # point's own wall time (sequential row order), so perf
            # regressions are observable from the StudyResult alone.
            "workers": workers,
            "backend": backend,
            "wall_time_s": report.wall_time_s,
            "row_wall_times_s": report.item_wall_times_s,
        }
        return StudyResult(kind=kind, axes=tuple(self.axes), rows=tuple(rows), metadata=metadata)

    # -- per-kind row builders (thin wrappers over the module-level kernels) --

    def _run_balance(self, spec: ScenarioSpec) -> dict[str, object]:
        node, database, evaluator = self._evaluator_for(spec)
        return _balance_row(spec, node, database, evaluator)

    def _run_report(self, spec: ScenarioSpec) -> dict[str, object]:
        _node, _database, evaluator = self._evaluator_for(spec)
        return _report_row(spec, evaluator)

    def _run_optimize(self, spec: ScenarioSpec) -> dict[str, object]:
        node, database, evaluator = self._evaluator_for(spec)
        return _optimize_row(spec, node, database, evaluator)

    def _run_emulate(self, spec: ScenarioSpec) -> dict[str, object]:
        node, database, evaluator = self._evaluator_for(spec)
        return _emulate_row(spec, node, database, evaluator)

    def _run_montecarlo(self, spec: ScenarioSpec) -> dict[str, object]:
        node, _database, evaluator = self._evaluator_for(spec)
        return _montecarlo_row(spec, node, evaluator, self.montecarlo)

    def _run_explore(self, spec: ScenarioSpec) -> dict[str, object]:
        node, database, evaluator = self._evaluator_for(spec)
        return _explore_row(spec, node, database, evaluator)


# ---------------------------------------------------------------------------
# Per-kind row kernels
#
# Module-level (picklable, self-contained) so the process-pool backend can
# execute them in worker processes against a spec rebuilt from its JSON
# document; the in-process runners above call the same functions with the
# study's shared evaluator.
# ---------------------------------------------------------------------------


def _balance_row(spec, node, database, evaluator) -> dict[str, object]:
    analysis = EnergyBalanceAnalysis(
        node, database, spec.build_scavenger(), evaluator=evaluator
    )
    point = spec.operating_point()

    def factory(speed: float):
        return point.at_speed(speed)

    low, high = DEFAULT_BREAK_EVEN_RANGE
    break_even = analysis.break_even_speed_kmh(
        low_kmh=low, high_kmh=high, point_factory=factory
    )
    required = float(analysis.required_energy_sweep([point])[0])
    generated = analysis.generated_energy_j(point.speed_kmh)
    return {
        "break_even_kmh": break_even if break_even is not None else float("nan"),
        "required_uj_per_rev": required * 1e6,
        "generated_uj_per_rev": generated * 1e6,
        "margin_uj_per_rev": (generated - required) * 1e6,
        "surplus": generated >= required,
    }


def _report_row(spec, evaluator) -> dict[str, object]:
    point = spec.operating_point()
    dynamic, static, period = evaluator.average_components_sweep([point])
    standstill = evaluator.standstill_power_sweep([point.at_speed(0.0)])
    total = float(dynamic[0] + static[0])
    return {
        "energy_per_rev_uj": total * 1e6,
        "dynamic_uj": float(dynamic[0]) * 1e6,
        "static_uj": float(static[0]) * 1e6,
        "average_power_uw": total / float(period[0]) * 1e6,
        "standstill_uw": float(standstill[0]) * 1e6,
    }


def _optimize_row(spec, node, database, evaluator) -> dict[str, object]:
    point = spec.operating_point()
    assignments = select_techniques(evaluator.duty_cycles(point), database=database)
    outcome = apply_assignments(
        node, database, assignments, point=point, evaluator=evaluator
    )
    return {
        "energy_before_uj": outcome.energy_before_j * 1e6,
        "energy_after_uj": outcome.energy_after_j * 1e6,
        "saving_pct": outcome.saving_fraction * 100.0,
        "techniques": len(outcome.assignments),
    }


def _emulate_row(spec, node, database, evaluator) -> dict[str, object]:
    cycle = spec.build_drive_cycle()
    if cycle is None:
        raise ConfigError("the 'emulate' kind needs the scenario to name a drive_cycle")
    storage = spec.build_storage()
    if storage is None:
        raise ConfigError("the 'emulate' kind needs the scenario to name a storage")
    emulator = NodeEmulator(
        node,
        database,
        spec.build_scavenger(),
        storage,
        base_point=spec.operating_point(),
        evaluator=evaluator,
    )
    result = emulator.emulate(cycle)
    # "cycle_name", not "cycle": the latter is a grid-axis alias and the
    # axis column must keep the swept value, not the cycle's own label.
    return {"cycle_name": cycle.name, **result.summary()}


def _montecarlo_row(spec, node, evaluator, config: MonteCarloConfig) -> dict[str, object]:
    # The stream is a pure function of (config, scenario document):
    # identical draws whether the grid runs sequentially, on a thread pool
    # or in worker processes.
    rng = config.rng_for(spec.to_json())
    draws = config.draw(node, spec.operating_point(), rng)
    energies = evaluator.schedule_energy_sweep(draws.conditions, draws.patterns)
    periods = node.wheel.revolution_periods_s(draws.conditions.speed_kmh)
    row = summarize_energies(energies, periods, len(draws))
    row["seed"] = config.seed
    return row


def _explore_row(spec, node, database, evaluator) -> dict[str, object]:
    analysis = EnergyBalanceAnalysis(
        node, database, spec.build_scavenger(), evaluator=evaluator
    )
    point = spec.operating_point()

    def factory(speed: float):
        return point.at_speed(speed)

    low, high = DEFAULT_BREAK_EVEN_RANGE
    break_even = analysis.break_even_speed_kmh(
        low_kmh=low, high_kmh=high, point_factory=factory
    )
    snapshot = factory(60.0)
    required_60 = float(analysis.required_energy_sweep([snapshot])[0])
    return {
        "break_even_kmh": break_even if break_even is not None else float("nan"),
        "required_uj_per_rev_60kmh": required_60 * 1e6,
        "generated_uj_per_rev_60kmh": analysis.generated_energy_j(60.0) * 1e6,
        "activates": break_even is not None,
    }


#: Per-worker-process evaluator memo of the process backend, keyed like
#: ``Study._evaluator_for``.  Forked workers start with the parent's (empty)
#: dict and warm it independently, so a grid sharing one architecture pays
#: the database re-targeting and table compilation once per *worker*, not
#: once per row.
_WORKER_EVALUATORS: dict[str, tuple] = {}


def _worker_components(spec: ScenarioSpec):
    """The (node, database, evaluator) triple of one worker-side grid point."""
    key = spec.evaluator_group_key()
    cached = _WORKER_EVALUATORS.get(key)
    if cached is None:
        cached = spec.build_components()
        _WORKER_EVALUATORS[key] = cached
    return cached


def _process_grid_point(
    payload: tuple[object, tuple, str, MonteCarloConfig],
) -> dict[str, object]:
    """Worker entry of the process backend: one grid point, self-contained.

    Receives the grid point's scenario as its JSON-round-trippable document
    plus the pre-rendered axis cells, rebuilds the spec through the
    registries (workers inherit user registrations via the fork context) and
    assembles the complete row with a per-worker shared evaluator.  Every
    kind is a pure function of the spec, so the row is identical — values
    and key order — to the sequential one.  The engine times the call inside
    the worker.
    """
    document, axis_cells, kind, montecarlo = payload
    spec = ScenarioSpec.from_dict(document)
    node, database, evaluator = _worker_components(spec)
    row: dict[str, object] = {"scenario": spec.name}
    for axis, value in axis_cells:
        row[axis] = value
    if kind == "balance":
        row.update(_balance_row(spec, node, database, evaluator))
    elif kind == "report":
        row.update(_report_row(spec, evaluator))
    elif kind == "optimize":
        row.update(_optimize_row(spec, node, database, evaluator))
    elif kind == "emulate":
        row.update(_emulate_row(spec, node, database, evaluator))
    elif kind == "montecarlo":
        row.update(_montecarlo_row(spec, node, evaluator, montecarlo))
    elif kind == "explore":
        row.update(_explore_row(spec, node, database, evaluator))
    else:  # pragma: no cover - validated before dispatch
        raise ConfigError(f"unknown analysis kind {kind!r}")
    return row


def run_study(
    spec: ScenarioSpec,
    axes: Mapping[str, Sequence[object]] | None = None,
    kind: str = "balance",
    workers: int | None = None,
    backend: str = "thread",
    montecarlo: MonteCarloConfig | None = None,
) -> StudyResult:
    """One-call convenience wrapper: build a :class:`Study` and run it."""
    return Study(spec, axes=axes, montecarlo=montecarlo).run(
        kind, workers=workers, backend=backend
    )
