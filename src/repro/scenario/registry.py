"""String-keyed component registries backing the declarative scenario API.

A :class:`~repro.scenario.spec.ScenarioSpec` references every component of an
experiment — architecture, power database, scavenger, storage element, drive
cycle — by *name plus parameters* instead of holding the objects themselves,
so scenarios can be serialized, diffed and grid-swept.  The registries in
this module map those names to factories.

Each registry is seeded from the existing catalogues
(:func:`repro.blocks.architectures.architecture_catalogue`, the
characterization libraries of :mod:`repro.power.library`, the scavenger and
storage models, the drive-cycle builders) and stays user-extensible through a
``register`` decorator::

    from repro.scenario import register_architecture

    @register_architecture("my-node")
    def my_node(tx_interval_revs: int = 8):
        return baseline_node().with_radio(
            RadioConfig(tx_interval_revs=tx_interval_revs)
        )

After which ``{"architecture": {"name": "my-node", "params": {...}}}`` is a
valid scenario fragment and ``my-node`` appears in ``tpms-energy scenarios``.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterator, TypeVar

from repro.blocks.architectures import baseline_node, legacy_tpms_node, optimized_node
from repro.errors import ConfigError
from repro.power.library import (
    high_performance_process_database,
    low_power_process_database,
    reference_power_database,
)
from repro.scavenger.electromagnetic import ElectromagneticScavenger
from repro.scavenger.electrostatic import ElectrostaticScavenger
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.storage import supercapacitor, thin_film_battery
from repro.vehicle.drive_cycle import (
    constant_cruise,
    highway_cycle,
    nedc_like_cycle,
    ramp_cycle,
    urban_cycle,
)

_T = TypeVar("_T", bound=Callable[..., object])


class Registry:
    """A named mapping from component names to factory callables.

    Factories are invoked with the scenario's keyword parameters; a factory
    that rejects its parameters (``TypeError``) is reported as a
    :class:`~repro.errors.ConfigError` naming the component, so malformed
    scenario documents fail with a readable message instead of a traceback
    from deep inside a constructor.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., object]] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, factory: Callable[..., object] | None = None):
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering an existing name raises :class:`ConfigError`; use
        :meth:`unregister` first to replace a seeded component.
        """
        if not name or not isinstance(name, str):
            raise ConfigError(f"{self.kind} name must be a non-empty string")

        def _store(target: _T) -> _T:
            if name in self._factories:
                raise ConfigError(
                    f"{self.kind} {name!r} is already registered; "
                    "unregister it first to replace it"
                )
            self._factories[name] = target
            return target

        if factory is None:
            return _store
        return _store(factory)

    def unregister(self, name: str) -> None:
        """Remove a registered component (no-op safety net not provided)."""
        if name not in self._factories:
            raise ConfigError(f"no {self.kind} named {name!r} to unregister")
        del self._factories[name]

    # -- lookup -------------------------------------------------------------

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def factory(self, name: str) -> Callable[..., object]:
        """The factory registered under ``name``."""
        self.validate(name)
        return self._factories[name]

    def validate(self, name: str) -> None:
        """Raise a helpful :class:`ConfigError` when ``name`` is unknown."""
        if name not in self._factories:
            raise ConfigError(f"unknown {self.kind} {name!r}; available: {self.names()}")

    def create(self, name: str, **params: object) -> object:
        """Instantiate the component ``name`` with keyword ``params``.

        Parameters are validated against the factory signature *before* the
        call, so a malformed scenario document becomes a one-line
        :class:`ConfigError` while a genuine bug inside a factory still
        surfaces as its own traceback.
        """
        factory = self.factory(name)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # pragma: no cover - C callables
            signature = None
        if signature is not None:
            try:
                signature.bind(**params)
            except TypeError as exc:
                raise ConfigError(
                    f"invalid parameters {sorted(params)} for {self.kind} "
                    f"{name!r}: {exc}"
                ) from exc
        return factory(**params)


#: Sensor Node architectures (see :mod:`repro.blocks.architectures`).
ARCHITECTURES = Registry("architecture")

#: Power characterization libraries (see :mod:`repro.power.library`).
POWER_DATABASES = Registry("power database")

#: Energy-scavenger models (see :mod:`repro.scavenger`).
SCAVENGERS = Registry("scavenger")

#: Storage elements (see :mod:`repro.scavenger.storage`).
STORAGE_ELEMENTS = Registry("storage element")

#: Drive cycles (see :mod:`repro.vehicle.drive_cycle`).
DRIVE_CYCLES = Registry("drive cycle")


def register_architecture(name: str, factory: Callable[..., object] | None = None):
    """Register a Sensor Node architecture factory (decorator-friendly)."""
    return ARCHITECTURES.register(name, factory)


def register_power_database(name: str, factory: Callable[..., object] | None = None):
    """Register a power-database factory (decorator-friendly)."""
    return POWER_DATABASES.register(name, factory)


def register_scavenger(name: str, factory: Callable[..., object] | None = None):
    """Register an energy-scavenger factory (decorator-friendly)."""
    return SCAVENGERS.register(name, factory)


def register_storage(name: str, factory: Callable[..., object] | None = None):
    """Register a storage-element factory (decorator-friendly)."""
    return STORAGE_ELEMENTS.register(name, factory)


def register_drive_cycle(name: str, factory: Callable[..., object] | None = None):
    """Register a drive-cycle factory (decorator-friendly)."""
    return DRIVE_CYCLES.register(name, factory)


# ---------------------------------------------------------------------------
# Seed the registries from the existing catalogues.
# ---------------------------------------------------------------------------

ARCHITECTURES.register("baseline", baseline_node)
ARCHITECTURES.register("optimized", optimized_node)
ARCHITECTURES.register("legacy-tpms", legacy_tpms_node)

POWER_DATABASES.register("reference", reference_power_database)
POWER_DATABASES.register("low-power", low_power_process_database)
POWER_DATABASES.register("high-performance", high_performance_process_database)

SCAVENGERS.register("piezoelectric", PiezoelectricScavenger)
SCAVENGERS.register("electromagnetic", ElectromagneticScavenger)
SCAVENGERS.register("electrostatic", ElectrostaticScavenger)

STORAGE_ELEMENTS.register("supercapacitor", supercapacitor)
STORAGE_ELEMENTS.register("thin-film-battery", thin_film_battery)

DRIVE_CYCLES.register("urban", urban_cycle)
DRIVE_CYCLES.register("nedc", nedc_like_cycle)
DRIVE_CYCLES.register("highway", highway_cycle)
DRIVE_CYCLES.register("constant", constant_cruise)
DRIVE_CYCLES.register("ramp", ramp_cycle)
