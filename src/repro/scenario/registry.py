"""String-keyed component registries backing the declarative scenario API.

A :class:`~repro.scenario.spec.ScenarioSpec` references every component of an
experiment — architecture, power database, scavenger, storage element, drive
cycle — by *name plus parameters* instead of holding the objects themselves,
so scenarios can be serialized, diffed and grid-swept.  The registries in
this module map those names to factories.

Each registry is seeded from the existing catalogues
(:func:`repro.blocks.architectures.architecture_catalogue`, the
characterization libraries of :mod:`repro.power.library`, the scavenger and
storage models, the drive-cycle builders) and stays user-extensible through a
``register`` decorator::

    from repro.scenario import register_architecture

    @register_architecture("my-node")
    def my_node(tx_interval_revs: int = 8):
        return baseline_node().with_radio(
            RadioConfig(tx_interval_revs=tx_interval_revs)
        )

After which ``{"architecture": {"name": "my-node", "params": {...}}}`` is a
valid scenario fragment and ``my-node`` appears in ``tpms-energy scenarios``.
"""

from __future__ import annotations

from typing import Callable

from repro.blocks.architectures import baseline_node, legacy_tpms_node, optimized_node
from repro.registry import Registry
from repro.power.library import (
    high_performance_process_database,
    low_power_process_database,
    reference_power_database,
)
from repro.scavenger.electromagnetic import ElectromagneticScavenger
from repro.scavenger.electrostatic import ElectrostaticScavenger
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.storage import supercapacitor, thin_film_battery
from repro.vehicle.drive_cycle import (
    constant_cruise,
    highway_cycle,
    nedc_like_cycle,
    ramp_cycle,
    urban_cycle,
)

#: Sensor Node architectures (see :mod:`repro.blocks.architectures`).
ARCHITECTURES = Registry("architecture")

#: Power characterization libraries (see :mod:`repro.power.library`).
POWER_DATABASES = Registry("power database")

#: Energy-scavenger models (see :mod:`repro.scavenger`).
SCAVENGERS = Registry("scavenger")

#: Storage elements (see :mod:`repro.scavenger.storage`).
STORAGE_ELEMENTS = Registry("storage element")

#: Drive cycles (see :mod:`repro.vehicle.drive_cycle`).
DRIVE_CYCLES = Registry("drive cycle")


def register_architecture(name: str, factory: Callable[..., object] | None = None):
    """Register a Sensor Node architecture factory (decorator-friendly)."""
    return ARCHITECTURES.register(name, factory)


def register_power_database(name: str, factory: Callable[..., object] | None = None):
    """Register a power-database factory (decorator-friendly)."""
    return POWER_DATABASES.register(name, factory)


def register_scavenger(name: str, factory: Callable[..., object] | None = None):
    """Register an energy-scavenger factory (decorator-friendly)."""
    return SCAVENGERS.register(name, factory)


def register_storage(name: str, factory: Callable[..., object] | None = None):
    """Register a storage-element factory (decorator-friendly)."""
    return STORAGE_ELEMENTS.register(name, factory)


def register_drive_cycle(name: str, factory: Callable[..., object] | None = None):
    """Register a drive-cycle factory (decorator-friendly)."""
    return DRIVE_CYCLES.register(name, factory)


# ---------------------------------------------------------------------------
# Seed the registries from the existing catalogues.
# ---------------------------------------------------------------------------

ARCHITECTURES.register("baseline", baseline_node)
ARCHITECTURES.register("optimized", optimized_node)
ARCHITECTURES.register("legacy-tpms", legacy_tpms_node)

POWER_DATABASES.register("reference", reference_power_database)
POWER_DATABASES.register("low-power", low_power_process_database)
POWER_DATABASES.register("high-performance", high_performance_process_database)

SCAVENGERS.register("piezoelectric", PiezoelectricScavenger)
SCAVENGERS.register("electromagnetic", ElectromagneticScavenger)
SCAVENGERS.register("electrostatic", ElectrostaticScavenger)

STORAGE_ELEMENTS.register("supercapacitor", supercapacitor)
STORAGE_ELEMENTS.register("thin-film-battery", thin_film_battery)

DRIVE_CYCLES.register("urban", urban_cycle)
DRIVE_CYCLES.register("nedc", nedc_like_cycle)
DRIVE_CYCLES.register("highway", highway_cycle)
DRIVE_CYCLES.register("constant", constant_cruise)
DRIVE_CYCLES.register("ramp", ramp_cycle)
