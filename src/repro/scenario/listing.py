"""Registry listings — one source for the CLI tables and the HTTP API.

``tpms-energy scenarios`` / ``tpms-energy cycles`` (plain tables or
``--json``) and the serving layer's ``GET /scenarios`` endpoint all render
the same underlying rows, built here.  Keeping the row builders in one
place means a component registered at runtime (via
:mod:`repro.scenario.registry`) shows up identically everywhere.
"""

from __future__ import annotations

import inspect

from repro.errors import ConfigError
from repro.scenario.registry import (
    ARCHITECTURES,
    DRIVE_CYCLES,
    POWER_DATABASES,
    SCAVENGERS,
    STORAGE_ELEMENTS,
)
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import STUDY_KINDS

__all__ = ["component_rows", "cycle_rows", "scenario_listing"]


def component_rows() -> list[dict[str, object]]:
    """One row per registered component, across every registry."""
    registries = (
        ("architecture", ARCHITECTURES),
        ("power_database", POWER_DATABASES),
        ("scavenger", SCAVENGERS),
        ("storage", STORAGE_ELEMENTS),
        ("drive_cycle", DRIVE_CYCLES),
    )
    rows = []
    for kind, registry in registries:
        for name in registry.names():
            parameters = inspect.signature(registry.factory(name)).parameters
            rows.append(
                {
                    "component": kind,
                    "name": name,
                    "params": ", ".join(parameters) if parameters else "-",
                }
            )
    return rows


def cycle_rows() -> list[dict[str, object]]:
    """One row per registered drive cycle (parametric ones unmaterialized)."""
    rows = []
    for name in DRIVE_CYCLES.names():
        try:
            cycle = DRIVE_CYCLES.create(name)
        except ConfigError:
            parameters = inspect.signature(DRIVE_CYCLES.factory(name)).parameters
            rows.append(
                {
                    "cycle": name,
                    "duration_s": "-",
                    "mean_kmh": "-",
                    "max_kmh": "-",
                    "note": f"parametric ({', '.join(parameters)})",
                }
            )
            continue
        rows.append(
            {
                "cycle": name,
                "duration_s": cycle.duration_s,
                "mean_kmh": cycle.mean_speed_kmh(),
                "max_kmh": cycle.max_speed_kmh(),
                "note": cycle.name,
            }
        )
    return rows


def scenario_listing() -> dict[str, object]:
    """The complete machine-readable listing (``GET /scenarios``, ``--json``).

    Components, drive cycles, the grid axes studies can sweep, and the
    analysis kinds — everything a client needs to compose a valid request
    document without reading the server's source.
    """
    return {
        "components": component_rows(),
        "cycles": cycle_rows(),
        "axes": ScenarioSpec.axis_names(),
        "study_kinds": list(STUDY_KINDS),
    }
