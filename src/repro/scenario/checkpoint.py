"""Crash-safe chunk journaling under the chunked execution engine.

A :class:`CheckpointStore` turns a directory into a resumable journal of
completed work chunks.  The layout is deliberately boring::

    checkpoint-dir/
        manifest.json        # run key digest + per-chunk digests (atomic)
        chunk-00000.json     # chunk 0: results, wall times, failures
        chunk-00001.json
        ...

Two invariants make it crash-safe:

* **Write-then-rename, chunk before manifest.**  Every file is written to a
  temporary sibling, flushed, fsync'd and atomically renamed into place
  (followed by a best-effort directory fsync), and a chunk's journal file
  lands *before* the manifest entry that blesses it.  A crash at any instant
  therefore leaves either a fully valid journal or an orphaned chunk file
  the manifest does not know about (which is simply recomputed) — never a
  half-written manifest.
* **Everything is digest-checked.**  The manifest is keyed by a SHA-256 of
  the run key (spec document + seed + execution parameters), so a directory
  can never silently resume a *different* run; each chunk entry records the
  SHA-256 of its journal file, so truncation or tampering is caught at load
  with a one-line actionable error instead of feeding corrupt rows into an
  aggregate.

Results are journaled as strict-key JSON with ``allow_nan=True``: Python's
``repr``-based float serialization round-trips every finite float exactly
and NaN survives as a literal, which is what makes a resumed run's rows
byte-identical to an uninterrupted run's.

Foreign-replica handoff: several *processes* — serve replicas sharing a
checkpoint root, a CLI resume racing a still-draining server — may hold
stores on the same directory for the same run key.  Chunk files are
already safe (atomic, digest-named per index), but the manifest is a
read-modify-write, so every manifest load/save happens under a
cross-process advisory lock (:class:`~repro.fslock.FileLock` on
``manifest.lock``) and :meth:`record_chunk` merges the on-disk chunk
table before writing: a chunk journaled by another replica is adopted,
never clobbered.  A replica resuming a dead replica's job simply opens
the directory with the same key and sees everything the manifest blessed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Mapping

from repro.digest import canonical_digest
from repro.errors import CheckpointError
from repro.fslock import FileLock

#: Manifest schema version; bumped on incompatible layout changes.
CHECKPOINT_VERSION = 1

_MANIFEST = "manifest.json"


def _key_digest(key: Mapping[str, object]) -> str:
    """Canonical SHA-256 of a run key document (see :mod:`repro.digest`)."""
    try:
        return canonical_digest(key)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint key is not canonical JSON: {exc}") from exc


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp-file, fsync and atomic rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:  # directory entry durability; best-effort on exotic filesystems
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


class CheckpointStore:
    """One run's chunk journal in a directory (see the module docstring).

    Args:
        directory: the checkpoint directory; created (with parents) when
            absent.  A directory already holding a manifest must belong to
            the *same* run key, or opening raises.
        key: the run-identifying document — for a fleet run the fleet
            document plus seed and the execution parameters that shape
            results.  Anything that changes the rows must be in the key.

    Raises:
        CheckpointError: the directory holds a different run's journal, or
            a manifest that cannot be parsed.
    """

    def __init__(self, directory: str | Path, key: Mapping[str, object]) -> None:
        self.directory = Path(directory)
        self.key = dict(key)
        self.key_sha256 = _key_digest(self.key)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / _MANIFEST
        self._lock = FileLock(self.directory / "manifest.lock")
        with self._lock:
            if self._manifest_path.exists():
                self._chunks = self._load_manifest_chunks()
            else:
                self._chunks = {}
                self._write_manifest()

    # -- manifest handling ---------------------------------------------------

    def _load_manifest_chunks(self) -> dict[int, dict[str, object]]:
        try:
            document = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint manifest {self._manifest_path} is not valid JSON ({exc}); "
                "delete the checkpoint directory to start over"
            ) from exc
        if not isinstance(document, dict) or document.get("checkpoint") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint manifest {self._manifest_path} has an unsupported layout "
                f"(expected version {CHECKPOINT_VERSION}); delete the checkpoint "
                "directory to start over"
            )
        found = document.get("key_sha256")
        if found != self.key_sha256:
            raise CheckpointError(
                f"checkpoint directory {self.directory} belongs to a different run "
                f"(key digest {str(found)[:12]}… != {self.key_sha256[:12]}…); "
                "use a fresh directory, or rerun with the original spec/seed/parameters"
            )
        chunks_doc = document.get("chunks")
        if not isinstance(chunks_doc, dict):
            raise CheckpointError(
                f"checkpoint manifest {self._manifest_path} has no chunk table; "
                "delete the checkpoint directory to start over"
            )
        chunks: dict[int, dict[str, object]] = {}
        for label, entry in chunks_doc.items():
            try:
                chunks[int(label)] = {
                    "file": str(entry["file"]),
                    "sha256": str(entry["sha256"]),
                    "items": int(entry["items"]),
                }
            except (TypeError, KeyError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint manifest {self._manifest_path} chunk entry {label!r} "
                    f"is malformed ({exc}); delete the checkpoint directory to start over"
                ) from exc
        return chunks

    def _write_manifest(self) -> None:
        document = {
            "checkpoint": CHECKPOINT_VERSION,
            "key_sha256": self.key_sha256,
            "key": self.key,
            "chunks": {
                str(index): entry for index, entry in sorted(self._chunks.items())
            },
        }
        _atomic_write(self._manifest_path, json.dumps(document, indent=2) + "\n")

    # -- chunk journal -------------------------------------------------------

    @property
    def completed_chunks(self) -> tuple[int, ...]:
        """Journaled chunk indices, ascending."""
        return tuple(sorted(self._chunks))

    def has_chunk(self, chunk_index: int) -> bool:
        """Whether ``chunk_index`` is journaled (and blessed by the manifest)."""
        return chunk_index in self._chunks

    def record_chunk(
        self,
        chunk_index: int,
        results: list[object],
        wall_times_s: list[float],
        failures: list[dict[str, object]] | None = None,
    ) -> Path:
        """Journal one completed chunk: chunk file first, then the manifest.

        ``results`` must be JSON-serializable (NaN allowed); slots of failed
        items carry ``None`` with the failure recorded in ``failures`` (its
        ``index`` local to the chunk).

        Concurrent-writer safe: the manifest update happens under the
        directory's advisory lock and merges the on-disk chunk table first,
        so two replicas journaling the same run never drop each other's
        completed chunks (a chunk both computed resolves to whichever
        journaled first — the results are byte-identical by construction).
        """
        payload = {
            "chunk": chunk_index,
            "items": len(results),
            "results": results,
            "wall_times_s": list(wall_times_s),
            "failures": list(failures or []),
        }
        name = f"chunk-{chunk_index:05d}.json"
        path = self.directory / name
        try:
            text = json.dumps(payload, allow_nan=True)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"chunk {chunk_index} results are not JSON-serializable: {exc}"
            ) from exc
        with self._lock:
            if self._manifest_path.exists():
                for index, entry in self._load_manifest_chunks().items():
                    self._chunks.setdefault(index, entry)
            if chunk_index in self._chunks:
                # A foreign replica already journaled (and blessed) this
                # chunk; its digest-checked file wins — ours is redundant.
                return self.directory / str(self._chunks[chunk_index]["file"])
            _atomic_write(path, text + "\n")
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            self._chunks[chunk_index] = {
                "file": name,
                "sha256": digest,
                "items": len(results),
            }
            self._write_manifest()
        return path

    def load_chunk(
        self, chunk_index: int, expected_items: int | None = None
    ) -> tuple[list[object], list[float], list[dict[str, object]]]:
        """Load one journaled chunk as ``(results, wall_times_s, failures)``.

        Raises:
            CheckpointError: the chunk is not journaled, its file is missing
                or fails its digest, or its item count contradicts the
                caller's expectation (the spec changed under the journal).
        """
        entry = self._chunks.get(chunk_index)
        if entry is None:
            raise CheckpointError(
                f"chunk {chunk_index} is not journaled in {self.directory}; "
                "it must be recomputed"
            )
        path = self.directory / str(entry["file"])
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint chunk file {path} is missing ({exc}); "
                "delete the checkpoint directory and rerun"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checkpoint chunk file {path} is corrupt (digest mismatch); "
                "delete the checkpoint directory and rerun"
            )
        document = json.loads(blob.decode("utf-8"))
        results = document["results"]
        if len(results) != entry["items"] or (
            expected_items is not None and len(results) != expected_items
        ):
            raise CheckpointError(
                f"checkpoint chunk {chunk_index} holds {len(results)} item(s) where "
                f"{expected_items if expected_items is not None else entry['items']} "
                "were expected; the run parameters changed — use a fresh checkpoint "
                "directory"
            )
        return results, list(document.get("wall_times_s", [])), list(document.get("failures", []))
