"""Per-block duty cycles and their classification.

The paper's key methodological point: once temporal information (the duty
cycle within a wheel round) is attached to each block, the choice of
optimization technique changes — a block that is active for a tiny slice of
the round deserves static-power optimization even if its dynamic power
dominates while it runs.  This module computes the per-block duty-cycle
report the selection policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.conditions.operating_point import OperatingPoint
from repro.errors import ScheduleError
from repro.power.database import PowerDatabase
from repro.timing.schedule import RevolutionSchedule

#: Blocks active for less than this fraction of the wheel round are
#: considered "short duty cycle" by the default selection policy.
SHORT_DUTY_CYCLE_THRESHOLD = 0.10

#: Modes that count as "active" when computing a duty cycle, unless the
#: caller provides its own set.
DEFAULT_ACTIVE_MODES = frozenset({"active", "idle"})


@dataclass(frozen=True)
class BlockDutyCycle:
    """Duty-cycle and power split of one block over one wheel round.

    Attributes:
        block: block name.
        duty_cycle: active-time fraction of the wheel round.
        active_time_s: active time in seconds.
        period_s: the wheel-round period the figures refer to.
        active_power_w: average total power while active.
        resting_power_w: total power in the resting mode.
        dynamic_energy_j: dynamic energy spent over the round.
        static_energy_j: static (leakage) energy spent over the round.
    """

    block: str
    duty_cycle: float
    active_time_s: float
    period_s: float
    active_power_w: float
    resting_power_w: float
    dynamic_energy_j: float
    static_energy_j: float

    @property
    def is_short_duty_cycle(self) -> bool:
        """True when the block idles for most of the wheel round."""
        return self.duty_cycle < SHORT_DUTY_CYCLE_THRESHOLD

    @property
    def total_energy_j(self) -> float:
        """Total energy of the block over the round."""
        return self.dynamic_energy_j + self.static_energy_j

    @property
    def static_energy_fraction(self) -> float:
        """Share of the block energy due to leakage (0 if the block is free)."""
        total = self.total_energy_j
        if total == 0.0:
            return 0.0
        return self.static_energy_j / total


@dataclass(frozen=True)
class DutyCycleReport:
    """Duty-cycle figures for every block of an architecture."""

    period_s: float
    speed_kmh: float
    entries: tuple[BlockDutyCycle, ...]

    def for_block(self, block: str) -> BlockDutyCycle:
        """Entry of one block."""
        for entry in self.entries:
            if entry.block == block:
                return entry
        raise ScheduleError(f"no duty-cycle entry for block {block!r}")

    @property
    def blocks(self) -> list[str]:
        """Block names in the report, sorted."""
        return sorted(entry.block for entry in self.entries)

    def short_duty_cycle_blocks(self) -> list[str]:
        """Blocks whose duty cycle is below the short-duty-cycle threshold."""
        return sorted(
            entry.block for entry in self.entries if entry.is_short_duty_cycle
        )

    def total_energy_j(self) -> float:
        """Total node energy over the wheel round."""
        return sum(entry.total_energy_j for entry in self.entries)


def duty_cycle_report(
    schedule: RevolutionSchedule,
    database: PowerDatabase,
    point: OperatingPoint,
    active_modes: Mapping[str, frozenset[str]] | None = None,
) -> DutyCycleReport:
    """Compute the per-block duty-cycle report for one wheel round.

    Args:
        schedule: the intra-revolution schedule (busy phases + resting modes).
        database: the power database providing per-mode power figures.
        point: working conditions at which power is evaluated.
        active_modes: optional per-block override of which modes count as
            active; blocks not listed use :data:`DEFAULT_ACTIVE_MODES`.
    """
    active_modes = active_modes or {}
    entries: list[BlockDutyCycle] = []
    for block, resting_mode in sorted(schedule.blocks.items()):
        block_active_modes = active_modes.get(block, DEFAULT_ACTIVE_MODES)
        active_time = schedule.active_time_of(block, block_active_modes)
        duty = active_time / schedule.period_s

        dynamic_energy = 0.0
        static_energy = 0.0
        active_power_total = 0.0
        for phase in schedule.iter_phases():
            mode = phase.mode_of(block, resting_mode)
            breakdown = database.power(
                block, mode, point, activity=phase.activity_of(block)
            )
            dynamic_energy += breakdown.dynamic_w * phase.duration_s
            static_energy += breakdown.static_w * phase.duration_s
            if mode in block_active_modes:
                active_power_total += breakdown.total_w * phase.duration_s

        active_power = active_power_total / active_time if active_time > 0.0 else 0.0
        resting_power = database.power(block, resting_mode, point).total_w
        entries.append(
            BlockDutyCycle(
                block=block,
                duty_cycle=duty,
                active_time_s=active_time,
                period_s=schedule.period_s,
                active_power_w=active_power,
                resting_power_w=resting_power,
                dynamic_energy_j=dynamic_energy,
                static_energy_j=static_energy,
            )
        )
    return DutyCycleReport(
        period_s=schedule.period_s,
        speed_kmh=point.speed_kmh,
        entries=tuple(entries),
    )
