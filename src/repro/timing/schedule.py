"""Intra-revolution activity schedules.

A :class:`RevolutionSchedule` describes what every functional block does
during one wheel round: an ordered list of :class:`Phase` items, each with a
duration and a mode assignment for the blocks that are *not* in their resting
mode.  The evaluator integrates power over the phases to get energy per
revolution; the emulator plays the phases back in time to produce the
instant-power trace of the paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ScheduleError


@dataclass(frozen=True)
class Phase:
    """One phase of the revolution schedule.

    Attributes:
        name: phase label, e.g. ``"acquire"``, ``"compute"``, ``"transmit"``,
            ``"sleep"``.
        duration_s: phase duration in seconds.
        block_modes: mode assignment for the blocks that are not in their
            resting mode during this phase.  Blocks missing from the mapping
            stay in the resting mode the schedule was built with.
        activities: optional per-block activity factors for this phase.
    """

    name: str
    duration_s: float
    block_modes: Mapping[str, str] = field(default_factory=dict)
    activities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScheduleError("phase name must not be empty")
        if self.duration_s < 0.0:
            raise ScheduleError(f"phase {self.name!r} has a negative duration")

    def mode_of(self, block: str, resting_mode: str) -> str:
        """Mode of ``block`` during this phase, falling back to the resting mode."""
        return self.block_modes.get(block, resting_mode)

    def activity_of(self, block: str) -> float:
        """Activity factor of ``block`` during this phase (1.0 by default)."""
        return self.activities.get(block, 1.0)


@dataclass(frozen=True)
class RevolutionSchedule:
    """The ordered phases of one wheel round.

    Attributes:
        period_s: total duration of the wheel round the schedule describes.
        phases: the busy phases (acquisition, computation, transmission...).
            Their summed duration must not exceed ``period_s``; the remaining
            time is an implicit resting phase appended automatically.
        blocks: every block of the architecture, mapped to the resting mode it
            occupies whenever a phase does not override it.
        resting_phase_name: label of the implicit remainder phase.
    """

    period_s: float
    phases: tuple[Phase, ...]
    blocks: Mapping[str, str]
    resting_phase_name: str = "sleep"

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ScheduleError("schedule period must be positive")
        if not self.blocks:
            raise ScheduleError("a schedule needs at least one block")
        busy = sum(phase.duration_s for phase in self.phases)
        if busy > self.period_s * (1.0 + 1e-9):
            raise ScheduleError(
                f"busy phases ({busy:.6f} s) exceed the wheel-round period "
                f"({self.period_s:.6f} s); the schedule is infeasible at this speed"
            )

    @property
    def busy_duration_s(self) -> float:
        """Total duration of the explicit (busy) phases."""
        return sum(phase.duration_s for phase in self.phases)

    @property
    def resting_duration_s(self) -> float:
        """Duration of the implicit resting remainder."""
        return max(0.0, self.period_s - self.busy_duration_s)

    def iter_phases(self) -> Iterator[Phase]:
        """Iterate every phase including the implicit resting remainder."""
        yield from self.phases
        rest = self.resting_duration_s
        if rest > 0.0:
            yield Phase(name=self.resting_phase_name, duration_s=rest, block_modes={})

    def modes_during(self, phase: Phase) -> dict[str, str]:
        """Full block -> mode assignment during ``phase``."""
        return {
            block: phase.mode_of(block, resting)
            for block, resting in self.blocks.items()
        }

    def active_time_of(self, block: str, active_modes: frozenset[str] | set[str]) -> float:
        """Total time ``block`` spends in one of ``active_modes`` during the round."""
        if block not in self.blocks:
            raise ScheduleError(f"block {block!r} is not part of this schedule")
        total = 0.0
        for phase in self.iter_phases():
            if phase.mode_of(block, self.blocks[block]) in active_modes:
                total += phase.duration_s
        return total

    def duty_cycle_of(self, block: str, active_modes: frozenset[str] | set[str]) -> float:
        """Active-time over wheel-round-period ratio for ``block``.

        This is exactly the paper's definition of the duty cycle: *"active
        time over idle time in a single wheel round"* is described loosely in
        the text; the quantity the selection policy needs is the active
        fraction of the round, which is what we compute.
        """
        return self.active_time_of(block, active_modes) / self.period_s

    def phase_named(self, name: str) -> Phase:
        """Look a busy phase up by name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise ScheduleError(f"no phase named {name!r} in this schedule")

    def has_phase(self, name: str) -> bool:
        """True if a busy phase with this name exists."""
        return any(phase.name == name for phase in self.phases)

    def scaled_to_period(self, new_period_s: float) -> "RevolutionSchedule":
        """Re-target the schedule to a different wheel-round period.

        Busy-phase durations are kept (they are set by the hardware, not by
        the speed); only the resting remainder stretches or shrinks.  Raises
        if the busy phases no longer fit.
        """
        return RevolutionSchedule(
            period_s=new_period_s,
            phases=self.phases,
            blocks=self.blocks,
            resting_phase_name=self.resting_phase_name,
        )

    def describe(self) -> str:
        """Multi-line human-readable dump used by the examples."""
        lines = [f"wheel round {self.period_s * 1e3:.2f} ms"]
        for phase in self.iter_phases():
            overrides = ", ".join(
                f"{block}={mode}" for block, mode in sorted(phase.block_modes.items())
            )
            lines.append(
                f"  {phase.name:<10s} {phase.duration_s * 1e3:8.3f} ms"
                + (f"  [{overrides}]" if overrides else "")
            )
        return "\n".join(lines)
