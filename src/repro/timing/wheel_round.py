"""The wheel round as the basic timing unit.

This module turns a drive cycle into the sequence of timing units the rest of
the analysis consumes: :class:`WheelRound` instances while the vehicle moves
and :class:`IdleInterval` instances while it is stationary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.vehicle.drive_cycle import DriveCycle
from repro.vehicle.wheel import Wheel

#: Below this speed the wheel is considered stationary: a revolution would
#: take longer than ~10 s and the harvester produces nothing useful.
STANDSTILL_THRESHOLD_KMH = 1.0


@dataclass(frozen=True)
class WheelRound:
    """One wheel revolution.

    Attributes:
        index: ordinal of the revolution since the start of the window.
        start_s: absolute start time of the revolution.
        period_s: duration of the revolution.
        speed_kmh: vehicle speed at the start of the revolution (assumed
            constant over the revolution, which at >= 1 km/h is at most a
            ~10 s approximation window and usually well under a second).
    """

    index: int
    start_s: float
    period_s: float
    speed_kmh: float

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ConfigurationError("wheel round period must be positive")
        if self.speed_kmh <= 0.0:
            raise ConfigurationError("a wheel round requires a positive speed")

    @property
    def end_s(self) -> float:
        """Absolute end time of the revolution."""
        return self.start_s + self.period_s


@dataclass(frozen=True)
class IdleInterval:
    """A stretch of time with the vehicle (effectively) stationary."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ConfigurationError("idle interval duration must be positive")

    @property
    def end_s(self) -> float:
        """Absolute end time of the interval."""
        return self.start_s + self.duration_s


def iter_wheel_rounds(
    cycle: DriveCycle,
    wheel: Wheel,
    idle_step_s: float = 1.0,
    standstill_threshold_kmh: float = STANDSTILL_THRESHOLD_KMH,
    max_units: int | None = None,
) -> Iterator[WheelRound | IdleInterval]:
    """Walk a drive cycle revolution by revolution.

    While the vehicle moves faster than ``standstill_threshold_kmh`` the
    iterator yields :class:`WheelRound` units whose period follows the
    instantaneous speed; while it is stationary it yields
    :class:`IdleInterval` units of ``idle_step_s`` seconds so the caller can
    still account for sleep power and storage self-discharge.

    Args:
        cycle: the cruising-speed profile.
        wheel: the wheel converting speed into revolution periods.
        idle_step_s: granularity of the stationary intervals.
        standstill_threshold_kmh: speed below which the wheel is treated as
            stopped.
        max_units: optional safety cap on the number of units generated.

    Yields:
        Timing units in chronological order covering the whole cycle.
    """
    if idle_step_s <= 0.0:
        raise ConfigurationError("idle step must be positive")
    if standstill_threshold_kmh <= 0.0:
        raise ConfigurationError("standstill threshold must be positive")

    time_s = 0.0
    revolution_index = 0
    emitted = 0
    duration = cycle.duration_s
    while time_s < duration:
        if max_units is not None and emitted >= max_units:
            return
        speed = cycle.speed_at(time_s)
        if speed < standstill_threshold_kmh:
            step = min(idle_step_s, duration - time_s)
            if step <= 0.0:
                return
            yield IdleInterval(start_s=time_s, duration_s=step)
            time_s += step
        else:
            period = wheel.revolution_period_s(speed)
            if time_s + period > duration:
                # Truncate the final partial revolution into an idle-style
                # remainder so the accounted time exactly matches the cycle.
                remainder = duration - time_s
                if remainder > 1e-9:
                    yield WheelRound(
                        index=revolution_index,
                        start_s=time_s,
                        period_s=remainder,
                        speed_kmh=speed,
                    )
                return
            yield WheelRound(
                index=revolution_index,
                start_s=time_s,
                period_s=period,
                speed_kmh=speed,
            )
            revolution_index += 1
            time_s += period
        emitted += 1


def count_revolutions(
    cycle: DriveCycle, wheel: Wheel, idle_step_s: float = 1.0
) -> int:
    """Number of complete wheel revolutions over a drive cycle."""
    count = 0
    for unit in iter_wheel_rounds(cycle, wheel, idle_step_s=idle_step_s):
        if isinstance(unit, WheelRound):
            count += 1
    return count
