"""Timing substrate: the wheel round, intra-revolution schedules, duty cycles.

The paper makes the *wheel round* the basic timing unit: every block's
behaviour is described by what it does within one revolution (its phases and
duty cycle), and the energy evaluation integrates power over that unit.
"""

from repro.timing.duty_cycle import BlockDutyCycle, DutyCycleReport, duty_cycle_report
from repro.timing.schedule import Phase, RevolutionSchedule
from repro.timing.wheel_round import (
    IdleInterval,
    WheelRound,
    iter_wheel_rounds,
)

__all__ = [
    "Phase",
    "RevolutionSchedule",
    "WheelRound",
    "IdleInterval",
    "iter_wheel_rounds",
    "BlockDutyCycle",
    "DutyCycleReport",
    "duty_cycle_report",
]
