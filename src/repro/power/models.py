"""Parametric dynamic and static power models.

The characterization data of the real Sensor Node chip is proprietary; the
spreadsheet entries are therefore produced by first-principles CMOS models
anchored at a reference working condition:

* dynamic power follows ``P = alpha * C_eff * V^2 * f`` and scales
  quadratically with the supply voltage and linearly with clock frequency and
  switching activity;
* static (leakage) power follows a sub-threshold model with an exponential
  temperature dependence and a linear DIBL-like supply dependence.

Both models return power *referred to the block supply rail*; the
power-management unit efficiency is accounted for separately when energy is
referred back to the storage element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.conditions.operating_point import OperatingPoint
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerBreakdown:
    """Dynamic/static decomposition of a power figure, in watts."""

    dynamic_w: float
    static_w: float

    def __post_init__(self) -> None:
        if self.dynamic_w < 0.0 or self.static_w < 0.0:
            raise ConfigurationError("power components must be non-negative")

    @property
    def total_w(self) -> float:
        """Total power in watts."""
        return self.dynamic_w + self.static_w

    @property
    def static_fraction(self) -> float:
        """Static share of the total power (0 when the total is zero)."""
        total = self.total_w
        if total == 0.0:
            return 0.0
        return self.static_w / total

    def scaled(self, dynamic_factor: float = 1.0, static_factor: float = 1.0) -> "PowerBreakdown":
        """Return a new breakdown with each component scaled."""
        if dynamic_factor < 0.0 or static_factor < 0.0:
            raise ConfigurationError("scale factors must be non-negative")
        return PowerBreakdown(
            dynamic_w=self.dynamic_w * dynamic_factor,
            static_w=self.static_w * static_factor,
        )

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            dynamic_w=self.dynamic_w + other.dynamic_w,
            static_w=self.static_w + other.static_w,
        )

    @staticmethod
    def zero() -> "PowerBreakdown":
        """The zero power breakdown."""
        return PowerBreakdown(dynamic_w=0.0, static_w=0.0)


@dataclass(frozen=True)
class DynamicPowerModel:
    """Dynamic (switching) power model anchored at a reference condition.

    Attributes:
        reference_power_w: dynamic power measured/estimated at the reference
            voltage, frequency and activity.
        reference_voltage_v: supply voltage of the reference condition.
        reference_frequency_hz: clock frequency of the reference condition.
            ``0`` marks a block whose dynamic power does not scale with a
            clock (e.g. an analog front-end); frequency scaling is then a
            no-op.
        activity_exponent: exponent applied to the activity factor; 1.0 for
            purely data-driven switching.
    """

    reference_power_w: float
    reference_voltage_v: float = 1.2
    reference_frequency_hz: float = 0.0
    activity_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.reference_power_w < 0.0:
            raise ConfigurationError("reference dynamic power must be non-negative")
        if self.reference_voltage_v <= 0.0:
            raise ConfigurationError("reference voltage must be positive")
        if self.reference_frequency_hz < 0.0:
            raise ConfigurationError("reference frequency must be non-negative")

    def power_w(
        self,
        voltage_v: float | None = None,
        frequency_hz: float | None = None,
        activity: float = 1.0,
        process_factor: float = 1.0,
    ) -> float:
        """Dynamic power at the given condition, in watts.

        Args:
            voltage_v: supply voltage; ``None`` keeps the reference voltage.
            frequency_hz: clock frequency; ``None`` keeps the reference
                frequency.  Ignored for clockless blocks.
            activity: switching-activity factor relative to the reference
                (1.0 = reference workload).
            process_factor: process-corner multiplier on dynamic power.
        """
        if activity < 0.0:
            raise ConfigurationError("activity factor must be non-negative")
        if process_factor < 0.0:
            raise ConfigurationError("process factor must be non-negative")
        voltage = self.reference_voltage_v if voltage_v is None else voltage_v
        if voltage <= 0.0:
            raise ConfigurationError("supply voltage must be positive")
        voltage_scale = (voltage / self.reference_voltage_v) ** 2
        if self.reference_frequency_hz > 0.0 and frequency_hz is not None:
            if frequency_hz < 0.0:
                raise ConfigurationError("frequency must be non-negative")
            frequency_scale = frequency_hz / self.reference_frequency_hz
        else:
            frequency_scale = 1.0
        activity_scale = activity**self.activity_exponent
        return (
            self.reference_power_w
            * voltage_scale
            * frequency_scale
            * activity_scale
            * process_factor
        )


@dataclass(frozen=True)
class LeakagePowerModel:
    """Static (leakage) power model anchored at a reference condition.

    Leakage grows exponentially with temperature; the model uses the
    empirical doubling-temperature form
    ``P(T) = P_ref * 2^((T - T_ref) / doubling_celsius)`` which matches the
    sub-threshold exponential well over the automotive range and keeps the
    parameters intuitive (leakage doubles every ``doubling_celsius`` degrees).

    Supply dependence is modelled linearly around the reference voltage with
    a DIBL-like sensitivity: ``1 + dibl_coefficient * (V - V_ref) / V_ref``.

    Attributes:
        reference_power_w: leakage at the reference temperature/voltage.
        reference_temperature_c: temperature of the reference condition.
        reference_voltage_v: voltage of the reference condition.
        doubling_celsius: temperature increase that doubles the leakage
            (18 degC gives roughly a 45x increase from 25 to 125 degC, in
            line with published sub-threshold leakage data for 90 nm class
            processes).
        dibl_coefficient: relative leakage increase per relative voltage
            increase.
    """

    reference_power_w: float
    reference_temperature_c: float = 25.0
    reference_voltage_v: float = 1.2
    doubling_celsius: float = 18.0
    dibl_coefficient: float = 1.3

    def __post_init__(self) -> None:
        if self.reference_power_w < 0.0:
            raise ConfigurationError("reference leakage must be non-negative")
        if self.reference_voltage_v <= 0.0:
            raise ConfigurationError("reference voltage must be positive")
        if self.doubling_celsius <= 0.0:
            raise ConfigurationError("doubling temperature must be positive")
        if self.dibl_coefficient < 0.0:
            raise ConfigurationError("DIBL coefficient must be non-negative")

    def temperature_factor(self, temperature_c: float) -> float:
        """Leakage multiplier at ``temperature_c`` relative to the reference."""
        return 2.0 ** ((temperature_c - self.reference_temperature_c) / self.doubling_celsius)

    def voltage_factor(self, voltage_v: float) -> float:
        """Leakage multiplier at ``voltage_v`` relative to the reference."""
        if voltage_v <= 0.0:
            raise ConfigurationError("supply voltage must be positive")
        relative = (voltage_v - self.reference_voltage_v) / self.reference_voltage_v
        return max(0.0, 1.0 + self.dibl_coefficient * relative)

    def power_w(
        self,
        temperature_c: float | None = None,
        voltage_v: float | None = None,
        process_factor: float = 1.0,
    ) -> float:
        """Leakage power at the given condition, in watts."""
        if process_factor < 0.0:
            raise ConfigurationError("process factor must be non-negative")
        temperature = (
            self.reference_temperature_c if temperature_c is None else temperature_c
        )
        voltage = self.reference_voltage_v if voltage_v is None else voltage_v
        return (
            self.reference_power_w
            * self.temperature_factor(temperature)
            * self.voltage_factor(voltage)
            * process_factor
        )


def breakdown_at(
    dynamic_model: DynamicPowerModel,
    leakage_model: LeakagePowerModel,
    point: OperatingPoint,
    frequency_hz: float | None = None,
    activity: float = 1.0,
    voltage_override_v: float | None = None,
) -> PowerBreakdown:
    """Evaluate both models at an :class:`OperatingPoint`.

    ``voltage_override_v`` lets blocks on their own analog/RF rails use that
    rail's voltage instead of the core supply selected by the operating
    point.
    """
    voltage = voltage_override_v if voltage_override_v is not None else point.supply_voltage
    dynamic = dynamic_model.power_w(
        voltage_v=voltage,
        frequency_hz=frequency_hz,
        activity=activity,
        process_factor=point.process.dynamic_factor,
    )
    static = leakage_model.power_w(
        temperature_c=point.temperature_c,
        voltage_v=voltage,
        process_factor=point.process.leakage_factor,
    )
    return PowerBreakdown(dynamic_w=dynamic, static_w=static)


def energy_j(power_w: float, duration_s: float) -> float:
    """Energy in joules of ``power_w`` sustained for ``duration_s`` seconds."""
    if duration_s < 0.0:
        raise ConfigurationError("duration must be non-negative")
    if power_w < 0.0:
        raise ConfigurationError("power must be non-negative")
    return power_w * duration_s


def equivalent_current_a(power_w: float, voltage_v: float) -> float:
    """Current drawn from a rail at ``voltage_v`` to supply ``power_w``."""
    if voltage_v <= 0.0:
        raise ConfigurationError("voltage must be positive")
    if power_w < 0.0:
        raise ConfigurationError("power must be non-negative")
    return power_w / voltage_v


def half_life_to_doubling(doubling_celsius: float, delta_c: float) -> float:
    """Leakage multiplier for a temperature change of ``delta_c`` degrees.

    Convenience used by reports to answer "how much more does this block leak
    at +delta degrees" without building a full model.
    """
    if doubling_celsius <= 0.0:
        raise ConfigurationError("doubling temperature must be positive")
    return float(math.pow(2.0, delta_c / doubling_celsius))
