"""Power models and the power-characterization database ("dynamic spreadsheet").

The paper collects per-block power estimations into a dynamic spreadsheet
that acts as *"a complete database for the energy analysis"*.  This package
provides that database plus the parametric dynamic/static power models used
to scale each entry across working conditions (temperature, supply voltage,
process variation) and operating conditions (block mode, clock frequency,
activity).
"""

from repro.power.compiled import CompiledPowerTable
from repro.power.database import PowerDatabase
from repro.power.entry import PowerEntry
from repro.power.io import (
    database_from_csv,
    database_from_json,
    database_to_csv,
    database_to_json,
)
from repro.power.library import reference_power_database
from repro.power.models import (
    DynamicPowerModel,
    LeakagePowerModel,
    PowerBreakdown,
)

__all__ = [
    "CompiledPowerTable",
    "DynamicPowerModel",
    "LeakagePowerModel",
    "PowerBreakdown",
    "PowerEntry",
    "PowerDatabase",
    "reference_power_database",
    "database_to_csv",
    "database_from_csv",
    "database_to_json",
    "database_from_json",
]
