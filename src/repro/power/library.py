"""Default power-characterization library of the reference Sensor Node.

The real chip's characterization is proprietary.  These figures are a
synthetic substitute assembled from the public literature on battery-less
in-tyre sensor nodes (Ergen et al., IEEE TCAD 2009; typical ultra-low-power
MEMS/ADC/MCU/transmitter datasheet classes of the 2009-2011 era):

* analog sensor front-ends: tens to hundreds of microwatts while sampling;
* a 10-12 bit SAR ADC: ~100 uW at full rate;
* an ultra-low-power MCU/DSP in 90 nm: a few mW active at ~16 MHz,
  microwatt-level retention sleep;
* SRAM retention: a few uW, strongly temperature dependent;
* a 315/434 MHz class OOK/FSK transmitter: several mW during a burst;
* an LF (125 kHz) wake-up receiver: a couple of uW always-on;
* a power-management unit whose quiescent current is always present.

Magnitudes matter only in so far as the energy-balance *shape* of Fig. 2 and
the burst structure of Fig. 3 are preserved; the methodology code paths are
identical whichever numbers the spreadsheet holds.
"""

from __future__ import annotations

from functools import lru_cache

from repro.power.database import PowerDatabase
from repro.power.entry import PowerEntry, make_entry

#: Mode names shared by every block.  Not every block characterizes every
#: mode; the architecture's schedule only references modes that exist.
MODE_ACTIVE = "active"
MODE_IDLE = "idle"
MODE_SLEEP = "sleep"
MODE_OFF = "off"


def _sensor_entries() -> list[PowerEntry]:
    """Pressure, temperature and accelerometer front-ends (analog rail, 1.8 V)."""
    common = dict(rail_voltage_v=1.8, tracks_core_supply=False)
    return [
        make_entry(
            "pressure_sensor", MODE_ACTIVE, dynamic_uw=220.0, leakage_uw=0.9,
            notes="piezoresistive bridge + amplifier, sampling", **common,
        ),
        make_entry(
            "pressure_sensor", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.25,
            notes="bridge unbiased", **common,
        ),
        make_entry(
            "temperature_sensor", MODE_ACTIVE, dynamic_uw=45.0, leakage_uw=0.4,
            notes="bandgap-based sensor, sampling", **common,
        ),
        make_entry(
            "temperature_sensor", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.12,
            **common,
        ),
        make_entry(
            "accelerometer", MODE_ACTIVE, dynamic_uw=380.0, leakage_uw=1.5,
            notes="MEMS accelerometer + front-end, contact-patch acquisition", **common,
        ),
        make_entry(
            "accelerometer", MODE_IDLE, dynamic_uw=35.0, leakage_uw=1.5,
            notes="biased but not converting", **common,
        ),
        make_entry(
            "accelerometer", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.4,
            **common,
        ),
    ]


def _adc_entries() -> list[PowerEntry]:
    """10-bit SAR ADC on the analog rail, clocked at 100 kS/s when active."""
    common = dict(rail_voltage_v=1.8, tracks_core_supply=False)
    return [
        make_entry(
            "adc", MODE_ACTIVE, dynamic_uw=110.0, leakage_uw=0.8,
            clock_frequency_hz=100e3, notes="SAR ADC converting at 100 kS/s", **common,
        ),
        make_entry(
            "adc", MODE_IDLE, dynamic_uw=8.0, leakage_uw=0.8,
            notes="reference buffer on, not converting", **common,
        ),
        make_entry(
            "adc", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.2, **common,
        ),
    ]


def _mcu_entries() -> list[PowerEntry]:
    """Data-computing system: ultra-low-power MCU/DSP, 90 nm class, core rail."""
    return [
        make_entry(
            "mcu", MODE_ACTIVE, dynamic_uw=2400.0, leakage_uw=14.0,
            clock_frequency_hz=16e6,
            notes="feature extraction / friction estimation at 16 MHz",
        ),
        make_entry(
            "mcu", MODE_IDLE, dynamic_uw=260.0, leakage_uw=14.0,
            clock_frequency_hz=16e6,
            notes="clock running, pipeline stalled",
        ),
        make_entry(
            "mcu", MODE_SLEEP, dynamic_uw=0.6, leakage_uw=3.2,
            notes="retention sleep, RTC running",
        ),
    ]


def _memory_entries() -> list[PowerEntry]:
    """On-chip SRAM (working data) and NVM (calibration/log) on the core rail."""
    return [
        make_entry(
            "sram", MODE_ACTIVE, dynamic_uw=310.0, leakage_uw=9.0,
            clock_frequency_hz=16e6, notes="8 KiB working memory, read/write bursts",
        ),
        make_entry(
            "sram", MODE_IDLE, dynamic_uw=4.0, leakage_uw=9.0,
            notes="content preserved, no access",
        ),
        make_entry(
            "sram", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=2.1,
            notes="source-biased retention",
        ),
        make_entry(
            "nvm", MODE_ACTIVE, dynamic_uw=650.0, leakage_uw=1.0,
            notes="EEPROM/flash write burst (rare)",
        ),
        make_entry(
            "nvm", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.1,
            notes="unpowered between writes",
        ),
    ]


def _radio_entries() -> list[PowerEntry]:
    """UHF transmitter burst + LF wake-up receiver, RF rail at 1.8 V."""
    common = dict(rail_voltage_v=1.8, tracks_core_supply=False)
    return [
        make_entry(
            "rf_tx", MODE_ACTIVE, dynamic_uw=7800.0, leakage_uw=2.5,
            notes="434 MHz FSK burst, ~0 dBm radiated", **common,
        ),
        make_entry(
            "rf_tx", MODE_IDLE, dynamic_uw=420.0, leakage_uw=2.5,
            notes="synthesizer locked, PA off (startup/settling)", **common,
        ),
        make_entry(
            "rf_tx", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.5, **common,
        ),
        make_entry(
            "lf_rx", MODE_ACTIVE, dynamic_uw=2.8, leakage_uw=0.3,
            notes="125 kHz wake-up/trigger receiver, always listening", **common,
        ),
        make_entry(
            "lf_rx", MODE_SLEEP, dynamic_uw=0.0, leakage_uw=0.1, **common,
        ),
    ]


def _pmu_entries() -> list[PowerEntry]:
    """Power-management unit: rectifier control, regulators, supervisor."""
    return [
        make_entry(
            "pmu", MODE_ACTIVE, dynamic_uw=36.0, leakage_uw=1.8,
            notes="regulators in PWM mode during activity bursts",
        ),
        make_entry(
            "pmu", MODE_IDLE, dynamic_uw=9.0, leakage_uw=1.8,
            notes="regulators in PFM/burst mode",
        ),
        make_entry(
            "pmu", MODE_SLEEP, dynamic_uw=1.2, leakage_uw=0.9,
            notes="supervisor + bandgap only",
        ),
    ]


@lru_cache(maxsize=1)
def _reference_entries() -> tuple[PowerEntry, ...]:
    """The characterization rows, built once (entries are frozen dataclasses)."""
    entries: list[PowerEntry] = []
    entries.extend(_sensor_entries())
    entries.extend(_adc_entries())
    entries.extend(_mcu_entries())
    entries.extend(_memory_entries())
    entries.extend(_radio_entries())
    entries.extend(_pmu_entries())
    return tuple(entries)


def reference_power_database() -> PowerDatabase:
    """Build the default characterization database of the reference Sensor Node.

    Returns a fresh :class:`PowerDatabase` on every call so tests and
    optimization flows can mutate their copy freely; the immutable
    :class:`PowerEntry` rows behind it are memoized (copy-on-return), so
    repeated CLI/registry lookups no longer rebuild the characterization
    library from scratch.
    """
    return PowerDatabase.from_entries(_reference_entries(), name="reference-sensor-node")


def low_power_process_database() -> PowerDatabase:
    """A variant library in a low-leakage (HVT-dominated) process.

    Dynamic power is slightly higher (larger gates for the same speed),
    leakage is roughly 4x lower.  Used by the architecture-exploration bench
    as an alternative design point.
    """
    base = reference_power_database()
    return base.map_entries(
        lambda entry: entry.scaled(dynamic_factor=1.1, static_factor=0.25,
                                   note="low-leakage process option"),
        name="reference-sensor-node-lp",
    )


def high_performance_process_database() -> PowerDatabase:
    """A variant library in a faster, leakier process (LVT-dominated)."""
    base = reference_power_database()
    return base.map_entries(
        lambda entry: entry.scaled(dynamic_factor=0.9, static_factor=3.5,
                                   note="high-performance process option"),
        name="reference-sensor-node-hp",
    )
