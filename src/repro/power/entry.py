"""Power-database entries: one characterized (block, mode) pair.

Each entry of the "dynamic spreadsheet" records the power of one functional
block in one operating mode, together with the scaling models needed to
re-evaluate it at any working condition.  Entries are pure data: the
functional-block behaviour (state machines, duty cycles) lives in
:mod:`repro.blocks` and :mod:`repro.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.conditions.operating_point import OperatingPoint
from repro.errors import ConfigurationError
from repro.power.models import (
    DynamicPowerModel,
    LeakagePowerModel,
    PowerBreakdown,
    breakdown_at,
)


@dataclass(frozen=True)
class PowerEntry:
    """One row of the power database.

    Attributes:
        block: functional-block name, e.g. ``"mcu"``.
        mode: operating-mode name, e.g. ``"active"``, ``"idle"``, ``"sleep"``.
        dynamic: dynamic power model for this mode.
        leakage: leakage power model for this mode (power gating is expressed
            by giving the gated mode a much smaller leakage reference).
        rail_voltage_v: nominal voltage of the rail the block sits on; used
            instead of the core supply when the block has its own rail.
        tracks_core_supply: when True the entry is evaluated at the core
            supply voltage selected by the operating point (so
            voltage-scaling optimizations affect it); when False the entry
            keeps its own rail voltage.
        clock_frequency_hz: clock frequency of the mode (0 for clockless).
        notes: free-form provenance string (where the numbers come from).
    """

    block: str
    mode: str
    dynamic: DynamicPowerModel
    leakage: LeakagePowerModel
    rail_voltage_v: float = 1.2
    tracks_core_supply: bool = True
    clock_frequency_hz: float = 0.0
    notes: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.block:
            raise ConfigurationError("entry block name must not be empty")
        if not self.mode:
            raise ConfigurationError("entry mode name must not be empty")
        if self.rail_voltage_v <= 0.0:
            raise ConfigurationError("rail voltage must be positive")
        if self.clock_frequency_hz < 0.0:
            raise ConfigurationError("clock frequency must be non-negative")

    @property
    def key(self) -> tuple[str, str]:
        """The (block, mode) key this entry is stored under."""
        return (self.block, self.mode)

    def breakdown(self, point: OperatingPoint, activity: float = 1.0) -> PowerBreakdown:
        """Evaluate the entry at an operating point.

        Args:
            point: working conditions.
            activity: switching-activity factor relative to the characterized
                workload.
        """
        voltage_override = None if self.tracks_core_supply else self.rail_voltage_v
        return breakdown_at(
            self.dynamic,
            self.leakage,
            point,
            frequency_hz=self.clock_frequency_hz or None,
            activity=activity,
            voltage_override_v=voltage_override,
        )

    def total_power_w(self, point: OperatingPoint, activity: float = 1.0) -> float:
        """Total (dynamic + static) power at ``point`` in watts."""
        return self.breakdown(point, activity).total_w

    def scaled(
        self,
        dynamic_factor: float = 1.0,
        static_factor: float = 1.0,
        note: str = "",
    ) -> "PowerEntry":
        """Return a copy with the reference powers scaled.

        This is how optimization techniques rewrite the database: e.g. clock
        gating multiplies the idle-mode dynamic reference by a small factor,
        power gating multiplies the sleep-mode leakage reference.
        """
        if dynamic_factor < 0.0 or static_factor < 0.0:
            raise ConfigurationError("scale factors must be non-negative")
        new_dynamic = replace(
            self.dynamic, reference_power_w=self.dynamic.reference_power_w * dynamic_factor
        )
        new_leakage = replace(
            self.leakage, reference_power_w=self.leakage.reference_power_w * static_factor
        )
        combined_notes = self.notes
        if note:
            combined_notes = f"{self.notes}; {note}" if self.notes else note
        return replace(self, dynamic=new_dynamic, leakage=new_leakage, notes=combined_notes)

    def with_clock(self, clock_frequency_hz: float) -> "PowerEntry":
        """Return a copy running at a different clock frequency.

        The dynamic reference is *not* changed: the dynamic model already
        scales linearly with frequency relative to its reference frequency.
        """
        if clock_frequency_hz < 0.0:
            raise ConfigurationError("clock frequency must be non-negative")
        return replace(self, clock_frequency_hz=clock_frequency_hz)

    def with_rail_voltage(self, rail_voltage_v: float) -> "PowerEntry":
        """Return a copy on a different (own) rail voltage."""
        if rail_voltage_v <= 0.0:
            raise ConfigurationError("rail voltage must be positive")
        return replace(self, rail_voltage_v=rail_voltage_v)

    def describe(self, point: OperatingPoint) -> str:
        """Human-readable one-liner for reports."""
        power = self.breakdown(point)
        return (
            f"{self.block}/{self.mode}: dyn {power.dynamic_w * 1e6:.2f} uW, "
            f"stat {power.static_w * 1e6:.2f} uW @ {point.describe()}"
        )


def make_entry(
    block: str,
    mode: str,
    dynamic_uw: float,
    leakage_uw: float,
    rail_voltage_v: float = 1.2,
    tracks_core_supply: bool = True,
    clock_frequency_hz: float = 0.0,
    reference_temperature_c: float = 25.0,
    doubling_celsius: float = 18.0,
    notes: str = "",
    tags: tuple[str, ...] = (),
) -> PowerEntry:
    """Convenience constructor taking reference powers in microwatts.

    The characterization library uses this heavily; keeping the microwatt
    unit at the construction site keeps the numbers easy to compare against
    the published figures for in-tyre sensor nodes.
    """
    if dynamic_uw < 0.0 or leakage_uw < 0.0:
        raise ConfigurationError("reference powers must be non-negative")
    dynamic = DynamicPowerModel(
        reference_power_w=dynamic_uw * 1e-6,
        reference_voltage_v=rail_voltage_v,
        reference_frequency_hz=clock_frequency_hz,
    )
    leakage = LeakagePowerModel(
        reference_power_w=leakage_uw * 1e-6,
        reference_temperature_c=reference_temperature_c,
        reference_voltage_v=rail_voltage_v,
        doubling_celsius=doubling_celsius,
    )
    return PowerEntry(
        block=block,
        mode=mode,
        dynamic=dynamic,
        leakage=leakage,
        rail_voltage_v=rail_voltage_v,
        tracks_core_supply=tracks_core_supply,
        clock_frequency_hz=clock_frequency_hz,
        notes=notes,
        tags=tuple(tags),
    )
