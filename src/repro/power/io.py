"""CSV / JSON import-export of power databases.

The paper's spreadsheet is, literally, a spreadsheet: designers exchange the
characterization as tabular files.  These helpers round-trip a
:class:`~repro.power.database.PowerDatabase` through CSV (one row per entry)
and JSON (one object per entry) without losing any model parameter.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.errors import ExportError
from repro.power.database import PowerDatabase
from repro.power.entry import PowerEntry
from repro.power.models import DynamicPowerModel, LeakagePowerModel

_CSV_COLUMNS = (
    "block",
    "mode",
    "dynamic_ref_w",
    "dynamic_ref_voltage_v",
    "dynamic_ref_frequency_hz",
    "leakage_ref_w",
    "leakage_ref_temperature_c",
    "leakage_ref_voltage_v",
    "leakage_doubling_celsius",
    "leakage_dibl_coefficient",
    "rail_voltage_v",
    "tracks_core_supply",
    "clock_frequency_hz",
    "notes",
)


def _entry_to_record(entry: PowerEntry) -> dict[str, object]:
    """Flatten an entry into a serializable record."""
    return {
        "block": entry.block,
        "mode": entry.mode,
        "dynamic_ref_w": entry.dynamic.reference_power_w,
        "dynamic_ref_voltage_v": entry.dynamic.reference_voltage_v,
        "dynamic_ref_frequency_hz": entry.dynamic.reference_frequency_hz,
        "leakage_ref_w": entry.leakage.reference_power_w,
        "leakage_ref_temperature_c": entry.leakage.reference_temperature_c,
        "leakage_ref_voltage_v": entry.leakage.reference_voltage_v,
        "leakage_doubling_celsius": entry.leakage.doubling_celsius,
        "leakage_dibl_coefficient": entry.leakage.dibl_coefficient,
        "rail_voltage_v": entry.rail_voltage_v,
        "tracks_core_supply": entry.tracks_core_supply,
        "clock_frequency_hz": entry.clock_frequency_hz,
        "notes": entry.notes,
    }


def _entry_from_record(record: dict[str, object]) -> PowerEntry:
    """Rebuild an entry from a flattened record (CSV strings are coerced)."""
    def _float(key: str) -> float:
        return float(record[key])  # type: ignore[arg-type]

    def _bool(key: str) -> bool:
        value = record[key]
        if isinstance(value, bool):
            return value
        return str(value).strip().lower() in ("1", "true", "yes")

    try:
        dynamic = DynamicPowerModel(
            reference_power_w=_float("dynamic_ref_w"),
            reference_voltage_v=_float("dynamic_ref_voltage_v"),
            reference_frequency_hz=_float("dynamic_ref_frequency_hz"),
        )
        leakage = LeakagePowerModel(
            reference_power_w=_float("leakage_ref_w"),
            reference_temperature_c=_float("leakage_ref_temperature_c"),
            reference_voltage_v=_float("leakage_ref_voltage_v"),
            doubling_celsius=_float("leakage_doubling_celsius"),
            dibl_coefficient=_float("leakage_dibl_coefficient"),
        )
        return PowerEntry(
            block=str(record["block"]),
            mode=str(record["mode"]),
            dynamic=dynamic,
            leakage=leakage,
            rail_voltage_v=_float("rail_voltage_v"),
            tracks_core_supply=_bool("tracks_core_supply"),
            clock_frequency_hz=_float("clock_frequency_hz"),
            notes=str(record.get("notes", "")),
        )
    except (KeyError, ValueError) as exc:
        raise ExportError(f"malformed power-database record: {record!r}") from exc


def database_to_csv(database: PowerDatabase, path: str | Path) -> Path:
    """Write the database to a CSV file and return the path."""
    target = Path(path)
    try:
        with target.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=_CSV_COLUMNS)
            writer.writeheader()
            for entry in sorted(database, key=lambda e: e.key):
                writer.writerow(_entry_to_record(entry))
    except OSError as exc:
        raise ExportError(f"cannot write power database to {target}") from exc
    return target


def database_from_csv(path: str | Path, name: str | None = None) -> PowerDatabase:
    """Load a database from a CSV file produced by :func:`database_to_csv`."""
    source = Path(path)
    try:
        with source.open("r", newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            records = list(reader)
    except OSError as exc:
        raise ExportError(f"cannot read power database from {source}") from exc
    entries = [_entry_from_record(record) for record in records]
    return PowerDatabase.from_entries(entries, name=name or source.stem)


def database_to_json(database: PowerDatabase, path: str | Path) -> Path:
    """Write the database to a JSON file and return the path."""
    target = Path(path)
    payload = {
        "name": database.name,
        "entries": [_entry_to_record(entry) for entry in sorted(database, key=lambda e: e.key)],
    }
    try:
        target.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    except OSError as exc:
        raise ExportError(f"cannot write power database to {target}") from exc
    return target


def database_from_json(path: str | Path) -> PowerDatabase:
    """Load a database from a JSON file produced by :func:`database_to_json`."""
    source = Path(path)
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ExportError(f"cannot read power database from {source}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ExportError(f"{source} does not look like a power-database export")
    entries: Iterable[dict[str, object]] = payload["entries"]
    return PowerDatabase.from_entries(
        (_entry_from_record(record) for record in entries),
        name=str(payload.get("name", source.stem)),
    )
