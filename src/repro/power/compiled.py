"""Vectorized, "compiled" view of a :class:`~repro.power.database.PowerDatabase`.

The scalar evaluation path (``PowerDatabase.power`` ->
``PowerEntry.breakdown`` -> :func:`repro.power.models.breakdown_at`) allocates
one frozen dataclass per (block, mode, operating point) query.  That is the
right interface for interactive spreadsheet queries, but it dominates the run
time of every sweep workload: the Fig. 2 energy balance samples dozens of
speeds, operating-window and design-space studies sample condition grids, and
the long-window emulator re-evaluates wheel rounds tens of thousands of
times.

:class:`CompiledPowerTable` removes that dispatch cost by flattening the
model coefficients of every entry into contiguous numpy arrays once, at
construction, and evaluating whole *batches* of operating conditions with a
handful of array expressions.

Flattened layout
----------------

Each database entry occupies one **row** across a set of parallel float64
arrays (one array per model coefficient)::

    row r of entry (block, mode):
        dynamic_reference_w[r]   dynamic power at the reference condition
        dynamic_reference_v[r]   reference supply voltage of the dynamic model
        frequency_scale[r]       clock_hz / reference_hz (1.0 for clockless
                                 blocks), folded to a constant because the
                                 entry's clock is fixed once the database has
                                 been re-targeted to an architecture
        activity_exponent[r]     exponent applied to the activity factor
        leakage_reference_w[r]   leakage at the reference temperature/voltage
        leakage_reference_t[r]   reference temperature (degC)
        leakage_reference_v[r]   reference voltage of the leakage model
        doubling_celsius[r]      temperature increase that doubles leakage
        dibl_coefficient[r]      linearized supply sensitivity of leakage
        rail_voltage_v[r]        own-rail voltage of the entry
        tracks_core_supply[r]    True when the row follows the core supply

``row_of`` maps the (block, mode) key to its row index, so callers gather the
rows they need (for instance one row per block of an architecture's resting
modes) and evaluate them against *arrays* of conditions.

Evaluation contract
-------------------

All evaluation methods take a row-index array of shape ``(R,)`` and
condition arrays (supply voltage, temperature, process factors) of shape
``(P,)`` (scalars broadcast), and return ``(R, P)`` arrays.  The arithmetic
is kept in exactly the same operation order as the scalar models in
:mod:`repro.power.models`, so results agree with ``PowerEntry.breakdown`` to
floating-point round-off (well inside the 1e-9 relative tolerance the
equivalence tests assert):

* dynamic: ``P_ref * (V/V_ref)^2 * f_scale * activity^exponent * process``
* static:  ``P_ref * 2^((T-T_ref)/doubling)
  * max(0, 1 + dibl*(V-V_ref)/V_ref) * process``

Rows whose entry does not track the core supply are evaluated at their own
rail voltage, exactly like the scalar path's ``voltage_override_v``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import CharacterizationError, ConfigurationError
from repro.power.entry import PowerEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.power.database import PowerDatabase


def _as_condition_array(value, name: str) -> np.ndarray:
    """Coerce a scalar or sequence condition to a 1-D float64 array."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise ConfigurationError(f"{name} must be a scalar or a 1-D array")
    return array


class CompiledPowerTable:
    """All (block, mode) power-model coefficients flattened into arrays.

    Construction walks the database once; afterwards every evaluation is a
    set of vectorized expressions with no per-entry Python dispatch.  The
    table is immutable: rebuilding it after the database changes is the
    caller's responsibility (``EnergyEvaluator`` builds it lazily from its
    already re-targeted database).
    """

    def __init__(self, entries: Iterable[PowerEntry]) -> None:
        ordered = list(entries)
        if not ordered:
            raise CharacterizationError("cannot compile an empty power database")
        self.keys: tuple[tuple[str, str], ...] = tuple(entry.key for entry in ordered)
        self.row_of: dict[tuple[str, str], int] = {
            key: row for row, key in enumerate(self.keys)
        }
        if len(self.row_of) != len(ordered):
            raise CharacterizationError("duplicate (block, mode) keys in entries")

        def column(values, dtype=np.float64) -> np.ndarray:
            array = np.array(values, dtype=dtype)
            array.setflags(write=False)
            return array

        self.dynamic_reference_w = column(
            [e.dynamic.reference_power_w for e in ordered]
        )
        self.dynamic_reference_v = column(
            [e.dynamic.reference_voltage_v for e in ordered]
        )
        # The entry clock is constant per row, so the frequency term of the
        # dynamic model collapses to a constant multiplier (1.0 when either
        # the model or the entry is clockless) — same rule as the scalar
        # ``PowerEntry.breakdown`` passing ``clock_frequency_hz or None``.
        self.frequency_scale = column(
            [
                e.clock_frequency_hz / e.dynamic.reference_frequency_hz
                if e.dynamic.reference_frequency_hz > 0.0 and e.clock_frequency_hz > 0.0
                else 1.0
                for e in ordered
            ]
        )
        self.activity_exponent = column([e.dynamic.activity_exponent for e in ordered])
        self.leakage_reference_w = column(
            [e.leakage.reference_power_w for e in ordered]
        )
        self.leakage_reference_t = column(
            [e.leakage.reference_temperature_c for e in ordered]
        )
        self.leakage_reference_v = column(
            [e.leakage.reference_voltage_v for e in ordered]
        )
        self.doubling_celsius = column([e.leakage.doubling_celsius for e in ordered])
        self.dibl_coefficient = column([e.leakage.dibl_coefficient for e in ordered])
        self.rail_voltage_v = column([e.rail_voltage_v for e in ordered])
        self.tracks_core_supply = column(
            [e.tracks_core_supply for e in ordered], dtype=bool
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_database(cls, database: "PowerDatabase") -> "CompiledPowerTable":
        """Compile every entry of ``database`` (in its iteration order)."""
        return cls(database)

    # -- row lookup -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    def row(self, block: str, mode: str) -> int:
        """Row index of (block, mode); mirrors the scalar lookup error."""
        try:
            return self.row_of[(block, mode)]
        except KeyError:
            raise CharacterizationError(
                f"compiled table has no row for block {block!r} mode {mode!r}"
            ) from None

    def rows(self, keys: Sequence[tuple[str, str]]) -> np.ndarray:
        """Row indices of several (block, mode) keys."""
        return np.array([self.row(block, mode) for block, mode in keys], dtype=np.intp)

    # -- vectorized evaluation ------------------------------------------------

    def effective_voltage(self, rows: np.ndarray, supply_v) -> np.ndarray:
        """Per-(row, point) evaluation voltage, shape ``(R, P)``.

        Rows tracking the core supply see the per-point supply voltage; rows
        on their own rail see their constant rail voltage.
        """
        supply = _as_condition_array(supply_v, "supply voltage")
        if np.any(supply <= 0.0):
            raise ConfigurationError("supply voltage must be positive")
        rows = np.asarray(rows, dtype=np.intp)
        return np.where(
            self.tracks_core_supply[rows, None],
            supply[None, :],
            self.rail_voltage_v[rows, None],
        )

    def dynamic_power_w(
        self,
        rows: np.ndarray,
        supply_v,
        process_dynamic=1.0,
        activity=1.0,
        _voltage: np.ndarray | None = None,
    ) -> np.ndarray:
        """Dynamic power of ``rows`` at each condition, shape ``(R, P)``.

        ``activity`` may be a scalar, an ``(R,)`` array (one factor per
        selected row), or a 2-D array broadcastable to ``(R, P)`` — pass
        ``(R, P)`` for per-(row, point) factors or ``activity[None, :]``
        (shape ``(1, P)``) for a per-point workload column.  A 1-D array is
        always interpreted per *row*, never per point.  The factor is raised
        to each row's activity exponent exactly like the scalar model.
        ``_voltage`` lets callers that already built the effective-voltage
        matrix for these rows pass it in.
        """
        rows = np.asarray(rows, dtype=np.intp)
        voltage = self.effective_voltage(rows, supply_v) if _voltage is None else _voltage
        process = _as_condition_array(process_dynamic, "process factor")
        if np.any(process < 0.0):
            raise ConfigurationError("process factor must be non-negative")
        activity_arr = np.asarray(activity, dtype=np.float64)
        if np.any(activity_arr < 0.0):
            raise ConfigurationError("activity factor must be non-negative")
        voltage_scale = (voltage / self.dynamic_reference_v[rows, None]) ** 2
        if activity_arr.ndim == 2:
            # Per-(row, point) factors: broadcast against the (R, 1) exponent
            # column so every element keeps the scalar model's a**exponent.
            activity_scale = activity_arr ** self.activity_exponent[rows, None]
        else:
            activity_scale = np.atleast_1d(
                activity_arr ** self.activity_exponent[rows]
            )[:, None]
        return (
            self.dynamic_reference_w[rows, None]
            * voltage_scale
            * self.frequency_scale[rows, None]
            * activity_scale
            * process[None, :]
        )

    def static_power_w(
        self,
        rows: np.ndarray,
        supply_v,
        temperature_c,
        process_leakage=1.0,
        _voltage: np.ndarray | None = None,
    ) -> np.ndarray:
        """Static (leakage) power of ``rows`` at each condition, ``(R, P)``."""
        rows = np.asarray(rows, dtype=np.intp)
        voltage = self.effective_voltage(rows, supply_v) if _voltage is None else _voltage
        temperature = _as_condition_array(temperature_c, "temperature")
        process = _as_condition_array(process_leakage, "process factor")
        if np.any(process < 0.0):
            raise ConfigurationError("process factor must be non-negative")
        temperature_factor = 2.0 ** (
            (temperature[None, :] - self.leakage_reference_t[rows, None])
            / self.doubling_celsius[rows, None]
        )
        reference_v = self.leakage_reference_v[rows, None]
        voltage_factor = np.maximum(
            0.0,
            1.0 + self.dibl_coefficient[rows, None] * (voltage - reference_v) / reference_v,
        )
        return (
            self.leakage_reference_w[rows, None]
            * temperature_factor
            * voltage_factor
            * process[None, :]
        )

    def breakdown_components(
        self,
        rows: np.ndarray,
        supply_v,
        temperature_c,
        process_dynamic=1.0,
        process_leakage=1.0,
        activity=1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dynamic and static power of ``rows``, each shaped ``(R, P)``.

        This is the batch equivalent of :func:`repro.power.models.breakdown_at`
        for the whole row selection at once.  The effective-voltage matrix is
        built once and shared by both kernels.
        """
        rows = np.asarray(rows, dtype=np.intp)
        voltage = self.effective_voltage(rows, supply_v)
        dynamic = self.dynamic_power_w(
            rows,
            supply_v,
            process_dynamic=process_dynamic,
            activity=activity,
            _voltage=voltage,
        )
        static = self.static_power_w(
            rows,
            supply_v,
            temperature_c,
            process_leakage=process_leakage,
            _voltage=voltage,
        )
        return dynamic, static

    def total_power_w(
        self,
        rows: np.ndarray,
        supply_v,
        temperature_c,
        process_dynamic=1.0,
        process_leakage=1.0,
        activity=1.0,
    ) -> np.ndarray:
        """Summed (dynamic + static) power of ``rows`` per condition, ``(P,)``."""
        dynamic, static = self.breakdown_components(
            rows,
            supply_v,
            temperature_c,
            process_dynamic=process_dynamic,
            process_leakage=process_leakage,
            activity=activity,
        )
        return (dynamic + static).sum(axis=0)
