"""The power database — the paper's "dynamic spreadsheet".

All per-block power characterization data is collected here and can be
queried at any working condition.  The database is also the object the
optimization step rewrites: applying a technique to a block produces a new
database with the affected entries scaled, after which the flow re-estimates
the total power exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.conditions.operating_point import OperatingPoint
from repro.errors import CharacterizationError, ConfigurationError
from repro.power.entry import PowerEntry
from repro.power.models import PowerBreakdown


@dataclass
class PowerDatabase:
    """A collection of :class:`PowerEntry` rows keyed by (block, mode).

    The database behaves like the paper's dynamic spreadsheet: each row holds
    the characterized power of one block in one mode, and every query is made
    at an explicit :class:`OperatingPoint` so the same data answers "what
    does the node draw at -40 degC and 1.1 V" as readily as the nominal case.
    """

    name: str = "sensor-node"
    _entries: dict[tuple[str, str], PowerEntry] = field(default_factory=dict)
    #: Lazily-built per-block index: block -> {mode -> entry}.  ``None`` marks
    #: it stale; ``add``/``remove`` invalidate it and every transformation
    #: method returns a fresh clone (whose index starts unbuilt), so block
    #: queries never scan all entries linearly.
    _block_index: dict[str, dict[str, PowerEntry]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Monotonic mutation counter bumped by ``add``/``remove``.  Derived
    #: structures built from a snapshot of the entries (e.g. the compiled
    #: power table) compare it to detect staleness.
    _version: int = field(default=0, init=False, repr=False, compare=False)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_entries(cls, entries: Iterable[PowerEntry], name: str = "sensor-node") -> "PowerDatabase":
        """Build a database from an iterable of entries."""
        database = cls(name=name)
        for entry in entries:
            database.add(entry)
        return database

    def add(self, entry: PowerEntry, overwrite: bool = False) -> None:
        """Add an entry; refuses to silently overwrite unless ``overwrite``."""
        if entry.key in self._entries and not overwrite:
            raise ConfigurationError(
                f"entry for block {entry.block!r} mode {entry.mode!r} already exists"
            )
        self._entries[entry.key] = entry
        self._block_index = None
        self._version += 1

    def remove(self, block: str, mode: str) -> None:
        """Remove one entry."""
        key = (block, mode)
        if key not in self._entries:
            raise CharacterizationError(
                f"no entry for block {block!r} mode {mode!r} to remove"
            )
        del self._entries[key]
        self._block_index = None
        self._version += 1

    # -- queries -------------------------------------------------------------

    def _index(self) -> dict[str, dict[str, PowerEntry]]:
        """The per-block index, rebuilt on demand after a mutation."""
        if self._block_index is None:
            index: dict[str, dict[str, PowerEntry]] = {}
            for entry in self._entries.values():
                index.setdefault(entry.block, {})[entry.mode] = entry
            self._block_index = index
        return self._block_index

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[PowerEntry]:
        return iter(self._entries.values())

    @property
    def blocks(self) -> list[str]:
        """Sorted list of distinct block names."""
        return sorted(self._index())

    def modes_of(self, block: str) -> list[str]:
        """Sorted list of modes characterized for ``block``."""
        by_mode = self._index().get(block)
        if not by_mode:
            raise CharacterizationError(f"no entries for block {block!r}")
        return sorted(by_mode)

    def entry(self, block: str, mode: str) -> PowerEntry:
        """Look up the entry for (block, mode).

        Raises:
            CharacterizationError: if the entry does not exist; the message
                lists the modes that are characterized, which makes typos in
                architecture descriptions easy to diagnose.
        """
        key = (block, mode)
        if key not in self._entries:
            available = self._index().get(block)
            if available:
                raise CharacterizationError(
                    f"block {block!r} has no mode {mode!r}; characterized modes: "
                    f"{sorted(available)}"
                )
            raise CharacterizationError(
                f"block {block!r} is not characterized; known blocks: {self.blocks}"
            )
        return self._entries[key]

    def entries_for(self, block: str) -> list[PowerEntry]:
        """All entries of one block."""
        by_mode = self._index().get(block)
        if not by_mode:
            raise CharacterizationError(f"no entries for block {block!r}")
        return sorted(by_mode.values(), key=lambda e: e.mode)

    def power(
        self, block: str, mode: str, point: OperatingPoint, activity: float = 1.0
    ) -> PowerBreakdown:
        """Power breakdown of (block, mode) at ``point``."""
        return self.entry(block, mode).breakdown(point, activity=activity)

    def total_power(
        self,
        modes: Mapping[str, str],
        point: OperatingPoint,
        activities: Mapping[str, float] | None = None,
    ) -> PowerBreakdown:
        """Total node power for a given mode assignment.

        Args:
            modes: mapping block name -> mode name describing the
                instantaneous state of every block.
            point: working conditions.
            activities: optional per-block activity factors.
        """
        activities = activities or {}
        total = PowerBreakdown.zero()
        for block, mode in modes.items():
            total = total + self.power(
                block, mode, point, activity=activities.get(block, 1.0)
            )
        return total

    # -- transformation ------------------------------------------------------

    def copy(self, name: str | None = None) -> "PowerDatabase":
        """Shallow copy (entries are immutable, so sharing them is safe)."""
        clone = PowerDatabase(name=name or self.name)
        clone._entries = dict(self._entries)
        return clone

    def replace_entry(self, entry: PowerEntry) -> "PowerDatabase":
        """Return a copy with one entry replaced (the entry must exist)."""
        if entry.key not in self._entries:
            raise CharacterizationError(
                f"cannot replace missing entry {entry.block!r}/{entry.mode!r}"
            )
        clone = self.copy()
        clone._entries[entry.key] = entry
        return clone

    def scale_block(
        self,
        block: str,
        dynamic_factor: float = 1.0,
        static_factor: float = 1.0,
        modes: Iterable[str] | None = None,
        note: str = "",
    ) -> "PowerDatabase":
        """Return a copy with the given block's entries scaled.

        This is the primitive every optimization technique reduces to.

        Args:
            block: block whose entries to scale.
            dynamic_factor: multiplier on the dynamic reference power.
            static_factor: multiplier on the leakage reference power.
            modes: restrict the scaling to these modes; all modes by default.
            note: provenance annotation recorded on the scaled entries.
        """
        target_modes = set(modes) if modes is not None else None
        clone = self.copy()
        touched = 0
        for key, entry in list(clone._entries.items()):
            if entry.block != block:
                continue
            if target_modes is not None and entry.mode not in target_modes:
                continue
            clone._entries[key] = entry.scaled(dynamic_factor, static_factor, note=note)
            touched += 1
        if touched == 0:
            raise CharacterizationError(
                f"scale_block matched no entries for block {block!r}"
                + (f" modes {sorted(target_modes)}" if target_modes else "")
            )
        return clone

    def map_entries(
        self, transform: Callable[[PowerEntry], PowerEntry], name: str | None = None
    ) -> "PowerDatabase":
        """Return a copy with every entry passed through ``transform``."""
        clone = PowerDatabase(name=name or self.name)
        for entry in self._entries.values():
            new_entry = transform(entry)
            clone._entries[new_entry.key] = new_entry
        return clone

    def merged_with(self, other: "PowerDatabase", overwrite: bool = False) -> "PowerDatabase":
        """Merge two databases; ``other`` wins on conflicts when ``overwrite``."""
        clone = self.copy()
        for entry in other:
            if entry.key in clone._entries and not overwrite:
                raise ConfigurationError(
                    f"merge conflict on {entry.block!r}/{entry.mode!r}; "
                    "pass overwrite=True to let the other database win"
                )
            clone._entries[entry.key] = entry
        return clone

    # -- tabular views -------------------------------------------------------

    def table(
        self, point: OperatingPoint, blocks: Iterable[str] | None = None
    ) -> list[dict[str, object]]:
        """Tabular view of the database at ``point``.

        Returns one row per entry with block, mode, dynamic/static/total power
        in microwatts — the "spreadsheet view" used by reports and exports.
        """
        wanted = set(blocks) if blocks is not None else None
        rows: list[dict[str, object]] = []
        for entry in sorted(self._entries.values(), key=lambda e: e.key):
            if wanted is not None and entry.block not in wanted:
                continue
            power = entry.breakdown(point)
            rows.append(
                {
                    "block": entry.block,
                    "mode": entry.mode,
                    "dynamic_uw": power.dynamic_w * 1e6,
                    "static_uw": power.static_w * 1e6,
                    "total_uw": power.total_w * 1e6,
                    "rail_v": entry.rail_voltage_v,
                    "clock_hz": entry.clock_frequency_hz,
                    "notes": entry.notes,
                }
            )
        return rows

    def validate_against(self, required: Mapping[str, Iterable[str]]) -> None:
        """Check that every (block, mode) pair in ``required`` is characterized.

        Architectures call this before an analysis run so that a missing
        characterization fails fast with a complete list instead of midway
        through an emulation.
        """
        missing: list[str] = []
        for block, modes in required.items():
            for mode in modes:
                if (block, mode) not in self._entries:
                    missing.append(f"{block}/{mode}")
        if missing:
            raise CharacterizationError(
                "power database "
                f"{self.name!r} is missing entries: {', '.join(sorted(missing))}"
            )
