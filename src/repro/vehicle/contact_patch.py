"""Contact-patch timing model.

The Cyber Tyre acquisition strategy samples the in-tyre accelerometer around
the contact patch (where the tread deformation carries the friction
information), so the acquisition duty cycle per wheel round is tied to the
contact-patch transit time.  This module computes the per-revolution timing
of the patch and the number of samples the acquisition chain collects while
crossing it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.vehicle.wheel import Wheel


@dataclass(frozen=True)
class ContactPatchWindow:
    """Timing of one contact-patch crossing inside a wheel round.

    Attributes:
        start_s: start time of the crossing, measured from the start of the
            revolution.
        duration_s: transit time of the patch.
        samples: number of ADC samples collected while crossing, given the
            acquisition sample rate.
    """

    start_s: float
    duration_s: float
    samples: int


@dataclass(frozen=True)
class ContactPatchModel:
    """Computes contact-patch windows and acquisition sample counts.

    Attributes:
        wheel: the wheel whose tyre defines the patch geometry.
        guard_factor: the acquisition window is widened by this factor around
            the geometric patch transit (the signal of interest extends a bit
            before and after the patch itself).
        phase_fraction: where inside the revolution the patch crossing starts,
            as a fraction of the revolution period.  Physically arbitrary (it
            depends on where the sensor is glued), but it fixes the trace
            layout so Fig. 3 style plots are reproducible.
    """

    wheel: Wheel = Wheel()
    guard_factor: float = 1.5
    phase_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.guard_factor < 1.0:
            raise ConfigurationError("guard factor must be >= 1")
        if not 0.0 <= self.phase_fraction < 1.0:
            raise ConfigurationError("phase fraction must be in [0, 1)")

    def acquisition_window_s(self, speed_kmh: float) -> float:
        """Duration of the acquisition window per revolution, in seconds."""
        return self.wheel.contact_patch_duration_s(speed_kmh) * self.guard_factor

    def acquisition_duty_cycle(self, speed_kmh: float) -> float:
        """Fraction of the wheel round spent acquiring around the patch.

        Note that this is *speed independent* to first order: both the patch
        transit time and the revolution period scale as ``1/v``, so their
        ratio is the geometric patch fraction times the guard factor.  It is
        still computed from the timing quantities so that tyres with
        different geometry produce different duty cycles.
        """
        window = self.acquisition_window_s(speed_kmh)
        period = self.wheel.revolution_period_s(speed_kmh)
        return min(1.0, window / period)

    def samples_per_revolution(self, speed_kmh: float, sample_rate_hz: float) -> int:
        """Number of samples collected per revolution at ``sample_rate_hz``.

        At least one sample is always collected while the vehicle moves: the
        node still refreshes pressure/temperature once per revolution even
        when the patch transit is shorter than a sample interval.
        """
        if sample_rate_hz <= 0.0:
            raise ConfigurationError("sample rate must be positive")
        window = self.acquisition_window_s(speed_kmh)
        return max(1, int(math.floor(window * sample_rate_hz)))

    def window(self, speed_kmh: float, sample_rate_hz: float) -> ContactPatchWindow:
        """Full timing description of the patch crossing at ``speed_kmh``."""
        period = self.wheel.revolution_period_s(speed_kmh)
        duration = min(period, self.acquisition_window_s(speed_kmh))
        start = self.phase_fraction * period
        if start + duration > period:
            start = period - duration
        return ContactPatchWindow(
            start_s=start,
            duration_s=duration,
            samples=self.samples_per_revolution(speed_kmh, sample_rate_hz),
        )
