"""Vehicle substrate: tyre geometry, wheel kinematics and drive cycles.

The paper treats the *wheel round* as the basic timing unit of the whole
analysis, so the relationship between cruising speed, rolling circumference
and revolution period is the foundation every other package builds on.
"""

from repro.vehicle.contact_patch import ContactPatchModel
from repro.vehicle.drive_cycle import (
    DriveCycle,
    DriveCyclePhase,
    constant_cruise,
    highway_cycle,
    nedc_like_cycle,
    ramp_cycle,
    urban_cycle,
)
from repro.vehicle.tyre import Tyre, tyre_from_etrto
from repro.vehicle.wheel import Wheel

__all__ = [
    "Tyre",
    "tyre_from_etrto",
    "Wheel",
    "ContactPatchModel",
    "DriveCycle",
    "DriveCyclePhase",
    "constant_cruise",
    "urban_cycle",
    "highway_cycle",
    "nedc_like_cycle",
    "ramp_cycle",
]
