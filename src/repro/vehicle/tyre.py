"""Tyre geometry.

The rolling circumference converts a cruising speed into the wheel-round
period; the contact-patch length sets how long the in-tyre accelerometer sees
the road per revolution.  Both are derived from the standard ETRTO size
designation (e.g. ``225/45R17``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Inches to metres.
_INCH_M = 0.0254

#: Dynamic rolling-radius reduction versus the unloaded radius.  Loaded tyres
#: roll on a slightly smaller effective radius; 3 % is a common approximation.
_ROLLING_RADIUS_FACTOR = 0.97


@dataclass(frozen=True)
class Tyre:
    """Geometric description of a tyre.

    Attributes:
        width_m: section width in metres.
        aspect_ratio: sidewall height as a fraction of the width (0.45 for a
            ``/45`` tyre).
        rim_diameter_m: rim diameter in metres.
        contact_patch_length_m: length of the road contact patch in metres.
        designation: the original size string, if built from one.
    """

    width_m: float
    aspect_ratio: float
    rim_diameter_m: float
    contact_patch_length_m: float = 0.12
    designation: str = ""

    def __post_init__(self) -> None:
        if self.width_m <= 0.0:
            raise ConfigurationError("tyre width must be positive")
        if not 0.2 <= self.aspect_ratio <= 1.0:
            raise ConfigurationError("aspect ratio must be in [0.2, 1.0]")
        if self.rim_diameter_m <= 0.0:
            raise ConfigurationError("rim diameter must be positive")
        if self.contact_patch_length_m <= 0.0:
            raise ConfigurationError("contact patch length must be positive")

    @property
    def sidewall_height_m(self) -> float:
        """Sidewall height in metres."""
        return self.width_m * self.aspect_ratio

    @property
    def unloaded_radius_m(self) -> float:
        """Unloaded (free) radius in metres."""
        return self.rim_diameter_m / 2.0 + self.sidewall_height_m

    @property
    def rolling_radius_m(self) -> float:
        """Effective (dynamic) rolling radius in metres."""
        return self.unloaded_radius_m * _ROLLING_RADIUS_FACTOR

    @property
    def rolling_circumference_m(self) -> float:
        """Distance travelled per wheel revolution in metres."""
        return 2.0 * math.pi * self.rolling_radius_m

    @property
    def contact_patch_angle_rad(self) -> float:
        """Angular extent of the contact patch, in radians of wheel rotation."""
        return self.contact_patch_length_m / self.rolling_radius_m

    @property
    def contact_patch_fraction(self) -> float:
        """Fraction of a revolution spent inside the contact patch."""
        return self.contact_patch_angle_rad / (2.0 * math.pi)

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        label = self.designation or "custom tyre"
        return (
            f"{label}: rolling radius {self.rolling_radius_m * 1e3:.0f} mm, "
            f"circumference {self.rolling_circumference_m:.3f} m, "
            f"contact patch {self.contact_patch_length_m * 1e3:.0f} mm"
        )


_ETRTO_PATTERN = re.compile(
    r"^\s*(?P<width>\d{3})\s*/\s*(?P<aspect>\d{2})\s*R\s*(?P<rim>\d{2})\s*$",
    re.IGNORECASE,
)


def tyre_from_etrto(designation: str, contact_patch_length_m: float = 0.12) -> Tyre:
    """Build a :class:`Tyre` from an ETRTO size string such as ``"225/45R17"``.

    Args:
        designation: the standard metric tyre size designation.
        contact_patch_length_m: contact patch length; defaults to 12 cm which
            is representative of a passenger-car tyre at nominal load and
            pressure.

    Raises:
        ConfigurationError: if the designation cannot be parsed.
    """
    match = _ETRTO_PATTERN.match(designation)
    if match is None:
        raise ConfigurationError(
            f"cannot parse tyre designation {designation!r}; expected e.g. '225/45R17'"
        )
    width_mm = float(match.group("width"))
    aspect = float(match.group("aspect")) / 100.0
    rim_in = float(match.group("rim"))
    return Tyre(
        width_m=width_mm * 1e-3,
        aspect_ratio=aspect,
        rim_diameter_m=rim_in * _INCH_M,
        contact_patch_length_m=contact_patch_length_m,
        designation=designation.strip().upper().replace(" ", ""),
    )


#: The reference tyre used by the examples and benchmarks (a common passenger
#: car fitment close to the one discussed in the Cyber Tyre literature).
REFERENCE_TYRE = tyre_from_etrto("225/45R17")
