"""Wheel kinematics: the bridge between cruising speed and the wheel round.

The paper's basic timing unit is one wheel revolution.  This module converts
between vehicle speed, revolution period, revolution rate and centripetal
acceleration at the tyre liner (which drives both the scavenger excitation
and the accelerometer signal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import kmh_to_ms, ms_to_kmh
from repro.vehicle.tyre import REFERENCE_TYRE, Tyre


@dataclass(frozen=True)
class Wheel:
    """A wheel: a tyre plus the kinematic helpers the analysis needs."""

    tyre: Tyre = REFERENCE_TYRE

    def revolution_period_s(self, speed_kmh: float) -> float:
        """Duration of one wheel round, in seconds, at ``speed_kmh``.

        Raises:
            ConfigurationError: if the speed is not strictly positive — a
                stationary wheel has no revolution period.
        """
        if speed_kmh <= 0.0:
            raise ConfigurationError(
                "revolution period is undefined at zero or negative speed"
            )
        return self.tyre.rolling_circumference_m / kmh_to_ms(speed_kmh)

    def revolution_periods_s(self, speeds_kmh) -> np.ndarray:
        """Vectorized :meth:`revolution_period_s` over an array of speeds.

        Keeps the period definition in one place for batch consumers
        (Monte-Carlo sweeps, grid evaluators); same positivity contract as
        the scalar method.
        """
        speeds = np.asarray(speeds_kmh, dtype=np.float64)
        if np.any(speeds <= 0.0):
            raise ConfigurationError(
                "revolution period is undefined at zero or negative speed"
            )
        return self.tyre.rolling_circumference_m / kmh_to_ms(speeds)

    def revolutions_per_second(self, speed_kmh: float) -> float:
        """Wheel revolution rate in Hz at ``speed_kmh`` (0 when stationary)."""
        if speed_kmh < 0.0:
            raise ConfigurationError("speed must be non-negative")
        if speed_kmh == 0.0:
            return 0.0
        return kmh_to_ms(speed_kmh) / self.tyre.rolling_circumference_m

    def revolutions_over(self, distance_m: float) -> float:
        """Number of wheel revolutions needed to cover ``distance_m`` metres."""
        if distance_m < 0.0:
            raise ConfigurationError("distance must be non-negative")
        return distance_m / self.tyre.rolling_circumference_m

    def angular_rate_rad_s(self, speed_kmh: float) -> float:
        """Wheel angular rate in rad/s at ``speed_kmh``."""
        if speed_kmh < 0.0:
            raise ConfigurationError("speed must be non-negative")
        return kmh_to_ms(speed_kmh) / self.tyre.rolling_radius_m

    def centripetal_acceleration(self, speed_kmh: float) -> float:
        """Centripetal acceleration at the tyre liner in m/s^2.

        This is the quantity that excites an inertial (mass-spring)
        scavenger mounted on the inner liner: ``a = v^2 / r``.
        """
        if speed_kmh < 0.0:
            raise ConfigurationError("speed must be non-negative")
        speed_ms = kmh_to_ms(speed_kmh)
        return speed_ms * speed_ms / self.tyre.rolling_radius_m

    def speed_for_period(self, period_s: float) -> float:
        """Inverse of :meth:`revolution_period_s`: speed (km/h) giving ``period_s``."""
        if period_s <= 0.0:
            raise ConfigurationError("revolution period must be positive")
        return ms_to_kmh(self.tyre.rolling_circumference_m / period_s)

    def contact_patch_duration_s(self, speed_kmh: float) -> float:
        """Time spent in the contact patch per revolution at ``speed_kmh``."""
        if speed_kmh <= 0.0:
            raise ConfigurationError(
                "contact patch duration is undefined at zero or negative speed"
            )
        return self.tyre.contact_patch_length_m / kmh_to_ms(speed_kmh)
