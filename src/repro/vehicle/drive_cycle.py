"""Drive cycles: cruising-speed profiles for the long-window emulation.

The paper's emulator takes "a desired cruising speed profile" and checks
whether the monitoring system can stay active over the whole window.  Real
recorded traces are not available, so this module provides synthetic cycles
covering the same regimes: constant cruise, urban stop-and-go, extra-urban,
highway, a NEDC-like composite and configurable ramps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DriveCyclePhase:
    """One phase of a drive cycle: a speed ramp of a given duration.

    The speed varies linearly from ``start_kmh`` to ``end_kmh`` over
    ``duration_s`` seconds.  A constant-speed phase has equal start and end
    speeds; a stop has both at zero.
    """

    duration_s: float
    start_kmh: float
    end_kmh: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ConfigurationError("phase duration must be positive")
        if self.start_kmh < 0.0 or self.end_kmh < 0.0:
            raise ConfigurationError("phase speeds must be non-negative")

    def speed_at(self, t_in_phase_s: float) -> float:
        """Speed (km/h) at ``t_in_phase_s`` seconds into the phase."""
        if t_in_phase_s <= 0.0:
            return self.start_kmh
        if t_in_phase_s >= self.duration_s:
            return self.end_kmh
        fraction = t_in_phase_s / self.duration_s
        return self.start_kmh + fraction * (self.end_kmh - self.start_kmh)


@dataclass
class DriveCycle:
    """A cruising-speed profile made of consecutive :class:`DriveCyclePhase` items."""

    phases: list[DriveCyclePhase] = field(default_factory=list)
    name: str = "custom"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("a drive cycle needs at least one phase")

    @property
    def duration_s(self) -> float:
        """Total duration of the cycle in seconds."""
        return sum(phase.duration_s for phase in self.phases)

    def speed_at(self, time_s: float) -> float:
        """Speed in km/h at absolute time ``time_s`` (clamped to the cycle ends)."""
        if time_s <= 0.0:
            return self.phases[0].start_kmh
        remaining = time_s
        for phase in self.phases:
            if remaining <= phase.duration_s:
                return phase.speed_at(remaining)
            remaining -= phase.duration_s
        return self.phases[-1].end_kmh

    def sample(self, dt_s: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample the cycle on a uniform grid.

        Returns:
            ``(times, speeds)`` arrays; times start at 0 and end at the cycle
            duration (inclusive), speeds in km/h.
        """
        if dt_s <= 0.0:
            raise ConfigurationError("sampling step must be positive")
        times = np.arange(0.0, self.duration_s + dt_s / 2.0, dt_s)
        speeds = np.array([self.speed_at(float(t)) for t in times])
        return times, speeds

    def iter_steps(self, dt_s: float) -> Iterator[tuple[float, float]]:
        """Iterate ``(time, speed_kmh)`` pairs on a uniform grid of ``dt_s``."""
        times, speeds = self.sample(dt_s)
        for time_value, speed_value in zip(times, speeds):
            yield float(time_value), float(speed_value)

    def mean_speed_kmh(self, dt_s: float = 1.0) -> float:
        """Time-averaged speed of the cycle in km/h."""
        _, speeds = self.sample(dt_s)
        return float(np.mean(speeds))

    def max_speed_kmh(self) -> float:
        """Maximum speed reached over the cycle in km/h."""
        return max(max(p.start_kmh, p.end_kmh) for p in self.phases)

    def distance_m(self, dt_s: float = 1.0) -> float:
        """Distance covered over the cycle in metres (trapezoidal integration)."""
        times, speeds = self.sample(dt_s)
        return float(np.trapezoid(speeds / 3.6, times))

    def moving_fraction(self, dt_s: float = 1.0, threshold_kmh: float = 0.5) -> float:
        """Fraction of the cycle duration spent above ``threshold_kmh``."""
        _, speeds = self.sample(dt_s)
        if speeds.size == 0:
            return 0.0
        return float(np.mean(speeds > threshold_kmh))

    def concatenated(self, other: "DriveCycle", name: str = "") -> "DriveCycle":
        """Return a new cycle consisting of this cycle followed by ``other``."""
        return DriveCycle(
            phases=list(self.phases) + list(other.phases),
            name=name or f"{self.name}+{other.name}",
        )

    def repeated(self, count: int, name: str = "") -> "DriveCycle":
        """Return this cycle repeated ``count`` times."""
        if count < 1:
            raise ConfigurationError("repetition count must be at least 1")
        return DriveCycle(
            phases=list(self.phases) * count,
            name=name or f"{self.name}x{count}",
        )

    def scaled(self, speed_factor: float, name: str = "") -> "DriveCycle":
        """Return this cycle with every speed multiplied by ``speed_factor``.

        Phase durations are unchanged — a faster driver covers more distance
        in the same time.  This is the fleet runner's drive-style axis: a
        population samples per-vehicle speed-scale factors and plays the
        same route at each vehicle's own pace.  A factor of 1 returns
        ``self`` unchanged (same object), so cohorts keyed on the cycle
        share materializations.
        """
        if speed_factor <= 0.0:
            raise ConfigurationError("speed factor must be positive")
        if speed_factor == 1.0:
            return self
        return DriveCycle(
            phases=[
                DriveCyclePhase(
                    duration_s=phase.duration_s,
                    start_kmh=phase.start_kmh * speed_factor,
                    end_kmh=phase.end_kmh * speed_factor,
                    label=phase.label,
                )
                for phase in self.phases
            ],
            name=name or f"{self.name}*{speed_factor:g}",
        )


# ---------------------------------------------------------------------------
# Cycle builders
# ---------------------------------------------------------------------------


def constant_cruise(speed_kmh: float, duration_s: float = 600.0) -> DriveCycle:
    """A constant-speed cruise, the condition of the paper's Fig. 2 snapshot."""
    if speed_kmh < 0.0:
        raise ConfigurationError("cruise speed must be non-negative")
    phase = DriveCyclePhase(
        duration_s=duration_s,
        start_kmh=speed_kmh,
        end_kmh=speed_kmh,
        label=f"cruise {speed_kmh:.0f} km/h",
    )
    return DriveCycle(phases=[phase], name=f"cruise-{speed_kmh:.0f}")


def ramp_cycle(
    start_kmh: float,
    end_kmh: float,
    ramp_duration_s: float = 300.0,
    hold_duration_s: float = 300.0,
) -> DriveCycle:
    """Accelerate (or decelerate) linearly, then hold the final speed."""
    phases = [
        DriveCyclePhase(ramp_duration_s, start_kmh, end_kmh, label="ramp"),
        DriveCyclePhase(hold_duration_s, end_kmh, end_kmh, label="hold"),
    ]
    return DriveCycle(phases=phases, name=f"ramp-{start_kmh:.0f}-{end_kmh:.0f}")


def _stop_and_go(peak_kmh: float, cruise_s: float, stop_s: float) -> list[DriveCyclePhase]:
    """One urban micro-trip: accelerate, cruise, brake, stand still."""
    return [
        DriveCyclePhase(15.0, 0.0, peak_kmh, label="accelerate"),
        DriveCyclePhase(cruise_s, peak_kmh, peak_kmh, label="cruise"),
        DriveCyclePhase(10.0, peak_kmh, 0.0, label="brake"),
        DriveCyclePhase(stop_s, 0.0, 0.0, label="stop"),
    ]


def urban_cycle(repetitions: int = 4) -> DriveCycle:
    """An urban stop-and-go cycle (ECE-15-like micro-trips, peaks 15-50 km/h)."""
    if repetitions < 1:
        raise ConfigurationError("repetitions must be at least 1")
    micro_trips: list[DriveCyclePhase] = []
    peaks = (15.0, 32.0, 50.0)
    cruises = (10.0, 25.0, 12.0)
    stops = (22.0, 15.0, 20.0)
    for _ in range(repetitions):
        for peak, cruise, stop in zip(peaks, cruises, stops):
            micro_trips.extend(_stop_and_go(peak, cruise, stop))
    return DriveCycle(phases=micro_trips, name=f"urban-x{repetitions}")


def highway_cycle(duration_s: float = 1800.0, cruise_kmh: float = 120.0) -> DriveCycle:
    """A highway cycle: on-ramp acceleration, long cruise, brief overtakes."""
    phases = [
        DriveCyclePhase(30.0, 0.0, cruise_kmh, label="on-ramp"),
        DriveCyclePhase(duration_s * 0.4, cruise_kmh, cruise_kmh, label="cruise"),
        DriveCyclePhase(20.0, cruise_kmh, cruise_kmh + 15.0, label="overtake"),
        DriveCyclePhase(60.0, cruise_kmh + 15.0, cruise_kmh + 15.0, label="overtake hold"),
        DriveCyclePhase(20.0, cruise_kmh + 15.0, cruise_kmh, label="settle"),
        DriveCyclePhase(duration_s * 0.4, cruise_kmh, cruise_kmh, label="cruise"),
        DriveCyclePhase(45.0, cruise_kmh, 0.0, label="exit"),
    ]
    return DriveCycle(phases=phases, name="highway")


def nedc_like_cycle() -> DriveCycle:
    """A NEDC-like composite: four urban micro-trip groups plus an extra-urban part.

    The extra-urban part ramps through 70, 100 and 120 km/h plateaus before
    decelerating to a stop, mirroring the structure (not the exact second-by-
    second trace) of the New European Driving Cycle.
    """
    urban = urban_cycle(repetitions=4)
    extra_urban_phases = [
        DriveCyclePhase(25.0, 0.0, 70.0, label="accelerate"),
        DriveCyclePhase(50.0, 70.0, 70.0, label="plateau 70"),
        DriveCyclePhase(15.0, 70.0, 100.0, label="accelerate"),
        DriveCyclePhase(60.0, 100.0, 100.0, label="plateau 100"),
        DriveCyclePhase(15.0, 100.0, 120.0, label="accelerate"),
        DriveCyclePhase(60.0, 120.0, 120.0, label="plateau 120"),
        DriveCyclePhase(35.0, 120.0, 0.0, label="final brake"),
        DriveCyclePhase(20.0, 0.0, 0.0, label="final stop"),
    ]
    extra_urban = DriveCycle(phases=extra_urban_phases, name="extra-urban")
    return urban.concatenated(extra_urban, name="nedc-like")


def cycle_from_samples(
    times_s: Sequence[float] | Iterable[float],
    speeds_kmh: Sequence[float] | Iterable[float],
    name: str = "sampled",
) -> DriveCycle:
    """Build a drive cycle from sampled ``(time, speed)`` points.

    Consecutive samples become linear phases.  Times must be strictly
    increasing and start at zero or later.
    """
    times = [float(t) for t in times_s]
    speeds = [float(s) for s in speeds_kmh]
    if len(times) != len(speeds):
        raise ConfigurationError("times and speeds must have the same length")
    if len(times) < 2:
        raise ConfigurationError("at least two samples are needed")
    phases: list[DriveCyclePhase] = []
    for index in range(1, len(times)):
        duration = times[index] - times[index - 1]
        if duration <= 0.0:
            raise ConfigurationError("sample times must be strictly increasing")
        phases.append(
            DriveCyclePhase(
                duration_s=duration,
                start_kmh=speeds[index - 1],
                end_kmh=speeds[index],
            )
        )
    return DriveCycle(phases=phases, name=name)
