"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so that a
caller embedding the toolkit can distinguish modelling errors from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with inconsistent parameters."""


class ConfigError(ConfigurationError):
    """A declarative scenario document (dict/JSON) is malformed or invalid.

    Raised by :mod:`repro.scenario` when a spec references an unknown
    component, carries an unknown field, or fails component construction.
    Subclasses :class:`ConfigurationError` so existing ``except`` clauses
    keep working.
    """


class UnknownBlockError(ReproError):
    """A functional block name was not found in a node or database."""


class UnknownModeError(ReproError):
    """A block operating mode name was not found."""


class CharacterizationError(ReproError):
    """The power database cannot answer a query (missing entry, bad corner)."""


class ScheduleError(ReproError):
    """An intra-revolution activity schedule is infeasible or inconsistent."""


class EmulationError(ReproError):
    """The long-window emulator detected an inconsistent state."""


class EngineError(ReproError):
    """The chunked execution engine lost work it could not recover.

    Raised when a worker process dies (or an item keeps failing) beyond the
    engine's configured retry budget; the message names the in-flight item
    indices so a checkpointed run knows exactly what was lost.
    """


class CheckpointError(ReproError):
    """A checkpoint directory is unusable: wrong run, corrupt, or incomplete.

    Every message is a one-line actionable diagnosis (different run key,
    digest mismatch, missing journal file) — resuming never silently
    reuses a journal it cannot fully trust.
    """


class PackageError(ReproError):
    """A run package failed validation (schema, artifact digest, KPI floor)."""


class AnalysisError(ReproError):
    """An analysis step (balance, break-even, operating windows) failed."""


class OptimizationError(ReproError):
    """An optimization technique could not be applied to a block."""


class ExportError(ReproError):
    """Serialization of results to CSV/JSON failed."""


class ServeError(ReproError):
    """The serving layer rejected a request or an HTTP exchange failed.

    Raised by :mod:`repro.serve` — the job manager for requests against an
    unusable manager state (shut down, unknown job) and the client for
    non-success HTTP responses; the message carries the server's one-line
    ``error`` diagnosis verbatim.  The client refines it into
    :class:`ServeConnectionError` (retryable — no replica answered) and
    :class:`ServeHTTPError` (terminal — a replica answered with an error),
    so callers can retry exactly the failures retrying can fix.
    """


class ServeConnectionError(ServeError):
    """No serve replica could be reached (refused, reset, or timed out).

    The *retryable* half of the client's error taxonomy: the request never
    produced a server-side answer, and submissions are content-addressed,
    so retrying — on the same replica or a different one — is always safe.
    Raised only after the client has exhausted its endpoints and retry
    budget.
    """


class ServeHTTPError(ServeError):
    """A serve replica answered with a non-success HTTP status.

    The *terminal* half of the taxonomy: the server received the request
    and rejected it, so retrying the same bytes yields the same answer.
    Carries the response ``status`` and raw ``body`` so callers can
    distinguish, e.g., a 404 after a failover (the job id belongs to a
    dead replica — resubmit) from a 400 (the document itself is bad).
    """

    def __init__(self, message: str, status: int = 0, body: bytes = b"") -> None:
        super().__init__(message)
        self.status = status
        self.body = body
