"""Piezoelectric in-tyre scavenger model.

A piezoelectric patch bonded to the inner liner is strained twice per
revolution when it enters and leaves the contact patch.  The strain amplitude
grows with the tyre deformation rate (roughly with the contact-patch
acceleration step, i.e. with the square of the speed) until the deformation
is mechanically limited, after which the harvested energy per revolution
saturates.

The model is semi-empirical: energy per revolution follows a power law of
speed, anchored at a reference point, with a soft saturation.  The reference
point is calibrated so that a unit-size device balances the baseline Sensor
Node in the few-tens-of-km/h range, reproducing the qualitative Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class PiezoelectricScavenger(EnergyScavenger):
    """Piezoelectric patch harvester.

    Attributes:
        reference_energy_j: energy per revolution at the reference speed for
            a unit-size device.
        reference_speed_kmh: speed at which the reference energy is defined.
        exponent: power-law exponent of the speed dependence below
            saturation.
        saturation_energy_j: asymptotic energy per revolution for a unit-size
            device (mechanical strain limiter).
    """

    reference_energy_j: float = 110e-6
    reference_speed_kmh: float = 60.0
    exponent: float = 1.6
    saturation_energy_j: float = 500e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.reference_energy_j <= 0.0:
            raise ConfigurationError("reference energy must be positive")
        if self.reference_speed_kmh <= 0.0:
            raise ConfigurationError("reference speed must be positive")
        if self.exponent <= 0.0:
            raise ConfigurationError("speed exponent must be positive")
        if self.saturation_energy_j <= 0.0:
            raise ConfigurationError("saturation energy must be positive")

    @property
    def technology(self) -> str:
        return "piezoelectric"

    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        """Power-law growth with a soft (reciprocal) saturation."""
        unsaturated = self.reference_energy_j * (
            speed_kmh / self.reference_speed_kmh
        ) ** self.exponent
        # Soft saturation: harmonic combination of the power law and the cap.
        return 1.0 / (1.0 / unsaturated + 1.0 / self.saturation_energy_j)

    def raw_energy_sweep_j(self, speeds_kmh) -> np.ndarray:
        """Vectorized power law + soft saturation (same operation order)."""
        speeds = np.asarray(speeds_kmh, dtype=float)
        unsaturated = self.reference_energy_j * (
            speeds / self.reference_speed_kmh
        ) ** self.exponent
        return 1.0 / (1.0 / unsaturated + 1.0 / self.saturation_energy_j)
