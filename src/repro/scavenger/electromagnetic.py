"""Electromagnetic (inductive) in-tyre scavenger model.

A seismic magnet-and-coil assembly excited by the contact-patch shock.  The
induced EMF grows linearly with the excitation velocity, so the energy per
event grows roughly quadratically with speed at low speed; damping and
end-stop limiting flatten the curve earlier than the piezoelectric patch, and
the relatively stiff suspension gives it a higher cut-in speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class ElectromagneticScavenger(EnergyScavenger):
    """Magnet-and-coil inertial harvester.

    Attributes:
        reference_energy_j: energy per revolution at the reference speed for
            a unit-size device.
        reference_speed_kmh: speed at which the reference energy is defined.
        exponent: low-speed power-law exponent (close to 2 for an inductive
            transducer).
        saturation_energy_j: end-stop limited energy per revolution.
    """

    minimum_speed_kmh: float = 10.0
    reference_energy_j: float = 110e-6
    reference_speed_kmh: float = 60.0
    exponent: float = 2.0
    saturation_energy_j: float = 320e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.reference_energy_j <= 0.0:
            raise ConfigurationError("reference energy must be positive")
        if self.reference_speed_kmh <= 0.0:
            raise ConfigurationError("reference speed must be positive")
        if self.exponent <= 0.0:
            raise ConfigurationError("speed exponent must be positive")
        if self.saturation_energy_j <= 0.0:
            raise ConfigurationError("saturation energy must be positive")

    @property
    def technology(self) -> str:
        return "electromagnetic"

    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        unsaturated = self.reference_energy_j * (
            speed_kmh / self.reference_speed_kmh
        ) ** self.exponent
        return 1.0 / (1.0 / unsaturated + 1.0 / self.saturation_energy_j)

    def raw_energy_sweep_j(self, speeds_kmh) -> np.ndarray:
        """Vectorized power law + end-stop saturation (same operation order)."""
        speeds = np.asarray(speeds_kmh, dtype=float)
        unsaturated = self.reference_energy_j * (
            speeds / self.reference_speed_kmh
        ) ** self.exponent
        return 1.0 / (1.0 / unsaturated + 1.0 / self.saturation_energy_j)
