"""Energy-storage elements buffering the harvested energy.

The scavenger output is bursty (one impulse per revolution) and the node
load is bursty too (acquisition/transmission bursts), so a storage element —
a supercapacitor or a thin-film rechargeable cell — sits between them.  The
long-window emulation charges and discharges this element and declares the
node inactive whenever the state of charge falls below the operating
threshold, which is exactly how the paper identifies operating windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.backend import resolve_backend
from repro.errors import ConfigurationError, EmulationError

# ---------------------------------------------------------------------------
# Ledger step primitives
#
# The charge/discharge/leak arithmetic is defined ONCE here and shared by
# three consumers: the mutating :class:`StorageElement` methods (the scalar,
# authoritative reference), the pure :func:`trajectory` kernel, and the
# emulator's array-based integration loop.  Keeping them single-sourced is
# what makes the emulator's byte-identity contract cheap to maintain — a
# change to the ledger semantics cannot desynchronize the paths.
# ---------------------------------------------------------------------------


def deposit_step(
    charge_j: float, stored_j: float, capacity_j: float
) -> tuple[float, float]:
    """One deposit: bank ``stored_j`` (already after charging losses).

    Returns ``(new_charge, banked)`` where ``banked`` is clipped to the
    remaining headroom (the conditioning circuit shunts the excess once the
    storage is full).
    """
    headroom = capacity_j - charge_j
    banked = min(stored_j, headroom)
    return charge_j + banked, banked


def withdraw_step(charge_j: float, required_j: float) -> tuple[float, bool]:
    """One withdrawal: drain ``required_j`` (already including discharge losses).

    Returns ``(new_charge, success)``; a shortfall drains the element to zero
    and reports failure — the brown-out semantics of the emulation.
    """
    if required_j > charge_j:
        return 0.0, False
    return charge_j - required_j, True


def leak_step(charge_j: float, leak_j: float) -> tuple[float, float]:
    """One self-discharge step; returns ``(new_charge, loss)``."""
    loss = min(charge_j, leak_j)
    return charge_j - loss, loss


@dataclass
class StorageElement:
    """A lossy, bounded energy reservoir.

    Attributes:
        capacity_j: usable energy capacity in joules.
        initial_charge_j: energy stored at the start of the emulation.
        charge_efficiency: fraction of the banked energy that ends up stored.
        discharge_efficiency: fraction of the stored energy that reaches the
            load (the complement is lost in the output regulator).
        self_discharge_w: constant self-discharge (leakage) power.
        minimum_operating_j: below this level the node brown-outs and must
            stop operating until the storage recovers above
            ``restart_level_j``.
        restart_level_j: hysteresis threshold for restarting after a
            brown-out; must be at least ``minimum_operating_j``.
        name: label used in reports.
    """

    capacity_j: float = 0.25
    initial_charge_j: float = 0.10
    charge_efficiency: float = 0.95
    discharge_efficiency: float = 0.90
    self_discharge_w: float = 0.3e-6
    minimum_operating_j: float = 0.01
    restart_level_j: float = 0.02
    name: str = "storage"
    _charge_j: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0.0:
            raise ConfigurationError("storage capacity must be positive")
        if not 0.0 <= self.initial_charge_j <= self.capacity_j:
            raise ConfigurationError("initial charge must lie within the capacity")
        for label, value in (
            ("charge_efficiency", self.charge_efficiency),
            ("discharge_efficiency", self.discharge_efficiency),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{label} must be in (0, 1]")
        if self.self_discharge_w < 0.0:
            raise ConfigurationError("self-discharge must be non-negative")
        if self.minimum_operating_j < 0.0:
            raise ConfigurationError("minimum operating level must be non-negative")
        if self.restart_level_j < self.minimum_operating_j:
            raise ConfigurationError(
                "restart level must be at least the minimum operating level"
            )
        if self.restart_level_j > self.capacity_j:
            raise ConfigurationError("restart level cannot exceed the capacity")
        self._charge_j = self.initial_charge_j

    # -- state ------------------------------------------------------------------

    @property
    def charge_j(self) -> float:
        """Current stored energy in joules."""
        return self._charge_j

    @property
    def state_of_charge(self) -> float:
        """Stored energy as a fraction of the capacity."""
        return self._charge_j / self.capacity_j

    @property
    def is_depleted(self) -> bool:
        """True when the node must stop operating (below the brown-out level)."""
        return self._charge_j < self.minimum_operating_j

    @property
    def can_restart(self) -> bool:
        """True when a browned-out node may restart (hysteresis threshold)."""
        return self._charge_j >= self.restart_level_j

    def reset(self) -> None:
        """Return the element to its initial charge."""
        self._charge_j = self.initial_charge_j

    # -- energy flow --------------------------------------------------------------

    def deposit(self, energy_j: float) -> float:
        """Bank harvested energy; returns the amount actually stored.

        Charging losses and the capacity ceiling both reduce the stored
        amount; excess energy is discarded (the conditioning circuit shunts
        it once the storage is full).
        """
        if energy_j < 0.0:
            raise EmulationError("cannot deposit negative energy")
        self._charge_j, stored = deposit_step(
            self._charge_j, energy_j * self.charge_efficiency, self.capacity_j
        )
        return stored

    def withdraw(self, energy_j: float) -> bool:
        """Draw load energy; returns False (and drains what it can) on shortfall.

        ``energy_j`` is the energy delivered *to the load*; the element loses
        additionally through the discharge efficiency.
        """
        if energy_j < 0.0:
            raise EmulationError("cannot withdraw negative energy")
        self._charge_j, success = withdraw_step(
            self._charge_j, energy_j / self.discharge_efficiency
        )
        return success

    def leak(self, duration_s: float) -> float:
        """Apply self-discharge over ``duration_s`` seconds; returns the loss."""
        if duration_s < 0.0:
            raise EmulationError("duration must be non-negative")
        self._charge_j, loss = leak_step(
            self._charge_j, self.self_discharge_w * duration_s
        )
        return loss


def scaled_storage(storage: StorageElement, capacity_factor: float) -> StorageElement:
    """A copy of ``storage`` with its capacity scaled by ``capacity_factor``.

    Capacity, initial charge, brown-out threshold and restart level all
    scale together, so every validity invariant (initial charge within
    capacity, restart above minimum) is preserved by construction.  This is
    the fleet runner's manufacturing-tolerance axis on storage capacity.
    """
    if capacity_factor <= 0.0:
        raise ConfigurationError("storage capacity factor must be positive")
    if capacity_factor == 1.0:
        return replace(storage)
    return replace(
        storage,
        capacity_j=storage.capacity_j * capacity_factor,
        initial_charge_j=storage.initial_charge_j * capacity_factor,
        minimum_operating_j=storage.minimum_operating_j * capacity_factor,
        restart_level_j=storage.restart_level_j * capacity_factor,
    )


def supercapacitor(capacity_j: float = 0.25, initial_fraction: float = 0.4) -> StorageElement:
    """A small supercapacitor buffer (fast, efficient, leaky).

    The default 0.25 J corresponds to roughly a 100 uF-class ceramic bank or
    a small supercap at the node operating voltage — enough to ride through a
    few seconds of full activity.
    """
    if not 0.0 <= initial_fraction <= 1.0:
        raise ConfigurationError("initial fraction must be in [0, 1]")
    return StorageElement(
        capacity_j=capacity_j,
        initial_charge_j=capacity_j * initial_fraction,
        charge_efficiency=0.97,
        discharge_efficiency=0.92,
        self_discharge_w=0.8e-6,
        minimum_operating_j=capacity_j * 0.05,
        restart_level_j=capacity_j * 0.10,
        name="supercapacitor",
    )


def thin_film_battery(capacity_j: float = 2.5, initial_fraction: float = 0.5) -> StorageElement:
    """A thin-film rechargeable cell (larger, less leaky, less efficient)."""
    if not 0.0 <= initial_fraction <= 1.0:
        raise ConfigurationError("initial fraction must be in [0, 1]")
    return StorageElement(
        capacity_j=capacity_j,
        initial_charge_j=capacity_j * initial_fraction,
        charge_efficiency=0.90,
        discharge_efficiency=0.88,
        self_discharge_w=0.1e-6,
        minimum_operating_j=capacity_j * 0.04,
        restart_level_j=capacity_j * 0.08,
        name="thin-film battery",
    )


# ---------------------------------------------------------------------------
# Vectorized trajectory kernel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StorageTrajectory:
    """State-of-charge trajectory of one integration window.

    All arrays share the step axis of the inputs; the recorded values are the
    state *after* each step completed (deposit, conditional withdrawal,
    leak), which is exactly what the emulator samples into its log.

    Attributes:
        charge_j: stored energy after each step.
        active: node-active flag after each step (restart hysteresis and
            brown-outs applied).
        banked_j: energy actually stored per step (post-efficiency, clipped
            to the capacity headroom).
        drawn_j: load energy actually delivered per step (the requested load
            where the withdrawal succeeded, zero where the node was inactive
            or browned out).
        attempted: True where the node was active and a withdrawal was
            attempted (whether or not it succeeded).
        withdrew: True where an attempted withdrawal succeeded.
        brownout_events: number of failed withdrawals.
        final_charge_j: stored energy after the last step (``charge_j[-1]``,
            or the initial charge for an empty window).
    """

    charge_j: np.ndarray
    active: np.ndarray
    banked_j: np.ndarray
    drawn_j: np.ndarray
    attempted: np.ndarray
    withdrew: np.ndarray
    brownout_events: int
    final_charge_j: float

    def __len__(self) -> int:
        return len(self.charge_j)


def reference_scan(
    stored,
    required,
    load,
    leak_amounts,
    charge,
    active: bool,
    capacity: float,
    restart: float,
    dtype=np.float64,
):
    """The authoritative storage ledger recurrence (the ONE copy of the math).

    Inputs are the hoisted per-step quantities prepared by
    :func:`trajectory`; every step applies the shared module-level step
    primitives in the exact order of the mutating :class:`StorageElement`
    replay, so the scan is bitwise identical to stepping the element
    (property-tested).  Array backends either delegate here (numpy — the
    default), run it at reduced precision (``dtype=np.float32``), or mirror
    it operation for operation in compiled code (numba, gated by the same
    property suite) — the ledger math itself is never forked.

    Returns ``(charge_out, active_out, banked_out, drawn_out, attempted,
    withdrew, brownout_events, final_charge)``.
    """
    count = len(stored)
    charge_out = np.empty(count, dtype=dtype)
    active_out = np.empty(count, dtype=bool)
    banked_out = np.empty(count, dtype=dtype)
    drawn_out = np.zeros(count, dtype=dtype)
    attempted = np.zeros(count, dtype=bool)
    withdrew = np.zeros(count, dtype=bool)
    brownouts = 0
    for i in range(count):
        if not active and charge >= restart:
            active = True
        charge, banked_out[i] = deposit_step(charge, stored[i], capacity)
        if active:
            attempted[i] = True
            charge, success = withdraw_step(charge, required[i])
            if success:
                withdrew[i] = True
                drawn_out[i] = load[i]
            else:
                active = False
                brownouts += 1
        charge, _loss = leak_step(charge, leak_amounts[i])
        charge_out[i] = charge
        active_out[i] = active
    return (
        charge_out,
        active_out,
        banked_out,
        drawn_out,
        attempted,
        withdrew,
        brownouts,
        charge,
    )


def trajectory(
    storage: StorageElement,
    harvest_j,
    load_j,
    leak_s,
    initial_charge_j: float | None = None,
    initially_active: bool | None = None,
    backend=None,
) -> StorageTrajectory:
    """Pure, array-based replay of the storage ledger over N steps.

    The vectorized counterpart of stepping a :class:`StorageElement` through
    ``deposit(harvest_j[i])`` / ``withdraw(load_j[i])`` / ``leak(leak_s[i])``
    with the emulator's restart-threshold hysteresis: at each step a
    browned-out node restarts when the charge has recovered to
    ``restart_level_j``, an active node draws its load (a shortfall drains
    the element and counts one brown-out), and an inactive node draws
    nothing.  ``storage`` provides the parameters only — its state is
    neither read (beyond defaults) nor mutated.

    The per-step efficiencies, leakage and clipping are applied through the
    same module-level step primitives the mutating methods use, in the same
    operation order, so the trajectory is bitwise identical to the scalar
    replay (property-tested).

    Args:
        storage: parameter source (capacity, efficiencies, thresholds).
        harvest_j: per-step harvested energy at the storage input, ``(N,)``.
        load_j: per-step load energy the node *wants* delivered, ``(N,)``;
            only drawn while the node is active.
        leak_s: per-step self-discharge duration in seconds, ``(N,)`` or a
            scalar broadcast over the window.
        initial_charge_j: starting charge; defaults to the element's
            ``initial_charge_j``.  Only an *explicitly passed* value is
            range-checked here — the default is already validated by
            :meth:`StorageElement.__post_init__`, so tight fleet loops that
            replay the element's own initial charge skip the redundant
            check by passing ``None``.
        initially_active: starting activity; defaults to the brown-out test
            on the starting charge (``charge >= minimum_operating_j``).
        backend: optional array-backend selection for the scan (an
            :class:`~repro.backend.base.ArrayBackend`, a registered name, or
            ``None`` for argument > ``REPRO_ARRAY_BACKEND`` > numpy).  The
            default numpy backend runs :func:`reference_scan` verbatim.

    Returns:
        A :class:`StorageTrajectory` with per-step charge/activity/flows.
    """
    harvest = np.asarray(harvest_j, dtype=float)
    load = np.asarray(load_j, dtype=float)
    count = len(harvest)
    leak = np.broadcast_to(np.asarray(leak_s, dtype=float), (count,))
    if len(load) != count:
        raise EmulationError("harvest and load arrays must have the same length")
    if np.any(harvest < 0.0):
        raise EmulationError("cannot deposit negative energy")
    if np.any(load < 0.0):
        raise EmulationError("cannot withdraw negative energy")
    if np.any(leak < 0.0):
        raise EmulationError("duration must be non-negative")

    if initial_charge_j is None:
        # Validated once at element construction; revalidating per call
        # would charge every vehicle of a fleet loop for the same check.
        charge = storage.initial_charge_j
    else:
        charge = float(initial_charge_j)
        if not 0.0 <= charge <= storage.capacity_j:
            raise EmulationError(
                "the initial charge must lie within the storage capacity"
            )
    active = (
        charge >= storage.minimum_operating_j
        if initially_active is None
        else bool(initially_active)
    )
    capacity = storage.capacity_j
    restart = storage.restart_level_j
    # Hoist the per-step conversions out of the scan: these are the exact
    # expressions the scalar methods apply per call, evaluated elementwise.
    stored = harvest * storage.charge_efficiency
    required = load / storage.discharge_efficiency
    leak_amounts = storage.self_discharge_w * leak

    (
        charge_out,
        active_out,
        banked_out,
        drawn_out,
        attempted,
        withdrew,
        brownouts,
        final_charge,
    ) = resolve_backend(backend).trajectory_scan(
        stored, required, load, leak_amounts, charge, active, capacity, restart
    )
    return StorageTrajectory(
        charge_j=charge_out,
        active=active_out,
        banked_j=banked_out,
        drawn_j=drawn_out,
        attempted=attempted,
        withdrew=withdrew,
        brownout_events=int(brownouts),
        final_charge_j=float(final_charge),
    )
