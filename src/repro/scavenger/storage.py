"""Energy-storage elements buffering the harvested energy.

The scavenger output is bursty (one impulse per revolution) and the node
load is bursty too (acquisition/transmission bursts), so a storage element —
a supercapacitor or a thin-film rechargeable cell — sits between them.  The
long-window emulation charges and discharges this element and declares the
node inactive whenever the state of charge falls below the operating
threshold, which is exactly how the paper identifies operating windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, EmulationError


@dataclass
class StorageElement:
    """A lossy, bounded energy reservoir.

    Attributes:
        capacity_j: usable energy capacity in joules.
        initial_charge_j: energy stored at the start of the emulation.
        charge_efficiency: fraction of the banked energy that ends up stored.
        discharge_efficiency: fraction of the stored energy that reaches the
            load (the complement is lost in the output regulator).
        self_discharge_w: constant self-discharge (leakage) power.
        minimum_operating_j: below this level the node brown-outs and must
            stop operating until the storage recovers above
            ``restart_level_j``.
        restart_level_j: hysteresis threshold for restarting after a
            brown-out; must be at least ``minimum_operating_j``.
        name: label used in reports.
    """

    capacity_j: float = 0.25
    initial_charge_j: float = 0.10
    charge_efficiency: float = 0.95
    discharge_efficiency: float = 0.90
    self_discharge_w: float = 0.3e-6
    minimum_operating_j: float = 0.01
    restart_level_j: float = 0.02
    name: str = "storage"
    _charge_j: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0.0:
            raise ConfigurationError("storage capacity must be positive")
        if not 0.0 <= self.initial_charge_j <= self.capacity_j:
            raise ConfigurationError("initial charge must lie within the capacity")
        for label, value in (
            ("charge_efficiency", self.charge_efficiency),
            ("discharge_efficiency", self.discharge_efficiency),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{label} must be in (0, 1]")
        if self.self_discharge_w < 0.0:
            raise ConfigurationError("self-discharge must be non-negative")
        if self.minimum_operating_j < 0.0:
            raise ConfigurationError("minimum operating level must be non-negative")
        if self.restart_level_j < self.minimum_operating_j:
            raise ConfigurationError(
                "restart level must be at least the minimum operating level"
            )
        if self.restart_level_j > self.capacity_j:
            raise ConfigurationError("restart level cannot exceed the capacity")
        self._charge_j = self.initial_charge_j

    # -- state ------------------------------------------------------------------

    @property
    def charge_j(self) -> float:
        """Current stored energy in joules."""
        return self._charge_j

    @property
    def state_of_charge(self) -> float:
        """Stored energy as a fraction of the capacity."""
        return self._charge_j / self.capacity_j

    @property
    def is_depleted(self) -> bool:
        """True when the node must stop operating (below the brown-out level)."""
        return self._charge_j < self.minimum_operating_j

    @property
    def can_restart(self) -> bool:
        """True when a browned-out node may restart (hysteresis threshold)."""
        return self._charge_j >= self.restart_level_j

    def reset(self) -> None:
        """Return the element to its initial charge."""
        self._charge_j = self.initial_charge_j

    # -- energy flow --------------------------------------------------------------

    def deposit(self, energy_j: float) -> float:
        """Bank harvested energy; returns the amount actually stored.

        Charging losses and the capacity ceiling both reduce the stored
        amount; excess energy is discarded (the conditioning circuit shunts
        it once the storage is full).
        """
        if energy_j < 0.0:
            raise EmulationError("cannot deposit negative energy")
        stored = energy_j * self.charge_efficiency
        headroom = self.capacity_j - self._charge_j
        stored = min(stored, headroom)
        self._charge_j += stored
        return stored

    def withdraw(self, energy_j: float) -> bool:
        """Draw load energy; returns False (and drains what it can) on shortfall.

        ``energy_j`` is the energy delivered *to the load*; the element loses
        additionally through the discharge efficiency.
        """
        if energy_j < 0.0:
            raise EmulationError("cannot withdraw negative energy")
        required = energy_j / self.discharge_efficiency
        if required > self._charge_j:
            self._charge_j = 0.0
            return False
        self._charge_j -= required
        return True

    def leak(self, duration_s: float) -> float:
        """Apply self-discharge over ``duration_s`` seconds; returns the loss."""
        if duration_s < 0.0:
            raise EmulationError("duration must be non-negative")
        loss = min(self._charge_j, self.self_discharge_w * duration_s)
        self._charge_j -= loss
        return loss


def supercapacitor(capacity_j: float = 0.25, initial_fraction: float = 0.4) -> StorageElement:
    """A small supercapacitor buffer (fast, efficient, leaky).

    The default 0.25 J corresponds to roughly a 100 uF-class ceramic bank or
    a small supercap at the node operating voltage — enough to ride through a
    few seconds of full activity.
    """
    if not 0.0 <= initial_fraction <= 1.0:
        raise ConfigurationError("initial fraction must be in [0, 1]")
    return StorageElement(
        capacity_j=capacity_j,
        initial_charge_j=capacity_j * initial_fraction,
        charge_efficiency=0.97,
        discharge_efficiency=0.92,
        self_discharge_w=0.8e-6,
        minimum_operating_j=capacity_j * 0.05,
        restart_level_j=capacity_j * 0.10,
        name="supercapacitor",
    )


def thin_film_battery(capacity_j: float = 2.5, initial_fraction: float = 0.5) -> StorageElement:
    """A thin-film rechargeable cell (larger, less leaky, less efficient)."""
    if not 0.0 <= initial_fraction <= 1.0:
        raise ConfigurationError("initial fraction must be in [0, 1]")
    return StorageElement(
        capacity_j=capacity_j,
        initial_charge_j=capacity_j * initial_fraction,
        charge_efficiency=0.90,
        discharge_efficiency=0.88,
        self_discharge_w=0.1e-6,
        minimum_operating_j=capacity_j * 0.04,
        restart_level_j=capacity_j * 0.08,
        name="thin-film battery",
    )
