"""Energy-scavenging substrate: harvesters, power conditioning, storage.

The Sensor Node cannot be battery powered for the tyre lifetime, so it
harvests energy from the wheel rotation.  The available energy *"depends
almost on the size of such a scavenging device and mostly on the tyre
rotation speed"*; every harvester model here therefore exposes the
energy-per-revolution-versus-speed profile the balance analysis of Fig. 2
consumes, plus a ``scaled`` operation representing the device size.
"""

from repro.scavenger.base import EnergyScavenger
from repro.scavenger.conditioning import PowerConditioning
from repro.scavenger.electromagnetic import ElectromagneticScavenger
from repro.scavenger.electrostatic import ElectrostaticScavenger
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.profiles import TabulatedScavenger
from repro.scavenger.storage import (
    StorageElement,
    StorageTrajectory,
    supercapacitor,
    thin_film_battery,
    trajectory,
)

__all__ = [
    "EnergyScavenger",
    "PiezoelectricScavenger",
    "ElectromagneticScavenger",
    "ElectrostaticScavenger",
    "TabulatedScavenger",
    "PowerConditioning",
    "StorageElement",
    "StorageTrajectory",
    "supercapacitor",
    "thin_film_battery",
    "trajectory",
]
