"""Base interface of every energy scavenger model."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.vehicle.wheel import Wheel


@dataclass(frozen=True)
class EnergyScavenger(abc.ABC):
    """Abstract in-tyre energy harvester.

    Concrete models implement :meth:`raw_energy_per_revolution_j`, the
    *electrical* energy available at the harvester terminals for one wheel
    revolution at a given speed; the base class provides the derived
    quantities every analysis needs (average power, conditioned energy,
    size scaling).

    Attributes:
        wheel: the wheel the harvester is mounted in (sets the revolution
            rate used to convert per-revolution energy into average power).
        size_factor: relative size of the scavenging device; harvested energy
            scales linearly with it, which is the paper's "size of the
            scavenging device" knob.
        minimum_speed_kmh: below this speed the excitation is too weak for
            the conditioning circuit to start up and the harvested energy is
            zero.
    """

    wheel: Wheel = field(default_factory=Wheel)
    size_factor: float = 1.0
    minimum_speed_kmh: float = 5.0

    def __post_init__(self) -> None:
        if self.size_factor <= 0.0:
            raise ConfigurationError("scavenger size factor must be positive")
        if self.minimum_speed_kmh < 0.0:
            raise ConfigurationError("minimum speed must be non-negative")

    # -- to be provided by concrete models ------------------------------------

    @abc.abstractmethod
    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        """Electrical energy per revolution at unit size, before the cut-in check."""

    @property
    @abc.abstractmethod
    def technology(self) -> str:
        """Short technology label used in reports (e.g. ``"piezoelectric"``)."""

    def raw_energy_sweep_j(self, speeds_kmh: np.ndarray | list[float]) -> np.ndarray:
        """Vectorized :meth:`raw_energy_per_revolution_j` over an array of speeds.

        Concrete models override this with a numpy implementation mirroring
        their scalar method operation for operation; the base implementation
        falls back to per-point scalar calls so third-party subclasses that
        only implement the scalar contract keep working on every sweep
        consumer (at scalar speed).  Never called for non-positive speeds by
        the public sweep path.
        """
        speeds = np.asarray(speeds_kmh, dtype=float)
        return np.array(
            [self.raw_energy_per_revolution_j(float(v)) for v in speeds]
        ).reshape(speeds.shape)

    # -- derived quantities ----------------------------------------------------

    def energy_per_revolution_j(self, speed_kmh: float) -> float:
        """Harvested energy per wheel revolution at ``speed_kmh``, in joules.

        Zero below the conditioning cut-in speed and when the vehicle is
        stationary; otherwise the raw model output scaled by the device size.
        """
        if speed_kmh < 0.0:
            raise ConfigurationError("speed must be non-negative")
        if speed_kmh <= 0.0 or speed_kmh < self.minimum_speed_kmh:
            return 0.0
        return self.size_factor * self.raw_energy_per_revolution_j(speed_kmh)

    def average_power_w(self, speed_kmh: float) -> float:
        """Average harvested power at a constant ``speed_kmh``, in watts."""
        if speed_kmh <= 0.0:
            return 0.0
        revolutions_per_second = self.wheel.revolutions_per_second(speed_kmh)
        return self.energy_per_revolution_j(speed_kmh) * revolutions_per_second

    def energy_sweep_j(self, speeds_kmh: np.ndarray | list[float]) -> np.ndarray:
        """Vectorized :meth:`energy_per_revolution_j`, shape ``(N,)``.

        The harvest-side counterpart of the compiled power table's batch
        path: one call evaluates the whole speed array through the model's
        numpy sweep, with the same cut-in/standstill zeroing and
        ``size_factor`` scaling (same operation order) as the scalar
        reference, so results agree to round-off.
        """
        speeds = np.asarray(speeds_kmh, dtype=float)
        if np.any(speeds < 0.0):
            raise ConfigurationError("speed must be non-negative")
        energies = np.zeros(speeds.shape)
        mask = (speeds > 0.0) & (speeds >= self.minimum_speed_kmh)
        if np.any(mask):
            energies[mask] = self.size_factor * self.raw_energy_sweep_j(speeds[mask])
        return energies

    def energy_curve(self, speeds_kmh: np.ndarray | list[float]) -> np.ndarray:
        """Vector of energy-per-revolution values over an array of speeds.

        Alias of :meth:`energy_sweep_j`, kept for the exported-profile and
        plotting call sites that predate the sweep API.
        """
        return self.energy_sweep_j(speeds_kmh)

    def scaled(self, factor: float) -> "EnergyScavenger":
        """Return a copy of the scavenger with its size multiplied by ``factor``."""
        if factor <= 0.0:
            raise ConfigurationError("scale factor must be positive")
        from dataclasses import replace

        return replace(self, size_factor=self.size_factor * factor)

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"{self.technology} scavenger, size x{self.size_factor:.2f}, "
            f"cut-in {self.minimum_speed_kmh:.0f} km/h"
        )
