"""Power conditioning between the harvester and the storage element.

The raw AC output of the transducer must be rectified and up/down converted
before it can charge the storage element; the conversion chain loses a
fraction of the energy and refuses to start below a minimum input level.
Keeping this stage explicit lets the balance analysis distinguish the energy
*generated* by the scavenger from the energy actually *banked*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class PowerConditioning:
    """Rectifier + converter chain efficiency model.

    Attributes:
        rectifier_efficiency: AC-DC stage efficiency.
        converter_efficiency: DC-DC stage efficiency towards the storage
            element.
        startup_energy_j: energy per revolution consumed by the conditioning
            circuit itself (bias, gate drive); subtracted before banking.
    """

    rectifier_efficiency: float = 0.80
    converter_efficiency: float = 0.88
    startup_energy_j: float = 1.0e-6

    def __post_init__(self) -> None:
        for name, value in (
            ("rectifier_efficiency", self.rectifier_efficiency),
            ("converter_efficiency", self.converter_efficiency),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        if self.startup_energy_j < 0.0:
            raise ConfigurationError("startup energy must be non-negative")

    @property
    def chain_efficiency(self) -> float:
        """Combined efficiency of the conditioning chain."""
        return self.rectifier_efficiency * self.converter_efficiency

    def banked_energy_j(self, harvested_j: float) -> float:
        """Energy actually delivered to the storage element.

        The conditioning overhead is taken out of the harvested energy; the
        result is floored at zero (the circuit simply does not run when the
        input cannot cover its own overhead).
        """
        if harvested_j < 0.0:
            raise ConfigurationError("harvested energy must be non-negative")
        if harvested_j == 0.0:
            return 0.0
        net = harvested_j * self.chain_efficiency - self.startup_energy_j
        return max(0.0, net)

    def banked_energy_sweep_j(self, harvested_j) -> np.ndarray:
        """Vectorized :meth:`banked_energy_j` over an array of harvested energies."""
        harvested = np.asarray(harvested_j, dtype=float)
        if np.any(harvested < 0.0):
            raise ConfigurationError("harvested energy must be non-negative")
        net = np.maximum(0.0, harvested * self.chain_efficiency - self.startup_energy_j)
        # A zero input never runs the chain, so it cannot even owe the
        # startup overhead (the scalar method short-circuits the same way).
        net[harvested == 0.0] = 0.0
        return net


@dataclass(frozen=True)
class ConditionedScavenger(EnergyScavenger):
    """A scavenger viewed through its conditioning chain.

    Wraps any :class:`EnergyScavenger` so that ``energy_per_revolution_j``
    reports the *banked* energy.  The wrapper is itself a scavenger, so the
    balance analysis can be run on either the raw or the conditioned view.
    """

    source: EnergyScavenger | None = None
    conditioning: PowerConditioning = PowerConditioning()

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.source is None:
            raise ConfigurationError("a conditioned scavenger needs a source")

    @property
    def technology(self) -> str:
        return f"{self.source.technology} + conditioning"

    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        harvested = self.source.energy_per_revolution_j(speed_kmh)
        return self.conditioning.banked_energy_j(harvested)

    def raw_energy_sweep_j(self, speeds_kmh) -> np.ndarray:
        """Vectorized source harvest pushed through the conditioning chain."""
        harvested = self.source.energy_sweep_j(speeds_kmh)
        return self.conditioning.banked_energy_sweep_j(harvested)

    def energy_per_revolution_j(self, speed_kmh: float) -> float:
        """Banked energy per revolution (cut-in handled by the source model)."""
        if speed_kmh < 0.0:
            raise ConfigurationError("speed must be non-negative")
        if speed_kmh <= 0.0:
            return 0.0
        return self.size_factor * self.raw_energy_per_revolution_j(speed_kmh)

    def energy_sweep_j(self, speeds_kmh) -> np.ndarray:
        """Vectorized banked energy (cut-in handled by the source sweep)."""
        speeds = np.asarray(speeds_kmh, dtype=float)
        if np.any(speeds < 0.0):
            raise ConfigurationError("speed must be non-negative")
        energies = np.zeros(speeds.shape)
        mask = speeds > 0.0
        if np.any(mask):
            energies[mask] = self.size_factor * self.raw_energy_sweep_j(speeds[mask])
        return energies

    def scaled(self, factor: float) -> "ConditionedScavenger":
        """Scaling a conditioned scavenger scales the underlying device."""
        if factor <= 0.0:
            raise ConfigurationError("scale factor must be positive")
        return replace(self, source=self.source.scaled(factor))


def conditioned(
    source: EnergyScavenger, conditioning: PowerConditioning | None = None
) -> ConditionedScavenger:
    """Convenience wrapper: view ``source`` through a conditioning chain."""
    return ConditionedScavenger(
        wheel=source.wheel,
        source=source,
        conditioning=conditioning or PowerConditioning(),
    )
