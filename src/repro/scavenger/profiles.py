"""Tabulated scavenger profiles.

When a measured energy-per-revolution curve *is* available (for example from
a harvester prototype on a tyre test rig), it enters the analysis as a table
of (speed, energy) points; the balance analysis then interpolates between
them.  This is also the class used to replay the curves exported by the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class TabulatedScavenger(EnergyScavenger):
    """A scavenger defined by measured (speed, energy-per-revolution) points.

    Attributes:
        speeds_kmh: sample speeds, strictly increasing.
        energies_j: harvested energy per revolution at each sample speed for
            a unit-size device.
        extrapolate: when True the last segment's slope is extended beyond
            the sampled range; when False the curve is clamped to the end
            values.
    """

    speeds_kmh: tuple[float, ...] = field(default_factory=tuple)
    energies_j: tuple[float, ...] = field(default_factory=tuple)
    extrapolate: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.speeds_kmh) != len(self.energies_j):
            raise ConfigurationError("speeds and energies must have the same length")
        if len(self.speeds_kmh) < 2:
            raise ConfigurationError("a tabulated profile needs at least two points")
        speeds = np.asarray(self.speeds_kmh, dtype=float)
        energies = np.asarray(self.energies_j, dtype=float)
        if np.any(np.diff(speeds) <= 0.0):
            raise ConfigurationError("sample speeds must be strictly increasing")
        if np.any(speeds < 0.0):
            raise ConfigurationError("sample speeds must be non-negative")
        if np.any(energies < 0.0):
            raise ConfigurationError("sample energies must be non-negative")

    @property
    def technology(self) -> str:
        return "tabulated"

    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        speeds = np.asarray(self.speeds_kmh, dtype=float)
        energies = np.asarray(self.energies_j, dtype=float)
        if not self.extrapolate or speeds[0] <= speed_kmh <= speeds[-1]:
            return float(np.interp(speed_kmh, speeds, energies))
        if speed_kmh < speeds[0]:
            slope = (energies[1] - energies[0]) / (speeds[1] - speeds[0])
            return float(max(0.0, energies[0] + slope * (speed_kmh - speeds[0])))
        slope = (energies[-1] - energies[-2]) / (speeds[-1] - speeds[-2])
        return float(max(0.0, energies[-1] + slope * (speed_kmh - speeds[-1])))

    def raw_energy_sweep_j(self, speeds_kmh) -> np.ndarray:
        """Vectorized table interpolation (clamped or slope-extrapolated)."""
        query = np.asarray(speeds_kmh, dtype=float)
        speeds = np.asarray(self.speeds_kmh, dtype=float)
        energies = np.asarray(self.energies_j, dtype=float)
        values = np.interp(query, speeds, energies)
        if self.extrapolate:
            below = query < speeds[0]
            if np.any(below):
                slope = (energies[1] - energies[0]) / (speeds[1] - speeds[0])
                values[below] = np.maximum(
                    0.0, energies[0] + slope * (query[below] - speeds[0])
                )
            above = query > speeds[-1]
            if np.any(above):
                slope = (energies[-1] - energies[-2]) / (speeds[-1] - speeds[-2])
                values[above] = np.maximum(
                    0.0, energies[-1] + slope * (query[above] - speeds[-1])
                )
        return values

    @classmethod
    def from_scavenger(
        cls,
        source: EnergyScavenger,
        speeds_kmh: list[float] | np.ndarray,
        extrapolate: bool = False,
    ) -> "TabulatedScavenger":
        """Sample an analytical scavenger into a table (useful for exporting)."""
        speeds = [float(v) for v in speeds_kmh]
        energies = [float(e) for e in source.energy_sweep_j(speeds)]
        return cls(
            wheel=source.wheel,
            minimum_speed_kmh=source.minimum_speed_kmh,
            speeds_kmh=tuple(speeds),
            energies_j=tuple(energies),
            extrapolate=extrapolate,
        )
