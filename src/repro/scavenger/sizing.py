"""Scavenger sizing: how big must the device be for a target activation speed.

The paper's knob — *"the available energy depends almost on the size of such
a scavenging device"* — phrased as the designer actually uses it: given a
node, a characterization and a target minimum activation speed, find the
smallest scavenger size factor that achieves it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.evaluator import EnergyEvaluator
from repro.errors import AnalysisError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a scavenger sizing run.

    Attributes:
        target_speed_kmh: the requested activation speed.
        size_factor: smallest size factor meeting the target (relative to the
            given scavenger), or ``None`` when even ``max_size_factor`` is not
            enough.
        achieved_break_even_kmh: break-even speed at the returned size.
        required_energy_j: node energy per wheel round at the target speed.
        generated_energy_unit_j: energy per wheel round of the *unit-size*
            device at the target speed.
    """

    target_speed_kmh: float
    size_factor: float | None
    achieved_break_even_kmh: float | None
    required_energy_j: float
    generated_energy_unit_j: float

    @property
    def feasible(self) -> bool:
        """True when a size meeting the target was found."""
        return self.size_factor is not None


def size_for_activation_speed(
    node: SensorNode,
    database: PowerDatabase,
    scavenger: EnergyScavenger,
    target_speed_kmh: float,
    max_size_factor: float = 16.0,
    tolerance: float = 0.01,
    evaluator: EnergyEvaluator | None = None,
) -> SizingResult:
    """Find the smallest scavenger size that activates the node at the target speed.

    Because the harvested energy scales linearly with the size factor while
    the node requirement does not depend on it, the minimal size is simply
    ``required / generated_at_unit_size`` evaluated at the target speed —
    unless the unit-size device generates nothing there (below its cut-in
    speed), in which case no size helps.

    Args:
        node: the Sensor Node architecture.
        database: power characterization.
        scavenger: the harvester whose size is being chosen (its current
            ``size_factor`` is treated as the unit).
        target_speed_kmh: desired minimum activation speed.
        max_size_factor: largest size the mechanical integration allows.
        tolerance: relative margin added to the computed size so the result
            is robustly on the surplus side.
        evaluator: optional prebuilt evaluator for ``node``/``database``,
            shared by both the requirement lookup and the verification run
            (a sizing table passes one evaluator across all its targets).

    Raises:
        AnalysisError: for non-positive targets or size limits.
    """
    if target_speed_kmh <= 0.0:
        raise AnalysisError("the target activation speed must be positive")
    if max_size_factor <= 0.0:
        raise AnalysisError("the maximum size factor must be positive")

    analysis = EnergyBalanceAnalysis(node, database, scavenger, evaluator=evaluator)
    point = OperatingPoint(speed_kmh=target_speed_kmh)
    # Both sides ride the batch paths (compiled power table, harvest sweep);
    # a width-1 sweep matches the scalar reference to round-off.
    required = float(analysis.required_energy_sweep([point])[0])
    generated_unit = float(analysis.generated_energy_sweep([target_speed_kmh])[0])

    if generated_unit <= 0.0:
        return SizingResult(
            target_speed_kmh=target_speed_kmh,
            size_factor=None,
            achieved_break_even_kmh=None,
            required_energy_j=required,
            generated_energy_unit_j=generated_unit,
        )

    factor = (required / generated_unit) * (1.0 + tolerance)
    factor = max(factor, 1e-6)
    if factor > max_size_factor:
        return SizingResult(
            target_speed_kmh=target_speed_kmh,
            size_factor=None,
            achieved_break_even_kmh=None,
            required_energy_j=required,
            generated_energy_unit_j=generated_unit,
        )

    sized = EnergyBalanceAnalysis(
        node, database, scavenger.scaled(factor), evaluator=analysis.evaluator
    )
    achieved = sized.break_even_speed_kmh(high_kmh=max(250.0, target_speed_kmh * 2.0))
    return SizingResult(
        target_speed_kmh=target_speed_kmh,
        size_factor=factor,
        achieved_break_even_kmh=achieved,
        required_energy_j=required,
        generated_energy_unit_j=generated_unit,
    )


def sizing_table(
    node: SensorNode,
    database: PowerDatabase,
    scavenger: EnergyScavenger,
    target_speeds_kmh: list[float],
    max_size_factor: float = 16.0,
) -> list[dict[str, object]]:
    """Tabulate the required scavenger size for several activation-speed targets.

    One :class:`~repro.core.evaluator.EnergyEvaluator` (and therefore one
    database re-targeting and one compiled power table) is shared across
    every target and every verification run.
    """
    if not target_speeds_kmh:
        raise AnalysisError("at least one target speed is required")
    evaluator = EnergyEvaluator(node, database)
    rows: list[dict[str, object]] = []
    for target in target_speeds_kmh:
        result = size_for_activation_speed(
            node,
            database,
            scavenger,
            float(target),
            max_size_factor=max_size_factor,
            evaluator=evaluator,
        )
        rows.append(
            {
                "target_speed_kmh": float(target),
                "size_factor": result.size_factor
                if result.size_factor is not None
                else float("nan"),
                "feasible": result.feasible,
                "achieved_break_even_kmh": result.achieved_break_even_kmh
                if result.achieved_break_even_kmh is not None
                else float("nan"),
            }
        )
    return rows
