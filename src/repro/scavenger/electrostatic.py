"""Electrostatic (variable-capacitor) in-tyre scavenger model.

Electret-biased MEMS variable capacitors deliver far less energy than the
piezoelectric or electromagnetic options but integrate directly with the
CMOS die.  Included mainly to give the architecture-exploration benches a
genuinely losing design point, which is useful for validating that the
balance analysis reports deficits correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class ElectrostaticScavenger(EnergyScavenger):
    """Electret-biased variable-capacitance harvester.

    Attributes:
        reference_energy_j: energy per revolution at the reference speed for
            a unit-size device.
        reference_speed_kmh: speed at which the reference energy is defined.
        exponent: speed exponent; capacitive conversion saturates early, so
            the dependence is mild.
        saturation_energy_j: pull-in limited energy per revolution.
    """

    reference_energy_j: float = 9e-6
    reference_speed_kmh: float = 60.0
    exponent: float = 1.2
    saturation_energy_j: float = 30e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.reference_energy_j <= 0.0:
            raise ConfigurationError("reference energy must be positive")
        if self.reference_speed_kmh <= 0.0:
            raise ConfigurationError("reference speed must be positive")
        if self.exponent <= 0.0:
            raise ConfigurationError("speed exponent must be positive")
        if self.saturation_energy_j <= 0.0:
            raise ConfigurationError("saturation energy must be positive")

    @property
    def technology(self) -> str:
        return "electrostatic"

    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        unsaturated = self.reference_energy_j * (
            speed_kmh / self.reference_speed_kmh
        ) ** self.exponent
        return 1.0 / (1.0 / unsaturated + 1.0 / self.saturation_energy_j)

    def raw_energy_sweep_j(self, speeds_kmh) -> np.ndarray:
        """Vectorized power law + pull-in saturation (same operation order)."""
        speeds = np.asarray(speeds_kmh, dtype=float)
        unsaturated = self.reference_energy_j * (
            speeds / self.reference_speed_kmh
        ) ** self.exponent
        return 1.0 / (1.0 / unsaturated + 1.0 / self.saturation_energy_j)
