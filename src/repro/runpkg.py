"""Self-describing run packages: write once, re-validate forever.

A *run package* is a directory that makes a finished run auditable without
rerunning it — the artifact-side twin of the checkpoint journal.  It stamps
the run with everything a reviewer (or a CI gate) needs::

    package-dir/
        package.json         # manifest: spec + seed + environment + digests
        <artifact files>     # result exports copied in, digest-pinned

The manifest records the spec document and seed that produced the run, the
environment stamp the benchmarks already use (python/numpy versions,
platform, CPU count, pool width/backend), a SHA-256 digest per artifact
file, the run's KPI figures and — optionally — *floors* those KPIs must
clear.  :func:`validate_run_package` re-checks all of it (schema, digests,
floors) and raises a :class:`~repro.errors.PackageError` with a one-line
reason on the first violation, which is what lets ``tpms-energy
validate-run`` act as a regression gate over ``benchmarks/results/``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import shutil
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.backend import active_backend_info
from repro.digest import canonical_digest
from repro.errors import PackageError

#: Manifest schema version; bumped on incompatible layout changes.
PACKAGE_VERSION = 1

_MANIFEST = "package.json"


def environment_stamp(
    workers: int | None = None, backend: str | None = None
) -> dict[str, object]:
    """The machine/runtime context stamped into run packages and benchmarks.

    Single-sourced here (the benchmark harness imports it) so package
    manifests and benchmark JSON artifacts can never drift apart: a
    wall-time or KPI trajectory across commits is uninterpretable once the
    interpreter, numpy build or runner hardware moves underneath it.
    """
    stamp: dict[str, object] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    array_info = active_backend_info()
    stamp["array_backend"] = array_info["name"]
    if "numba" in array_info:
        stamp["numba"] = array_info["numba"]
    if workers is not None:
        stamp["workers"] = workers
    if backend is not None:
        stamp["backend"] = backend
    return stamp


def file_sha256(path: str | Path) -> str:
    """SHA-256 hex digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()


def _require_number(label: str, value: object) -> float:
    if (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or not math.isfinite(value)
    ):
        raise PackageError(f"{label} must be a finite number, got {value!r}")
    return float(value)


def write_run_package(
    directory: str | Path,
    kind: str,
    name: str,
    spec_document: Mapping[str, object] | None = None,
    seed: int | None = None,
    kpis: Mapping[str, float] | None = None,
    floors: Mapping[str, float] | None = None,
    artifacts: Mapping[str, str | Path] | None = None,
    extra: Mapping[str, object] | None = None,
    workers: int | None = None,
    backend: str | None = None,
) -> Path:
    """Write a run package: copy artifacts in, stamp and digest everything.

    Args:
        directory: the package directory; created (with parents) if absent.
        kind: what produced the run (``"fleet"``, ``"study"``,
            ``"benchmarks"`` ...).
        name: human label of the run (fleet/study/benchmark-set name).
        spec_document: the declarative document that produced the run, when
            there is one.
        seed: the run's materialization seed, when there is one.
        kpis: the run's headline figures (finite numbers).
        floors: minimum acceptable values per KPI name; every floor must
            name an existing KPI (checked here *and* at validation).
        artifacts: mapping of artifact file name → source path; each file is
            copied into the package and digest-pinned.  Names must be bare
            file names (the package is flat).
        extra: further machine-readable context for the manifest.
        workers/backend: pool context for the environment stamp.

    Returns:
        The path of the written ``package.json``.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    kpis = {str(key): _require_number(f"KPI {key!r}", value) for key, value in (kpis or {}).items()}
    floors = {
        str(key): _require_number(f"floor {key!r}", value) for key, value in (floors or {}).items()
    }
    for floor_name in floors:
        if floor_name not in kpis:
            raise PackageError(f"floor {floor_name!r} has no matching KPI")

    artifact_entries: dict[str, dict[str, object]] = {}
    for artifact_name, source in (artifacts or {}).items():
        artifact_name = str(artifact_name)
        if Path(artifact_name).name != artifact_name or artifact_name == _MANIFEST:
            raise PackageError(
                f"artifact name {artifact_name!r} must be a bare file name "
                f"(and not {_MANIFEST!r})"
            )
        source = Path(source)
        if not source.is_file():
            raise PackageError(f"artifact source {source} does not exist")
        destination = target / artifact_name
        if source.resolve() != destination.resolve():
            shutil.copyfile(source, destination)
        artifact_entries[artifact_name] = {
            "file": artifact_name,
            "sha256": file_sha256(destination),
            "bytes": destination.stat().st_size,
        }

    # Canonical-digest discipline shared with checkpoints and the serving
    # layer's result store (repro.digest); ``default=str`` keeps legacy
    # run_ids stable for manifests that carried non-JSON values.
    run_id = f"{name}-" + canonical_digest(
        {"kind": kind, "name": name, "spec": spec_document, "seed": seed, "kpis": kpis},
        default=str,
    )[:12]
    manifest = {
        "run_package": PACKAGE_VERSION,
        "run_id": run_id,
        "kind": str(kind),
        "name": str(name),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": environment_stamp(workers=workers, backend=backend),
        "spec": dict(spec_document) if spec_document is not None else None,
        "seed": seed,
        "artifacts": artifact_entries,
        "kpis": kpis,
        "floors": floors,
        "extra": dict(extra) if extra else {},
    }
    manifest_path = target / _MANIFEST
    tmp = manifest_path.with_name(manifest_path.name + ".tmp")
    try:
        text = json.dumps(manifest, indent=2, allow_nan=False)
    except ValueError as exc:
        raise PackageError(f"run package manifest is not strict JSON: {exc}") from exc
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, manifest_path)
    return manifest_path


def validate_run_package(directory: str | Path) -> dict[str, object]:
    """Re-check a run package: schema, artifact digests, KPI floors.

    Returns a summary dict (``run_id``, ``kind``, ``name``, counts of
    artifacts/KPIs/floors checked) on success.

    Raises:
        PackageError: with a one-line reason on the FIRST problem found —
            missing or malformed manifest, missing artifact, digest
            mismatch, non-finite KPI, floor without a KPI, or violated
            floor.
    """
    target = Path(directory)
    manifest_path = target / _MANIFEST
    if not manifest_path.is_file():
        raise PackageError(f"no {_MANIFEST} in {target}; not a run package")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise PackageError(f"run package manifest {manifest_path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("run_package") != PACKAGE_VERSION:
        raise PackageError(
            f"run package manifest {manifest_path} has an unsupported layout "
            f"(expected version {PACKAGE_VERSION})"
        )

    artifacts = manifest.get("artifacts")
    if not isinstance(artifacts, dict):
        raise PackageError(f"run package manifest {manifest_path} has no artifact table")
    for artifact_name, entry in artifacts.items():
        try:
            file_name = str(entry["file"])
            expected = str(entry["sha256"])
        except (TypeError, KeyError) as exc:
            raise PackageError(
                f"artifact entry {artifact_name!r} is malformed ({exc})"
            ) from exc
        path = target / file_name
        if not path.is_file():
            raise PackageError(f"artifact {artifact_name!r} missing from package: {path}")
        found = file_sha256(path)
        if found != expected:
            raise PackageError(
                f"artifact {artifact_name!r} digest mismatch "
                f"(expected {expected[:12]}…, found {found[:12]}…); "
                "the package was modified after writing"
            )

    kpis = manifest.get("kpis") or {}
    floors = manifest.get("floors") or {}
    if not isinstance(kpis, dict) or not isinstance(floors, dict):
        raise PackageError(f"run package manifest {manifest_path} KPI tables are malformed")
    for kpi_name, value in kpis.items():
        _require_number(f"KPI {kpi_name!r}", value)
    for floor_name, floor in floors.items():
        floor = _require_number(f"floor {floor_name!r}", floor)
        if floor_name not in kpis:
            raise PackageError(f"floor {floor_name!r} has no matching KPI")
        value = float(kpis[floor_name])
        if value < floor:
            raise PackageError(f"KPI floor violated: {floor_name} = {value:g} < {floor:g}")

    return {
        "run_id": manifest.get("run_id"),
        "kind": manifest.get("kind"),
        "name": manifest.get("name"),
        "artifacts": len(artifacts),
        "kpis": len(kpis),
        "floors": len(floors),
    }
