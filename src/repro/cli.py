"""Command-line interface to the energy-analysis toolkit.

Exposes the everyday questions as subcommands so the tools can be driven from
a shell (or a Makefile) without writing Python::

    tpms-energy scenarios                                  # registry contents
    tpms-energy cycles                                     # drive-cycle list
    tpms-energy run --scenario exp.json                    # full flow of one scenario
    tpms-energy run --scenario exp.json \\
        --set temperature=-20,25,85 --set architecture=baseline,optimized \\
        --kind balance --export grid.csv                   # grid study
    tpms-energy run --scenario exp.json \\
        --kind montecarlo --mc-samples 2000 --workers 4    # Monte-Carlo sweep
    tpms-energy run --scenario exp.json \\
        --set temperature=-20,25,85 --kind emulate \\
        --workers 4 --backend process                      # process-pool study
    tpms-energy fleet --scenario exp.json \\
        --vehicles 500 --seed 42 --workers 4               # population simulation
    tpms-energy fleet --fleet winter.json --export agg.csv # explicit fleet doc
    tpms-energy fleet --scenario exp.json \\
        --checkpoint ckpt/ --retries 2 --package pkg/      # resumable, packaged
    tpms-energy validate-run pkg/                          # CI regression gate
    tpms-energy serve --port 8123 --store-dir store/ \\
        --store-budget-mb 64 --checkpoint-dir ckpt/        # serving replica
    tpms-energy submit --endpoints h1:8123,h2:8123 \\
        --fleet winter.json > result.json                  # failover client
    tpms-energy architectures
    tpms-energy balance   --architecture baseline --temperature 25
    tpms-energy trace     --speed 60 --window 0.5
    tpms-energy optimize  --architecture baseline --temperature 85
    tpms-energy emulate   --cycle nedc --architecture optimized
    tpms-energy report    --architecture baseline

``run`` is the declarative front door: it reads a JSON
:class:`~repro.scenario.spec.ScenarioSpec` document, optionally expands
``--set axis=v1,v2,...`` overrides into a scenario grid
(:class:`~repro.scenario.study.Study`), and executes an analysis kind
(``balance``, ``report``, ``optimize``, ``emulate``, ``explore``) over it.
Without ``--set``/``--kind`` it runs the full Fig. 1 analysis flow of the
scenario.  ``fleet`` scales a scenario to a whole vehicle population
(:mod:`repro.fleet`): per-vehicle distributions, shared-bin emulation, and
aggregate survival/brown-out/energy-margin statistics.  The classic
subcommands resolve their ``--architecture`` and ``--cycle`` arguments
through the same registries (:mod:`repro.scenario.registry`), so
user-registered components work everywhere.

Every subcommand prints plain-text tables (see :mod:`repro.reporting`) and
returns a non-zero exit code with a one-line ``error:`` message on analysis
or configuration errors — never a traceback.
"""

from __future__ import annotations

import argparse
import inspect
import json
import math
import os
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.backend import ARRAY_BACKEND_ENV, ARRAY_BACKENDS, resolve_backend
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.emulator import NodeEmulator
from repro.core.evaluator import EnergyEvaluator
from repro.core.flow import EnergyAnalysisFlow
from repro.core.report import render_flow_headlines, render_flow_report
from repro.errors import ConfigError, ReproError
from repro.fleet import FleetRunner, FleetSpec, load_fleet
from repro.optimization.apply import apply_assignments
from repro.optimization.selection import select_techniques
from repro.reporting.export import rows_to_csv, rows_to_json
from repro.reporting.tables import render_table
from repro.runpkg import validate_run_package, write_run_package
from repro.scenario.listing import cycle_rows, scenario_listing
from repro.scenario.registry import ARCHITECTURES, DRIVE_CYCLES, POWER_DATABASES
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import load_scenario
from repro.scenario.study import STUDY_KINDS, Study, StudyResult
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.storage import supercapacitor


def _resolve_node(name: str):
    """Architecture lookup through the scenario registry."""
    return ARCHITECTURES.create(name)


def _resolve_cycle(name: str):
    """Drive-cycle lookup through the scenario registry.

    Cycles with required parameters (``constant``, ``ramp``) cannot be named
    bare on the command line; point the user at the scenario document form
    instead of echoing a missing-argument message.
    """
    try:
        return DRIVE_CYCLES.create(name)
    except ConfigError as error:
        if name not in DRIVE_CYCLES:
            raise
        parameters = ", ".join(inspect.signature(DRIVE_CYCLES.factory(name)).parameters)
        raise ConfigError(
            f"drive cycle {name!r} needs parameters ({parameters}); use a scenario "
            f'file with {{"drive_cycle": {{"name": "{name}", "params": {{...}}}}}}'
        ) from error


def _parse_set_overrides(entries: Sequence[str]) -> dict[str, list[object]]:
    """Parse repeated ``--set axis=v1,v2,...`` options into study axes."""

    def coerce(token: str) -> object:
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            return token

    axes: dict[str, list[object]] = {}
    for entry in entries:
        axis, separator, values = entry.partition("=")
        axis = axis.strip()
        if not separator or not axis:
            raise ConfigError(
                f"malformed --set {entry!r}; expected axis=value1,value2,..."
            )
        tokens = [token.strip() for token in values.split(",")]
        if not values.strip() or any(not token for token in tokens):
            raise ConfigError(
                f"malformed --set {entry!r}; expected axis=value1,value2,..."
            )
        if axis in axes:
            raise ConfigError(f"axis {axis!r} given more than once in --set")
        axes[axis] = [coerce(token) for token in tokens]
    return axes


def _validate_export_path(path: str | None) -> None:
    """Reject an unusable --export path *before* any analysis runs."""
    if path is not None and not path.endswith((".csv", ".json")):
        raise ConfigError(f"export path {path!r} must end in .csv or .json")


def _export_rows(rows: list[dict[str, object]], path: str) -> None:
    """Write rows to ``path`` as CSV or JSON, by extension."""
    _validate_export_path(path)
    if path.endswith(".json"):
        rows_to_json(rows, path)
    else:
        rows_to_csv(rows, path)
    print(f"\nexported {len(rows)} rows to {path}")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--architecture",
        default="baseline",
        help="architecture name (see the 'scenarios' subcommand)",
    )
    parser.add_argument(
        "--temperature",
        type=float,
        default=25.0,
        help="junction temperature in degrees Celsius",
    )
    parser.add_argument(
        "--scavenger-size",
        type=float,
        default=1.0,
        help="scavenger size factor relative to the reference device",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tpms-energy",
        description="Energy analysis tools for self-powered tyre monitoring systems",
    )
    parser.add_argument(
        "--array-backend",
        default=None,
        metavar="NAME",
        help=(
            "array backend for the hot kernels "
            f"(one of: {', '.join(ARRAY_BACKENDS.names())}); "
            f"overrides the {ARRAY_BACKEND_ENV} environment variable"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run a declarative scenario file (optionally as a grid study)"
    )
    run.add_argument(
        "--scenario", required=True, help="path to a scenario JSON document"
    )
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="AXIS=V1,V2,...",
        help="sweep a grid axis (repeatable), e.g. --set temperature=-20,25,85",
    )
    run.add_argument(
        "--kind",
        choices=STUDY_KINDS,
        default=None,
        help="analysis kind for study mode (default: the full flow, "
        "or 'balance' when --set is given)",
    )
    run.add_argument(
        "--export",
        default=None,
        metavar="PATH.{csv,json}",
        help="export the result rows as CSV or JSON",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run the study grid on N workers (rows stay in "
        "sequential order with identical values)",
    )
    run.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help="worker pool backend for --workers: 'thread' (default; shared "
        "evaluator cache) or 'process' (CPU-bound kinds like optimize/emulate)",
    )
    run.add_argument(
        "--mc-samples",
        type=int,
        default=None,
        metavar="N",
        help="population size per grid point for --kind montecarlo",
    )
    run.add_argument(
        "--mc-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="base random seed for --kind montecarlo",
    )

    fleet = subparsers.add_parser(
        "fleet", help="population-scale fleet simulation over per-vehicle distributions"
    )
    fleet.add_argument(
        "--fleet",
        dest="fleet_path",
        default=None,
        metavar="FLEET.json",
        help="path to a fleet JSON document (base scenario + distributions)",
    )
    fleet.add_argument(
        "--scenario",
        default=None,
        metavar="SCENARIO.json",
        help="base scenario JSON; the default population distributions apply",
    )
    fleet.add_argument(
        "--vehicles", type=int, default=None, metavar="N", help="population size override"
    )
    fleet.add_argument(
        "--seed", type=int, default=None, metavar="SEED", help="materialization seed override"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run the vehicles on N workers (aggregates are identical for any N)",
    )
    fleet.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help="worker pool backend for --workers (same semantics as 'run')",
    )
    fleet.add_argument(
        "--export",
        default=None,
        metavar="PATH.{csv,json}",
        help="export the aggregate row as CSV or JSON",
    )
    fleet.add_argument(
        "--export-survival",
        default=None,
        metavar="PATH.{csv,json}",
        help="export the survival-vs-time curve",
    )
    fleet.add_argument(
        "--export-vehicles",
        default=None,
        metavar="PATH.{csv,json}",
        help="export the per-vehicle rows",
    )
    fleet.add_argument(
        "--chunk-vehicles",
        type=int,
        default=None,
        metavar="N",
        help="vehicles per work chunk (checkpoint/streaming granularity)",
    )
    fleet.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="journal completed chunks in DIR; rerunning with the same "
        "fleet/seed/parameters resumes byte-identically",
    )
    fleet.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="compute at most N new chunks this run (requires --checkpoint "
        "to be useful); the run is reported as partial",
    )
    fleet.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="per-vehicle retry budget for transient worker failures; "
        "failed vehicles are reported instead of aborting the fleet",
    )
    fleet.add_argument(
        "--package",
        default=None,
        metavar="DIR",
        help="write a validated run package (spec + seed + environment + "
        "digests + KPIs) to DIR; refused for partial runs",
    )
    fleet.add_argument(
        "--kpi-floor",
        dest="kpi_floors",
        action="append",
        default=[],
        metavar="NAME=MIN",
        help="record a minimum acceptable value for a summary KPI in the "
        "run package (repeatable; requires --package)",
    )

    validate = subparsers.add_parser(
        "validate-run",
        help="re-validate run packages: schema, artifact digests, KPI floors",
    )
    validate.add_argument(
        "packages",
        nargs="+",
        metavar="DIR",
        help="run package directories (each holding a package.json)",
    )

    scenarios = subparsers.add_parser(
        "scenarios", help="list the registered scenario components and grid axes"
    )
    scenarios.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable listing (the GET /scenarios document)",
    )
    cycles = subparsers.add_parser("cycles", help="list the registered drive cycles")
    cycles.add_argument(
        "--json", action="store_true", help="emit the cycle rows as JSON"
    )
    subparsers.add_parser("architectures", help="list the predefined architectures")

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP serving layer (persistent evaluator cache + result store)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="default engine pool width for requests that omit 'workers'",
    )
    serve.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="default engine backend for requests that omit 'backend'",
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=1,
        metavar="N",
        help="jobs executed concurrently (each may fan out over engine workers)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=8,
        metavar="N",
        help="evaluator LRU capacity (compiled tables kept alive across jobs)",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist the content-addressed result store in DIR "
        "(default: in-memory, dies with the server); DIR may be shared "
        "by several replicas (cross-process locked index)",
    )
    serve.add_argument(
        "--store-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="cap the result store at MB megabytes of payload "
        "(LRU eviction; default: unbounded)",
    )
    serve.add_argument(
        "--store-budget-entries",
        type=int,
        default=None,
        metavar="N",
        help="cap the result store at N entries (LRU eviction; default: unbounded)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal fleet-job chunks under DIR so stopped jobs resume "
        "on re-submission; share DIR (and --store-dir) across replicas so "
        "a surviving replica resumes a dead one's jobs",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit a study/fleet document to running serve replicas "
        "(failover client) and print the result document",
    )
    submit.add_argument(
        "--endpoints",
        required=True,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="comma-separated replica list, tried in order with failover "
        "on connection refusal/timeouts",
    )
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--study", metavar="FILE", help="study request document (JSON)")
    source.add_argument("--fleet", metavar="FILE", help="fleet request document (JSON)")
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="overall deadline for submit + wait + result (default 600)",
    )
    submit.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="per-request socket timeout; a wedged replica counts as dead "
        "after this long (default 60)",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra passes over the endpoint list after a fruitless one "
        "(exponential backoff; default 2)",
    )

    balance = subparsers.add_parser(
        "balance", help="energy balance vs cruising speed and break-even point (Fig. 2)"
    )
    _add_common_arguments(balance)
    balance.add_argument("--speed-min", type=float, default=5.0)
    balance.add_argument("--speed-max", type=float, default=200.0)
    balance.add_argument("--speed-step", type=float, default=5.0)

    trace = subparsers.add_parser(
        "trace", help="instant power over a constant-speed window (Fig. 3)"
    )
    _add_common_arguments(trace)
    trace.add_argument("--speed", type=float, default=60.0, help="cruising speed in km/h")
    trace.add_argument("--window", type=float, default=0.5, help="window length in seconds")

    optimize = subparsers.add_parser(
        "optimize", help="duty-cycle-driven technique selection and re-estimation"
    )
    _add_common_arguments(optimize)
    optimize.add_argument("--speed", type=float, default=60.0, help="evaluation speed in km/h")

    emulate = subparsers.add_parser(
        "emulate", help="long-window emulation over a drive cycle"
    )
    _add_common_arguments(emulate)
    emulate.add_argument(
        "--cycle",
        default="urban",
        help="drive cycle name (see the 'cycles' subcommand)",
    )

    report = subparsers.add_parser(
        "report", help="run the full analysis flow and print the complete report"
    )
    _add_common_arguments(report)
    report.add_argument("--cycle", default=None, help="optional drive cycle name")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    _validate_export_path(args.export)
    spec = load_scenario(args.scenario)
    axes = _parse_set_overrides(args.overrides)
    montecarlo_given = args.mc_samples is not None or args.mc_seed is not None
    if montecarlo_given and args.kind != "montecarlo":
        raise ConfigError("--mc-samples/--mc-seed require --kind montecarlo")
    if axes or args.kind is not None:
        kind = args.kind or "balance"
        if args.backend == "process" and (args.workers is None or args.workers <= 1):
            raise ConfigError(
                "--backend process needs --workers greater than 1 "
                "(a single worker runs sequentially in this process)"
            )
        montecarlo = None
        if montecarlo_given:
            defaults = MonteCarloConfig()
            montecarlo = MonteCarloConfig(
                samples=args.mc_samples if args.mc_samples is not None else defaults.samples,
                seed=args.mc_seed if args.mc_seed is not None else defaults.seed,
            )
        study = Study(spec, axes=axes, montecarlo=montecarlo)
        result: StudyResult = study.run(
            kind, workers=args.workers, backend=args.backend or "thread"
        )
        print(
            result.as_table(
                title=f"Study — {spec.name} ({kind}), {len(result)} scenario(s)"
            )
        )
        print(
            f"\n{result.metadata['evaluator_builds']} evaluator build(s), "
            f"{result.metadata['evaluator_cache_hits']} cache hit(s) "
            f"across the grid in {result.metadata['wall_time_s']:.2f} s "
            f"({result.metadata['workers']} worker(s), "
            f"{result.metadata['backend']} backend)"
        )
        if args.export:
            _export_rows(result.as_rows(), args.export)
        return 0
    if args.workers is not None:
        raise ConfigError("--workers requires study mode (--set and/or --kind)")
    if args.backend is not None:
        raise ConfigError("--backend requires study mode (--set and/or --kind)")

    flow = EnergyAnalysisFlow.from_spec(spec)
    print(flow.node.describe())
    print()
    print(flow.scavenger.describe())
    print()
    report = flow.run()
    print(render_flow_headlines(report))
    if args.export:
        _export_rows(report.energy_report.as_rows(), args.export)
    return 0


def _parse_kpi_floors(entries: Sequence[str]) -> dict[str, float]:
    """Parse repeated ``--kpi-floor NAME=MIN`` options."""
    floors: dict[str, float] = {}
    for entry in entries:
        name, separator, value = entry.partition("=")
        name = name.strip()
        try:
            floor = float(value)
        except ValueError:
            floor = float("nan")
        if not separator or not name or math.isnan(floor):
            raise ConfigError(f"malformed --kpi-floor {entry!r}; expected NAME=MIN")
        if name in floors:
            raise ConfigError(f"KPI {name!r} given more than once in --kpi-floor")
        floors[name] = floor
    return floors


def _cmd_fleet(args: argparse.Namespace) -> int:
    for path in (args.export, args.export_survival, args.export_vehicles):
        _validate_export_path(path)
    if (args.fleet_path is None) == (args.scenario is None):
        raise ConfigError("give exactly one of --fleet or --scenario")
    if args.backend == "process" and (args.workers is None or args.workers <= 1):
        raise ConfigError(
            "--backend process needs --workers greater than 1 "
            "(a single worker runs sequentially in this process)"
        )
    if args.kpi_floors and args.package is None:
        raise ConfigError("--kpi-floor requires --package")
    floors = _parse_kpi_floors(args.kpi_floors)
    if args.fleet_path is not None:
        fleet = load_fleet(args.fleet_path)
    else:
        fleet = FleetSpec.from_base(load_scenario(args.scenario))
    fleet = fleet.with_population(
        vehicles=args.vehicles, seed=args.seed, chunk_vehicles=args.chunk_vehicles
    )

    runner = FleetRunner(
        fleet,
        workers=args.workers,
        backend=args.backend or "thread",
        checkpoint=args.checkpoint,
        max_chunks=args.max_chunks,
        retries=args.retries,
    )
    result = runner.run()
    print(f"fleet {fleet.name}: {fleet.describe()}")
    print()
    print(result.as_table())
    print()
    print(result.survival_table())
    metadata = result.metadata
    print(
        f"\n{metadata['vehicles']} vehicle(s) in {metadata['cohorts']} cohort(s) "
        f"across {metadata['groups']} evaluator group(s); "
        f"{metadata['shared_energy_bins']} shared energy bin(s) swept once; "
        f"{metadata['wall_time_s']:.2f} s on {metadata['workers']} worker(s) "
        f"({metadata['backend']} backend)"
    )
    fast = metadata.get("fast_path_vehicles", 0)
    fallback = metadata.get("fallback_vehicles", 0)
    path_line = f"fast path: {fast} vehicle(s); fallback: {fallback} vehicle(s)"
    reasons = metadata.get("fallback_reasons") or {}
    if reasons:
        path_line += " (" + ", ".join(f"{k}: {v}" for k, v in sorted(reasons.items())) + ")"
    print(path_line)
    if metadata["resumed_chunks"]:
        print(
            f"resumed {metadata['resumed_chunks']} chunk(s) "
            f"({metadata['resumed_vehicles']} vehicle(s)) from {metadata['checkpoint']}"
        )
    if metadata["partial"]:
        print(
            f"PARTIAL run: {metadata['chunks_completed']}/{metadata['chunks_total']} "
            f"chunk(s) done, {metadata['vehicles_failed']} vehicle(s) failed"
            + (
                f"; rerun with --checkpoint {metadata['checkpoint']} to continue"
                if metadata["checkpoint"]
                else ""
            )
        )
    if args.export:
        _export_rows([dict(result.summary)], args.export)
    if args.export_survival:
        _export_rows([dict(row) for row in result.survival], args.export_survival)
    if args.export_vehicles:
        _export_rows([dict(row) for row in result.vehicle_rows], args.export_vehicles)
    if args.package:
        if metadata["partial"]:
            raise ConfigError(
                "refusing to package a partial run "
                f"({metadata['chunks_completed']}/{metadata['chunks_total']} chunk(s), "
                f"{metadata['vehicles_failed']} failed vehicle(s)); "
                "finish the run first, then package"
            )
        package_dir = Path(args.package)
        package_dir.mkdir(parents=True, exist_ok=True)
        rows_to_json([dict(result.summary)], str(package_dir / "summary.json"))
        rows_to_json([dict(row) for row in result.survival], str(package_dir / "survival.json"))
        artifacts = {
            "summary.json": package_dir / "summary.json",
            "survival.json": package_dir / "survival.json",
        }
        if result.vehicle_rows is not None:
            rows_to_json(
                [dict(row) for row in result.vehicle_rows],
                str(package_dir / "vehicles.json"),
            )
            artifacts["vehicles.json"] = package_dir / "vehicles.json"
        kpis = {
            key: float(value)
            for key, value in result.summary.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value)
        }
        manifest_path = write_run_package(
            package_dir,
            kind="fleet",
            name=fleet.name,
            spec_document=fleet.to_dict(),
            seed=fleet.seed,
            kpis=kpis,
            floors=floors,
            artifacts=artifacts,
            extra={
                "wall_time_s": metadata["wall_time_s"],
                "chunks": metadata["chunks_total"],
                "resumed_chunks": metadata["resumed_chunks"],
            },
            workers=metadata["workers"],
            backend=metadata["backend"],
        )
        print(f"\nwrote run package {manifest_path.parent} ({len(kpis)} KPI(s), "
              f"{len(floors)} floor(s))")
    return 0


def _cmd_validate_run(args: argparse.Namespace) -> int:
    for directory in args.packages:
        summary = validate_run_package(directory)
        print(
            f"ok: {directory} — run {summary['run_id']} "
            f"({summary['kind']}/{summary['name']}): "
            f"{summary['artifacts']} artifact(s), {summary['kpis']} KPI(s), "
            f"{summary['floors']} floor(s) checked"
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    # One listing source for the table, the --json form and GET /scenarios.
    listing = scenario_listing()
    if args.json:
        print(json.dumps(listing, indent=2, allow_nan=False))
        return 0
    print(render_table(listing["components"], title="Registered scenario components"))
    print(f"\ngrid axes for --set: {', '.join(listing['axes'])}")
    return 0


def _cmd_cycles(args: argparse.Namespace) -> int:
    rows = cycle_rows()
    if args.json:
        print(json.dumps(rows, indent=2, allow_nan=False))
        return 0
    print(render_table(rows, title="Registered drive cycles", float_digits=1))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the classic one-shot subcommands never pay for the
    # serving layer's asyncio machinery.
    from repro.serve import EvaluatorLRU, JobManager, ResultStore, ServeServer, StoreBudget

    budget = StoreBudget.from_cli(args.store_budget_mb, args.store_budget_entries)
    manager = JobManager(
        evaluator_cache=EvaluatorLRU(capacity=args.cache_size),
        store=ResultStore(args.store_dir, budget=budget),
        workers=args.workers,
        backend=args.backend,
        job_workers=args.job_workers,
        checkpoint_root=args.checkpoint_dir,
    )
    server = ServeServer(manager, host=args.host, port=args.port)
    # The banner prints from the ready callback (after the bind) so --port 0
    # announces the real kernel-assigned port; harnesses parse this line.
    server.serve_forever(
        ready=lambda bound: print(
            f"serving on http://{args.host}:{bound.port} (SIGINT/SIGTERM drain and exit)",
            flush=True,
        )
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    endpoints = [item.strip() for item in args.endpoints.split(",") if item.strip()]
    if not endpoints:
        raise ConfigError("--endpoints needs at least one HOST:PORT entry")
    client = ServeClient(
        endpoints=endpoints,
        timeout=args.request_timeout,
        retries=args.retries,
    )
    source = args.study if args.study is not None else args.fleet
    try:
        document = json.loads(Path(source).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read request document {source}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"request document {source} is not valid JSON: {exc}") from exc
    if args.study is not None:
        final, payload = client.run_study(document, timeout=args.timeout)
    else:
        final, payload = client.run_fleet(document, timeout=args.timeout)
    sys.stdout.buffer.write(payload)
    sys.stdout.buffer.flush()
    host, port = client.preferred_endpoint
    print(
        f"job {final['id']} {final['state']} on {host}:{port} "
        f"({len(payload)} result byte(s))",
        file=sys.stderr,
    )
    return 0


def _cmd_architectures(_: argparse.Namespace) -> int:
    rows = []
    for name in ARCHITECTURES.names():
        node = _resolve_node(name)
        rows.append(
            {
                "architecture": name,
                "blocks": len(node.blocks()),
                "tx every N rev": node.radio.tx_interval_revs,
                "accelerometer": node.sensors.use_accelerometer,
                "description": node.describe().splitlines()[0],
            }
        )
    print(render_table(rows, title="Predefined Sensor Node architectures"))
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    scavenger = PiezoelectricScavenger().scaled(args.scavenger_size)
    analysis = EnergyBalanceAnalysis(node, POWER_DATABASES.create("reference"), scavenger)
    speeds = np.arange(args.speed_min, args.speed_max + args.speed_step / 2, args.speed_step)
    curve = analysis.curve(
        speeds,
        point_factory=lambda speed: OperatingPoint(
            speed_kmh=speed, temperature_c=args.temperature
        ),
    )
    print(
        render_table(
            curve.as_rows(),
            title=f"Energy balance — {node.name}, {args.temperature:.0f} degC",
            float_digits=2,
        )
    )
    break_even = curve.break_even_speed_kmh()
    if break_even is None:
        print("\nbreak-even: not reached in the sampled range")
    else:
        print(f"\nbreak-even (minimum activation) speed: {break_even:.1f} km/h")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    emulator = NodeEmulator(
        node,
        POWER_DATABASES.create("reference"),
        PiezoelectricScavenger().scaled(args.scavenger_size),
        supercapacitor(),
        base_point=OperatingPoint(temperature_c=args.temperature),
    )
    trace = emulator.steady_state_trace(args.speed, args.window)
    print(
        render_table(
            trace.as_rows(),
            title=f"Instant power — {node.name} at {args.speed:.0f} km/h",
            float_digits=3,
        )
    )
    print(
        f"\npeak {trace.peak_power_w() * 1e3:.2f} mW, "
        f"average {trace.average_power_w() * 1e6:.1f} uW, "
        f"floor {trace.min_power_w() * 1e6:.2f} uW, "
        f"energy {trace.energy_j() * 1e6:.1f} uJ over {trace.duration_s * 1e3:.0f} ms"
    )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    database = POWER_DATABASES.create("reference")
    point = OperatingPoint(speed_kmh=args.speed, temperature_c=args.temperature)
    evaluator = EnergyEvaluator(node, database)
    assignments = select_techniques(evaluator.duty_cycles(point), database=database)
    outcome = apply_assignments(node, database, assignments, point=point)
    if outcome.assignments:
        print(render_table(outcome.as_rows(), title="Selected optimization techniques"))
    print(
        f"\nenergy per wheel round: {outcome.energy_before_j * 1e6:.1f} uJ -> "
        f"{outcome.energy_after_j * 1e6:.1f} uJ "
        f"({outcome.saving_fraction * 100.0:.1f}% saving) at {point.describe()}"
    )
    return 0


def _cmd_emulate(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    cycle = _resolve_cycle(args.cycle)
    emulator = NodeEmulator(
        node,
        POWER_DATABASES.create("reference"),
        PiezoelectricScavenger().scaled(args.scavenger_size),
        supercapacitor(initial_fraction=0.2),
        base_point=OperatingPoint(temperature_c=args.temperature),
    )
    result = emulator.emulate(cycle)
    rows = [{"figure": key, "value": value} for key, value in result.summary().items()]
    print(render_table(rows, title=f"Emulation — {node.name} on the {cycle.name} cycle",
                       float_digits=2))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    flow = EnergyAnalysisFlow(
        node,
        POWER_DATABASES.create("reference"),
        PiezoelectricScavenger().scaled(args.scavenger_size),
        storage=supercapacitor(initial_fraction=0.2),
    )
    cycle = _resolve_cycle(args.cycle) if args.cycle else None
    flow_report = flow.run(
        point=OperatingPoint(speed_kmh=60.0, temperature_c=args.temperature),
        drive_cycle=cycle,
    )
    print(render_flow_report(flow_report))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "fleet": _cmd_fleet,
    "validate-run": _cmd_validate_run,
    "scenarios": _cmd_scenarios,
    "cycles": _cmd_cycles,
    "architectures": _cmd_architectures,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "balance": _cmd_balance,
    "trace": _cmd_trace,
    "optimize": _cmd_optimize,
    "emulate": _cmd_emulate,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.array_backend is not None:
            # Validate eagerly (unknown names fail with a one-line error
            # before any work starts), then publish through the environment
            # so process-pool workers inherit the same selection.
            resolve_backend(args.array_backend)
            os.environ[ARRAY_BACKEND_ENV] = args.array_backend
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
