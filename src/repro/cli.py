"""Command-line interface to the energy-analysis toolkit.

Exposes the everyday questions as subcommands so the tools can be driven from
a shell (or a Makefile) without writing Python::

    tpms-energy architectures
    tpms-energy balance   --architecture baseline --temperature 25
    tpms-energy trace     --speed 60 --window 0.5
    tpms-energy optimize  --architecture baseline --temperature 85
    tpms-energy emulate   --cycle nedc --architecture optimized
    tpms-energy report    --architecture baseline

Every subcommand prints plain-text tables (see :mod:`repro.reporting`) and
returns a non-zero exit code on analysis errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.blocks.architectures import architecture_catalogue
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.emulator import NodeEmulator
from repro.core.evaluator import EnergyEvaluator
from repro.core.flow import EnergyAnalysisFlow
from repro.core.report import render_flow_report
from repro.errors import ReproError
from repro.optimization.apply import apply_assignments
from repro.optimization.selection import select_techniques
from repro.power.library import reference_power_database
from repro.reporting.tables import render_table
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.storage import supercapacitor
from repro.vehicle.drive_cycle import highway_cycle, nedc_like_cycle, urban_cycle

_CYCLES = {
    "urban": lambda: urban_cycle(repetitions=4),
    "nedc": nedc_like_cycle,
    "highway": highway_cycle,
}


def _resolve_node(name: str):
    catalogue = architecture_catalogue()
    if name not in catalogue:
        raise ReproError(
            f"unknown architecture {name!r}; available: {sorted(catalogue)}"
        )
    return catalogue[name]


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--architecture",
        default="baseline",
        help="architecture name (see the 'architectures' subcommand)",
    )
    parser.add_argument(
        "--temperature",
        type=float,
        default=25.0,
        help="junction temperature in degrees Celsius",
    )
    parser.add_argument(
        "--scavenger-size",
        type=float,
        default=1.0,
        help="scavenger size factor relative to the reference device",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tpms-energy",
        description="Energy analysis tools for self-powered tyre monitoring systems",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("architectures", help="list the predefined architectures")

    balance = subparsers.add_parser(
        "balance", help="energy balance vs cruising speed and break-even point (Fig. 2)"
    )
    _add_common_arguments(balance)
    balance.add_argument("--speed-min", type=float, default=5.0)
    balance.add_argument("--speed-max", type=float, default=200.0)
    balance.add_argument("--speed-step", type=float, default=5.0)

    trace = subparsers.add_parser(
        "trace", help="instant power over a constant-speed window (Fig. 3)"
    )
    _add_common_arguments(trace)
    trace.add_argument("--speed", type=float, default=60.0, help="cruising speed in km/h")
    trace.add_argument("--window", type=float, default=0.5, help="window length in seconds")

    optimize = subparsers.add_parser(
        "optimize", help="duty-cycle-driven technique selection and re-estimation"
    )
    _add_common_arguments(optimize)
    optimize.add_argument("--speed", type=float, default=60.0, help="evaluation speed in km/h")

    emulate = subparsers.add_parser(
        "emulate", help="long-window emulation over a drive cycle"
    )
    _add_common_arguments(emulate)
    emulate.add_argument(
        "--cycle", choices=sorted(_CYCLES), default="urban", help="drive cycle to play"
    )

    report = subparsers.add_parser(
        "report", help="run the full analysis flow and print the complete report"
    )
    _add_common_arguments(report)
    report.add_argument("--cycle", choices=sorted(_CYCLES), default=None)

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_architectures(_: argparse.Namespace) -> int:
    rows = []
    for name, node in architecture_catalogue().items():
        rows.append(
            {
                "architecture": name,
                "blocks": len(node.blocks()),
                "tx every N rev": node.radio.tx_interval_revs,
                "accelerometer": node.sensors.use_accelerometer,
                "description": node.describe().splitlines()[0],
            }
        )
    print(render_table(rows, title="Predefined Sensor Node architectures"))
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    scavenger = PiezoelectricScavenger().scaled(args.scavenger_size)
    analysis = EnergyBalanceAnalysis(node, reference_power_database(), scavenger)
    speeds = np.arange(args.speed_min, args.speed_max + args.speed_step / 2, args.speed_step)
    curve = analysis.curve(
        speeds,
        point_factory=lambda speed: OperatingPoint(
            speed_kmh=speed, temperature_c=args.temperature
        ),
    )
    print(
        render_table(
            curve.as_rows(),
            title=f"Energy balance — {node.name}, {args.temperature:.0f} degC",
            float_digits=2,
        )
    )
    break_even = curve.break_even_speed_kmh()
    if break_even is None:
        print("\nbreak-even: not reached in the sampled range")
    else:
        print(f"\nbreak-even (minimum activation) speed: {break_even:.1f} km/h")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    emulator = NodeEmulator(
        node,
        reference_power_database(),
        PiezoelectricScavenger().scaled(args.scavenger_size),
        supercapacitor(),
        base_point=OperatingPoint(temperature_c=args.temperature),
    )
    trace = emulator.steady_state_trace(args.speed, args.window)
    print(
        render_table(
            trace.as_rows(),
            title=f"Instant power — {node.name} at {args.speed:.0f} km/h",
            float_digits=3,
        )
    )
    print(
        f"\npeak {trace.peak_power_w() * 1e3:.2f} mW, "
        f"average {trace.average_power_w() * 1e6:.1f} uW, "
        f"floor {trace.min_power_w() * 1e6:.2f} uW, "
        f"energy {trace.energy_j() * 1e6:.1f} uJ over {trace.duration_s * 1e3:.0f} ms"
    )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    database = reference_power_database()
    point = OperatingPoint(speed_kmh=args.speed, temperature_c=args.temperature)
    evaluator = EnergyEvaluator(node, database)
    assignments = select_techniques(evaluator.duty_cycles(point), database=database)
    outcome = apply_assignments(node, database, assignments, point=point)
    if outcome.assignments:
        print(render_table(outcome.as_rows(), title="Selected optimization techniques"))
    print(
        f"\nenergy per wheel round: {outcome.energy_before_j * 1e6:.1f} uJ -> "
        f"{outcome.energy_after_j * 1e6:.1f} uJ "
        f"({outcome.saving_fraction * 100.0:.1f}% saving) at {point.describe()}"
    )
    return 0


def _cmd_emulate(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    cycle = _CYCLES[args.cycle]()
    emulator = NodeEmulator(
        node,
        reference_power_database(),
        PiezoelectricScavenger().scaled(args.scavenger_size),
        supercapacitor(initial_fraction=0.2),
        base_point=OperatingPoint(temperature_c=args.temperature),
    )
    result = emulator.emulate(cycle)
    rows = [{"figure": key, "value": value} for key, value in result.summary().items()]
    print(render_table(rows, title=f"Emulation — {node.name} on the {cycle.name} cycle",
                       float_digits=2))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    node = _resolve_node(args.architecture)
    flow = EnergyAnalysisFlow(
        node,
        reference_power_database(),
        PiezoelectricScavenger().scaled(args.scavenger_size),
        storage=supercapacitor(initial_fraction=0.2),
    )
    cycle = _CYCLES[args.cycle]() if args.cycle else None
    flow_report = flow.run(
        point=OperatingPoint(speed_kmh=60.0, temperature_c=args.temperature),
        drive_cycle=cycle,
    )
    print(render_flow_report(flow_report))
    return 0


_COMMANDS = {
    "architectures": _cmd_architectures,
    "balance": _cmd_balance,
    "trace": _cmd_trace,
    "optimize": _cmd_optimize,
    "emulate": _cmd_emulate,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
