"""Canonical-JSON SHA-256 digests, single-sourced.

Three subsystems identify work by hashing a JSON document — the checkpoint
journal (:mod:`repro.scenario.checkpoint` keys a directory to its run), run
packages (:mod:`repro.runpkg` derives the ``run_id``) and the serving
layer's content-addressed result store (:mod:`repro.serve.store`).  They
must all agree on what "the digest of a document" means, or a store entry
written under one discipline can never be found under another.  This module
is that single source:

* :func:`canonical_json` — ``json.dumps`` with ``sort_keys=True`` so the
  text is independent of dict insertion order, and ``allow_nan=False`` so a
  non-finite float fails loudly instead of producing a ``NaN`` literal two
  parsers may disagree on.  Python's ``repr``-based float serialization
  round-trips every finite float exactly, so equal documents always produce
  equal text.
* :func:`canonical_digest` — the SHA-256 hex digest of that text.

The byte-level output is pinned by ``tests/test_digest.py``: the digests
recorded in existing checkpoint manifests and run packages must never
change under a refactor.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable

__all__ = ["canonical_json", "canonical_digest", "sha256_hex"]


def canonical_json(document: object, default: Callable[[object], object] | None = None) -> str:
    """The canonical JSON text of ``document``.

    Args:
        document: any JSON-serializable value (mappings serialize with
            sorted keys at every level).
        default: optional fallback serializer for non-JSON types, forwarded
            to :func:`json.dumps` (the run-package manifest uses ``str``).

    Raises:
        ValueError: the document holds a non-finite float or (without
            ``default``) a non-serializable value — ``TypeError`` from
            ``json.dumps`` is re-raised as-is.
    """
    return json.dumps(document, sort_keys=True, allow_nan=False, default=default)


def sha256_hex(data: bytes | str) -> str:
    """SHA-256 hex digest of raw bytes (text is encoded as UTF-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def canonical_digest(document: object, default: Callable[[object], object] | None = None) -> str:
    """SHA-256 hex digest of the canonical JSON text of ``document``."""
    return sha256_hex(canonical_json(document, default=default))
