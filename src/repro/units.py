"""Unit constants, conversions and quantity formatting helpers.

Every numeric quantity in the library is expressed in base SI units
(seconds, metres, kilograms, volts, amperes, watts, joules, kelvin
offsets expressed in degrees Celsius where noted).  This module collects
the handful of conversions the tyre-monitoring domain needs so that call
sites never contain magic factors such as ``/ 3.6`` or ``* 1e-6``.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Scalar prefixes
# ---------------------------------------------------------------------------

PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

# ---------------------------------------------------------------------------
# Speed
# ---------------------------------------------------------------------------

KMH_PER_MS = 3.6
"""Kilometres-per-hour in one metre-per-second."""


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert a speed in km/h to m/s."""
    return speed_kmh / KMH_PER_MS


def ms_to_kmh(speed_ms: float) -> float:
    """Convert a speed in m/s to km/h."""
    return speed_ms * KMH_PER_MS


# ---------------------------------------------------------------------------
# Angular motion
# ---------------------------------------------------------------------------


def rpm_to_rad_s(rpm: float) -> float:
    """Convert revolutions per minute to radians per second."""
    return rpm * 2.0 * math.pi / 60.0


def rad_s_to_rpm(omega: float) -> float:
    """Convert radians per second to revolutions per minute."""
    return omega * 60.0 / (2.0 * math.pi)


def rev_per_s_to_rad_s(rev_per_s: float) -> float:
    """Convert revolutions per second to radians per second."""
    return rev_per_s * 2.0 * math.pi


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------

ZERO_CELSIUS_IN_KELVIN = 273.15


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - ZERO_CELSIUS_IN_KELVIN


# ---------------------------------------------------------------------------
# Radio power
# ---------------------------------------------------------------------------


def dbm_to_watt(power_dbm: float) -> float:
    """Convert an RF power level from dBm to watts."""
    return 1e-3 * 10.0 ** (power_dbm / 10.0)


def watt_to_dbm(power_w: float) -> float:
    """Convert an RF power level from watts to dBm.

    Raises:
        ValueError: if ``power_w`` is not strictly positive.
    """
    if power_w <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {power_w!r}")
    return 10.0 * math.log10(power_w / 1e-3)


# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

BOLTZMANN_EV = 8.617333262e-5
"""Boltzmann constant in eV/K, used by the leakage temperature model."""

GRAVITY = 9.80665
"""Standard gravitational acceleration in m/s^2."""

# ---------------------------------------------------------------------------
# Quantity formatting
# ---------------------------------------------------------------------------

_SI_PREFIXES = (
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
)


def format_quantity(value: float, unit: str, digits: int = 3) -> str:
    """Render ``value`` with an SI prefix, e.g. ``format_quantity(2.3e-6, "J")``
    returns ``"2.3 uJ"``.

    Zero and non-finite values are rendered without a prefix.
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g} {unit}"
    magnitude = abs(value)
    scale, prefix = _SI_PREFIXES[0]
    for candidate_scale, candidate_prefix in _SI_PREFIXES:
        if magnitude >= candidate_scale:
            scale, prefix = candidate_scale, candidate_prefix
        else:
            break
    scaled = value / scale
    return f"{scaled:.{digits}g} {prefix}{unit}"


def format_power(value_w: float, digits: int = 3) -> str:
    """Format a power value in watts with an SI prefix."""
    return format_quantity(value_w, "W", digits)


def format_energy(value_j: float, digits: int = 3) -> str:
    """Format an energy value in joules with an SI prefix."""
    return format_quantity(value_j, "J", digits)


def format_current(value_a: float, digits: int = 3) -> str:
    """Format a current value in amperes with an SI prefix."""
    return format_quantity(value_a, "A", digits)
