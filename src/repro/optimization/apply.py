"""Application of technique assignments and re-estimation of the energy.

The flow's optimize → re-estimate loop: the selected techniques rewrite the
power database, then the evaluator recomputes the per-wheel-round energy so
the designer sees the actual return of each decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator
from repro.errors import OptimizationError
from repro.optimization.selection import TechniqueAssignment
from repro.power.database import PowerDatabase


@dataclass(frozen=True)
class OptimizationOutcome:
    """Result of applying a set of technique assignments.

    Attributes:
        assignments: the applied (block, technique) decisions.
        database: the rewritten power database.
        energy_before_j: node energy per wheel round before optimization.
        energy_after_j: node energy per wheel round after optimization.
        skipped: assignments that could not be applied (e.g. a technique
            targeting a mode the block does not have), with the reason.
    """

    assignments: tuple[TechniqueAssignment, ...]
    database: PowerDatabase
    energy_before_j: float
    energy_after_j: float
    skipped: tuple[tuple[TechniqueAssignment, str], ...] = ()

    @property
    def saving_j(self) -> float:
        """Absolute energy saving per wheel round."""
        return self.energy_before_j - self.energy_after_j

    @property
    def saving_fraction(self) -> float:
        """Relative energy saving per wheel round."""
        if self.energy_before_j == 0.0:
            return 0.0
        return self.saving_j / self.energy_before_j

    def as_rows(self) -> list[dict[str, object]]:
        """Tabular view of the applied assignments."""
        return [
            {
                "block": assignment.block,
                "technique": assignment.technique.name,
                "kind": assignment.technique.kind.value,
                "rationale": assignment.rationale,
            }
            for assignment in self.assignments
        ]


def apply_assignments(
    node: SensorNode,
    database: PowerDatabase,
    assignments: list[TechniqueAssignment],
    point: OperatingPoint | None = None,
    evaluator: EnergyEvaluator | None = None,
) -> OptimizationOutcome:
    """Apply technique assignments to the database and re-estimate the energy.

    Assignments that cannot be applied (missing mode, unknown block) are
    collected in ``skipped`` rather than aborting the whole optimization —
    matching how a designer would treat a technique that turns out not to fit
    a block.

    Args:
        node: the architecture the energy figures refer to.
        database: the characterization to rewrite.
        assignments: the selected (block, technique) pairs.
        point: working condition of the before/after evaluation (nominal by
            default).
        evaluator: optional prebuilt evaluator for ``node``/``database``; a
            scenario study passes its shared instance so the "before" figure
            reuses the already re-targeted database and compiled table.
    """
    condition = point or OperatingPoint()
    if evaluator is not None and (
        evaluator.node is not node or evaluator.source_database is not database
    ):
        raise OptimizationError(
            "the shared evaluator was built for a different node or database"
        )
    before_evaluator = evaluator or EnergyEvaluator(node, database)
    before = before_evaluator.energy_per_revolution_j(condition)

    rewritten = database
    applied: list[TechniqueAssignment] = []
    skipped: list[tuple[TechniqueAssignment, str]] = []
    for assignment in assignments:
        try:
            rewritten = assignment.technique.apply(rewritten, assignment.block)
        except OptimizationError as error:
            skipped.append((assignment, str(error)))
            continue
        applied.append(assignment)

    after = EnergyEvaluator(node, rewritten).energy_per_revolution_j(condition)
    return OptimizationOutcome(
        assignments=tuple(applied),
        database=rewritten,
        energy_before_j=before,
        energy_after_j=after,
        skipped=tuple(skipped),
    )
