"""Duty-cycle-driven selection of optimization techniques.

The paper's example: a block with high dynamic power and low leakage would
normally be optimized for dynamic power only, *"but if we consider also
temporal information and the block results having a short duty cycle, it is
worth to optimize not only the dynamic power but also the static one since
the idle time is significant"*.  The default policy below encodes that rule:

* blocks whose *dynamic* energy over the wheel round is significant get the
  dynamic techniques (clock gating; voltage scaling where there is timing
  slack);
* blocks with a *short duty cycle* — or whose leakage energy share is large —
  additionally get a static technique (power gating, the duty-cycle-aware
  variant when the duty cycle is very short);
* blocks whose total contribution is negligible are left alone (optimizing
  them is engineering effort with no energy return).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimizationError
from repro.optimization.techniques import (
    ClockGating,
    DutyCycleAwarePowerGating,
    OptimizationTechnique,
    PowerGating,
    VoltageScaling,
)
from repro.timing.duty_cycle import DutyCycleReport


@dataclass(frozen=True)
class TechniqueAssignment:
    """One (block, technique) decision plus the reasoning behind it."""

    block: str
    technique: OptimizationTechnique
    rationale: str

    def describe(self) -> str:
        """One-line description used in reports."""
        return f"{self.block}: {self.technique.name} — {self.rationale}"


@dataclass(frozen=True)
class SelectionPolicy:
    """Thresholds of the duty-cycle-driven selection rule.

    Attributes:
        short_duty_cycle: duty cycles below this are "short" and trigger
            static-power optimization regardless of the leakage share.
        static_share_threshold: leakage share of the block energy above which
            static optimization is triggered even for long duty cycles.
        relevance_threshold: blocks contributing less than this fraction of
            the node energy are not optimized at all.
        aggressive_duty_cycle: duty cycles below this use the duty-cycle-aware
            power-gating variant.
        enable_voltage_scaling: offer voltage scaling to digital blocks whose
            dynamic energy dominates (needs timing slack, so architectures
            close to their maximum sustainable speed should disable it).
        voltage_scaling_blocks: blocks eligible for voltage scaling (the core
            rail domain).
    """

    short_duty_cycle: float = 0.10
    static_share_threshold: float = 0.35
    relevance_threshold: float = 0.02
    aggressive_duty_cycle: float = 0.02
    enable_voltage_scaling: bool = True
    voltage_scaling_blocks: tuple[str, ...] = ("mcu", "sram")
    clock_gating: ClockGating = field(default_factory=ClockGating)
    power_gating: PowerGating = field(default_factory=PowerGating)
    aggressive_power_gating: DutyCycleAwarePowerGating = field(
        default_factory=DutyCycleAwarePowerGating
    )
    voltage_scaling: VoltageScaling = field(default_factory=VoltageScaling)

    def __post_init__(self) -> None:
        if not 0.0 <= self.short_duty_cycle <= 1.0:
            raise OptimizationError("short duty cycle threshold must be in [0, 1]")
        if not 0.0 <= self.static_share_threshold <= 1.0:
            raise OptimizationError("static share threshold must be in [0, 1]")
        if not 0.0 <= self.relevance_threshold < 1.0:
            raise OptimizationError("relevance threshold must be in [0, 1)")
        if self.aggressive_duty_cycle > self.short_duty_cycle:
            raise OptimizationError(
                "the aggressive duty-cycle threshold must not exceed the short one"
            )


def select_techniques(
    report: DutyCycleReport,
    policy: SelectionPolicy | None = None,
    gateable_blocks: set[str] | frozenset[str] | None = None,
    database=None,
) -> list[TechniqueAssignment]:
    """Choose optimization techniques per block from a duty-cycle report.

    Args:
        report: per-block duty cycles and energy split over one wheel round.
        policy: selection thresholds (defaults to :class:`SelectionPolicy`).
        gateable_blocks: blocks that may be power gated; by default every
            block except the always-on LF receiver and the PMU supervisor.
        database: optional :class:`~repro.power.database.PowerDatabase`; when
            given, techniques that target a mode the block does not have
            (clock gating without an idle mode, power gating without a sleep
            mode) are filtered out instead of being skipped later by
            :func:`~repro.optimization.apply.apply_assignments`.

    Returns:
        The list of (block, technique) assignments, ordered by the energy
        contribution of the block (largest first).
    """
    policy = policy or SelectionPolicy()
    if gateable_blocks is None:
        gateable_blocks = frozenset(report.blocks) - {"lf_rx", "pmu"}

    def block_has_mode(block: str, mode: str) -> bool:
        if database is None:
            return True
        try:
            return mode in database.modes_of(block)
        except Exception:
            return False

    total_energy = report.total_energy_j()
    if total_energy <= 0.0:
        raise OptimizationError("the duty-cycle report carries no energy to optimize")

    assignments: list[TechniqueAssignment] = []
    ordered = sorted(report.entries, key=lambda e: e.total_energy_j, reverse=True)
    for entry in ordered:
        share = entry.total_energy_j / total_energy
        if share < policy.relevance_threshold:
            continue

        dynamic_share = 1.0 - entry.static_energy_fraction
        wants_static = (
            entry.duty_cycle < policy.short_duty_cycle
            or entry.static_energy_fraction >= policy.static_share_threshold
        )
        wants_dynamic = dynamic_share >= policy.static_share_threshold

        if wants_dynamic:
            if block_has_mode(entry.block, "idle"):
                assignments.append(
                    TechniqueAssignment(
                        block=entry.block,
                        technique=policy.clock_gating,
                        rationale=(
                            f"dynamic energy share {dynamic_share:.0%} of the block, "
                            f"{share:.0%} of the node"
                        ),
                    )
                )
            if (
                policy.enable_voltage_scaling
                and entry.block in policy.voltage_scaling_blocks
            ):
                assignments.append(
                    TechniqueAssignment(
                        block=entry.block,
                        technique=policy.voltage_scaling,
                        rationale="core-rail digital block with dominant dynamic energy",
                    )
                )

        if (
            wants_static
            and entry.block in gateable_blocks
            and block_has_mode(entry.block, "sleep")
        ):
            technique: OptimizationTechnique
            if entry.duty_cycle < policy.aggressive_duty_cycle:
                technique = policy.aggressive_power_gating
            else:
                technique = policy.power_gating
            reason_parts = []
            if entry.duty_cycle < policy.short_duty_cycle:
                reason_parts.append(f"short duty cycle {entry.duty_cycle:.1%}")
            if entry.static_energy_fraction >= policy.static_share_threshold:
                reason_parts.append(
                    f"leakage is {entry.static_energy_fraction:.0%} of the block energy"
                )
            assignments.append(
                TechniqueAssignment(
                    block=entry.block,
                    technique=technique,
                    rationale=" and ".join(reason_parts) or "static optimization",
                )
            )
    return assignments
