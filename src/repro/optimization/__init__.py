"""Optimization techniques and the duty-cycle-driven selection policy.

The methodological heart of the paper: after the per-block energy evaluation,
the designer must decide *which* blocks to optimize and *which* techniques to
use — and the right answer depends on the temporal information (duty cycle
within the wheel round), not just on the power figures.  This package
implements the circuit-level techniques as power-database rewrites, the
selection policy, and the design-space exploration helpers.
"""

from repro.optimization.exploration import (
    ArchitectureCandidate,
    ExplorationResult,
    explore_design_space,
)
from repro.optimization.selection import (
    SelectionPolicy,
    TechniqueAssignment,
    select_techniques,
)
from repro.optimization.techniques import (
    ClockGating,
    DutyCycleAwarePowerGating,
    OptimizationTechnique,
    PowerGating,
    TechniqueKind,
    VoltageScaling,
    default_technique_catalogue,
)
from repro.optimization.apply import OptimizationOutcome, apply_assignments

__all__ = [
    "OptimizationTechnique",
    "TechniqueKind",
    "ClockGating",
    "PowerGating",
    "DutyCycleAwarePowerGating",
    "VoltageScaling",
    "default_technique_catalogue",
    "SelectionPolicy",
    "TechniqueAssignment",
    "select_techniques",
    "OptimizationOutcome",
    "apply_assignments",
    "ArchitectureCandidate",
    "ExplorationResult",
    "explore_design_space",
]
