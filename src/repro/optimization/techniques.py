"""Circuit-level optimization techniques as power-database rewrites.

Every technique is expressed as a transformation of the power database for
one block: clock gating shrinks the idle-mode dynamic power, power gating
shrinks the sleep-mode leakage, voltage scaling shrinks both dynamic and
static power of the core-rail modes at a (modelled) performance cost.  The
flow applies the selected techniques, then *re-estimates* the total energy —
exactly the estimate → optimize → re-estimate loop of Fig. 1.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.power.database import PowerDatabase


class TechniqueKind(enum.Enum):
    """Whether a technique targets dynamic power, static power or both."""

    DYNAMIC = "dynamic"
    STATIC = "static"
    BOTH = "both"


@dataclass(frozen=True)
class OptimizationTechnique(abc.ABC):
    """Base class of every optimization technique.

    Attributes:
        name: technique name used in reports and assignments.
    """

    name: str = "technique"

    @property
    @abc.abstractmethod
    def kind(self) -> TechniqueKind:
        """Which power component the technique targets."""

    @abc.abstractmethod
    def apply(self, database: PowerDatabase, block: str) -> PowerDatabase:
        """Return a new database with the technique applied to ``block``."""

    def describe(self) -> str:
        """One-line description used in reports."""
        return f"{self.name} ({self.kind.value})"


@dataclass(frozen=True)
class ClockGating(OptimizationTechnique):
    """Gate the clock of a block while it idles.

    Removes most of the dynamic power of the ``idle`` mode (the clock tree
    keeps toggling in an ungated design even when the datapath is stalled).
    Modes other than ``idle`` are untouched.
    """

    name: str = "clock-gating"
    residual_idle_dynamic: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.residual_idle_dynamic <= 1.0:
            raise OptimizationError("residual idle dynamic fraction must be in [0, 1]")

    @property
    def kind(self) -> TechniqueKind:
        return TechniqueKind.DYNAMIC

    def apply(self, database: PowerDatabase, block: str) -> PowerDatabase:
        modes = set(database.modes_of(block))
        if "idle" not in modes:
            raise OptimizationError(
                f"clock gating targets the idle mode, but block {block!r} has none"
            )
        return database.scale_block(
            block,
            dynamic_factor=self.residual_idle_dynamic,
            static_factor=1.0,
            modes=("idle",),
            note=f"{self.name}: idle dynamic x{self.residual_idle_dynamic}",
        )


@dataclass(frozen=True)
class PowerGating(OptimizationTechnique):
    """Cut the supply of a block while it sleeps.

    Shrinks the sleep-mode leakage to the residual of the sleep transistor /
    retention circuitry.  The wake-up energy overhead is modelled as an
    equivalent increase of the active-mode dynamic power (the block must
    re-charge its local supply every wheel round it is used).
    """

    name: str = "power-gating"
    residual_sleep_leakage: float = 0.08
    wakeup_overhead: float = 0.005

    def __post_init__(self) -> None:
        if not 0.0 <= self.residual_sleep_leakage <= 1.0:
            raise OptimizationError("residual sleep leakage fraction must be in [0, 1]")
        if self.wakeup_overhead < 0.0:
            raise OptimizationError("wake-up overhead must be non-negative")

    @property
    def kind(self) -> TechniqueKind:
        return TechniqueKind.STATIC

    def apply(self, database: PowerDatabase, block: str) -> PowerDatabase:
        modes = set(database.modes_of(block))
        if "sleep" not in modes:
            raise OptimizationError(
                f"power gating targets the sleep mode, but block {block!r} has none"
            )
        rewritten = database.scale_block(
            block,
            dynamic_factor=1.0,
            static_factor=self.residual_sleep_leakage,
            modes=("sleep",),
            note=f"{self.name}: sleep leakage x{self.residual_sleep_leakage}",
        )
        if self.wakeup_overhead > 0.0 and "active" in modes:
            rewritten = rewritten.scale_block(
                block,
                dynamic_factor=1.0 + self.wakeup_overhead,
                static_factor=1.0,
                modes=("active",),
                note=f"{self.name}: wake-up overhead +{self.wakeup_overhead * 100:.0f}%",
            )
        return rewritten


@dataclass(frozen=True)
class DutyCycleAwarePowerGating(PowerGating):
    """Power gating tuned for very short duty cycles.

    Uses a more aggressive sleep transistor (smaller residual leakage) at the
    cost of a larger wake-up overhead; only worth it when the block sleeps
    for almost the entire wheel round, which is exactly when the selection
    policy picks it.
    """

    name: str = "duty-cycle-aware power-gating"
    residual_sleep_leakage: float = 0.03
    wakeup_overhead: float = 0.015


@dataclass(frozen=True)
class VoltageScaling(OptimizationTechnique):
    """Lower the supply voltage of a block's modes.

    Dynamic power scales with the square of the voltage ratio; leakage scales
    roughly linearly (DIBL).  The performance cost (longer compute phase) is
    not modelled at the database level — architecture-level experiments that
    slow the MCU down are expressed through :class:`~repro.blocks.mcu.McuConfig`
    instead — so this technique should only be applied to blocks whose timing
    has slack, which the selection policy checks through the schedule.
    """

    name: str = "voltage-scaling"
    voltage_ratio: float = 0.85
    leakage_voltage_sensitivity: float = 1.3

    def __post_init__(self) -> None:
        if not 0.0 < self.voltage_ratio <= 1.0:
            raise OptimizationError("voltage ratio must be in (0, 1]")
        if self.leakage_voltage_sensitivity < 0.0:
            raise OptimizationError("leakage sensitivity must be non-negative")

    @property
    def kind(self) -> TechniqueKind:
        return TechniqueKind.BOTH

    def apply(self, database: PowerDatabase, block: str) -> PowerDatabase:
        dynamic_factor = self.voltage_ratio**2
        static_factor = max(
            0.0, 1.0 - self.leakage_voltage_sensitivity * (1.0 - self.voltage_ratio)
        )
        return database.scale_block(
            block,
            dynamic_factor=dynamic_factor,
            static_factor=static_factor,
            note=(
                f"{self.name}: V x{self.voltage_ratio} "
                f"(dyn x{dynamic_factor:.2f}, leak x{static_factor:.2f})"
            ),
        )


def default_technique_catalogue() -> dict[str, OptimizationTechnique]:
    """The techniques the default selection policy can choose from."""
    techniques: tuple[OptimizationTechnique, ...] = (
        ClockGating(),
        PowerGating(),
        DutyCycleAwarePowerGating(),
        VoltageScaling(),
    )
    return {technique.name: technique for technique in techniques}
