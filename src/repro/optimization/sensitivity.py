"""Sensitivity analysis of the minimum activation speed.

Which knob moves the break-even the most?  This module perturbs each design
and environment parameter by a relative step and reports the resulting change
of the break-even speed, normalized as an elasticity
(``% change of break-even / % change of parameter``).  It is the quantitative
companion to the paper's qualitative list of dependencies (operating mode,
temperature, supply, scavenger size, amount of acquired data).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.blocks.adc import AdcConfig
from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.evaluator import EnergyEvaluator
from repro.errors import AnalysisError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class SensitivityEntry:
    """Break-even response to one perturbed parameter."""

    parameter: str
    relative_step: float
    baseline_break_even_kmh: float
    perturbed_break_even_kmh: float | None

    @property
    def delta_kmh(self) -> float | None:
        """Absolute break-even change, ``None`` if the perturbed design never activates."""
        if self.perturbed_break_even_kmh is None:
            return None
        return self.perturbed_break_even_kmh - self.baseline_break_even_kmh

    @property
    def elasticity(self) -> float | None:
        """Relative break-even change per relative parameter change."""
        delta = self.delta_kmh
        if delta is None or self.baseline_break_even_kmh == 0.0:
            return None
        return (delta / self.baseline_break_even_kmh) / self.relative_step

    def as_row(self) -> dict[str, object]:
        """Tabular view of the entry."""
        return {
            "parameter": self.parameter,
            "relative_step_pct": self.relative_step * 100.0,
            "break_even_kmh": self.perturbed_break_even_kmh
            if self.perturbed_break_even_kmh is not None
            else float("nan"),
            "delta_kmh": self.delta_kmh if self.delta_kmh is not None else float("nan"),
            "elasticity": self.elasticity if self.elasticity is not None else float("nan"),
        }


#: A perturbation returns the modified (node, scavenger, temperature offset).
Perturbation = Callable[[SensorNode, EnergyScavenger, float], tuple[SensorNode, EnergyScavenger, float]]


def _default_perturbations(step: float) -> dict[str, Perturbation]:
    """The standard knob set, each perturbed by ``+step`` relative."""

    def scavenger_size(node, scavenger, temperature):
        return node, scavenger.scaled(1.0 + step), temperature

    def payload_bits(node, scavenger, temperature):
        radio = node.radio
        scaled = replace(radio, payload_bits=max(1, int(round(radio.payload_bits * (1.0 + step)))))
        return node.with_radio(scaled), scavenger, temperature

    def tx_interval(node, scavenger, temperature):
        radio = node.radio
        scaled = replace(
            radio, tx_interval_revs=max(1, int(round(radio.tx_interval_revs * (1.0 + step))))
        )
        return node.with_radio(scaled), scavenger, temperature

    def adc_sample_rate(node, scavenger, temperature):
        adc = node.adc
        scaled = AdcConfig(
            sample_rate_hz=adc.sample_rate_hz * (1.0 + step),
            resolution_bits=adc.resolution_bits,
        )
        return replace(node, adc=scaled), scavenger, temperature

    def mcu_cycles_per_sample(node, scavenger, temperature):
        mcu = node.mcu
        scaled = replace(
            mcu, cycles_per_sample=max(0, int(round(mcu.cycles_per_sample * (1.0 + step))))
        )
        return node.with_mcu(scaled), scavenger, temperature

    def junction_temperature(node, scavenger, temperature):
        # Interpreted as a +step relative change of the absolute Celsius value
        # around the baseline working temperature.
        return node, scavenger, temperature * (1.0 + step)

    return {
        "scavenger size": scavenger_size,
        "radio payload bits": payload_bits,
        "transmission interval (revolutions)": tx_interval,
        "ADC sample rate": adc_sample_rate,
        "MCU cycles per sample": mcu_cycles_per_sample,
        "junction temperature": junction_temperature,
    }


def break_even_sensitivity(
    node: SensorNode,
    database: PowerDatabase,
    scavenger: EnergyScavenger,
    relative_step: float = 0.10,
    temperature_c: float = 25.0,
    high_kmh: float = 250.0,
    perturbations: dict[str, Perturbation] | None = None,
) -> list[SensitivityEntry]:
    """Compute the break-even sensitivity to every knob.

    Args:
        node: the baseline architecture.
        database: power characterization.
        scavenger: baseline harvester.
        relative_step: relative perturbation applied to each parameter.
        temperature_c: baseline junction temperature of the sweep.
        high_kmh: upper bound of the break-even search.
        perturbations: custom knob set; the default covers scavenger size,
            payload, transmission interval, ADC rate, MCU workload and
            temperature.

    Raises:
        AnalysisError: if the baseline design never reaches a positive balance
            (its sensitivity would be meaningless) or the step is not positive.
    """
    if relative_step <= 0.0:
        raise AnalysisError("the relative perturbation step must be positive")

    # Knobs that leave the node unchanged (scavenger size, temperature) can
    # reuse its re-targeted database and compiled power table; each break-even
    # search itself runs through the vectorized batch path.
    # The cache value holds the node itself so its id cannot be recycled.
    evaluator_cache: dict[int, tuple[SensorNode, EnergyEvaluator]] = {}

    def break_even(candidate_node, candidate_scavenger, candidate_temperature):
        cached = evaluator_cache.get(id(candidate_node))
        if cached is not None and cached[0] is candidate_node:
            evaluator = cached[1]
        else:
            evaluator = EnergyEvaluator(candidate_node, database)
            evaluator_cache[id(candidate_node)] = (candidate_node, evaluator)
        analysis = EnergyBalanceAnalysis(
            candidate_node, database, candidate_scavenger, evaluator=evaluator
        )
        return analysis.break_even_speed_kmh(
            high_kmh=high_kmh,
            point_factory=lambda speed: OperatingPoint(
                speed_kmh=speed, temperature_c=candidate_temperature
            ),
        )

    baseline = break_even(node, scavenger, temperature_c)
    if baseline is None:
        raise AnalysisError(
            "the baseline design never reaches a positive energy balance; "
            "size the scavenger before running a sensitivity analysis"
        )

    knobs = perturbations or _default_perturbations(relative_step)
    entries: list[SensitivityEntry] = []
    for name, perturb in knobs.items():
        perturbed_node, perturbed_scavenger, perturbed_temperature = perturb(
            node, scavenger, temperature_c
        )
        perturbed = break_even(perturbed_node, perturbed_scavenger, perturbed_temperature)
        entries.append(
            SensitivityEntry(
                parameter=name,
                relative_step=relative_step,
                baseline_break_even_kmh=baseline,
                perturbed_break_even_kmh=perturbed,
            )
        )
    return sorted(
        entries,
        key=lambda entry: abs(entry.elasticity) if entry.elasticity is not None else 0.0,
        reverse=True,
    )
