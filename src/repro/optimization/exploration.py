"""Design-space exploration: architectures, scavenger sizes, break-even speeds.

The introduction states the challenge plainly: *"reduce the minimum speed for
the monitoring system activation in order to acquire the most relevant number
of sensor data"*.  The knobs are the node architecture (operating
conditions), the circuit-level techniques (the power database) and the
scavenger size.  This module sweeps those knobs and reports the break-even
speed of every candidate so the designer can pick the cheapest one that meets
the activation-speed target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.blocks.node import SensorNode
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.evaluator import EnergyEvaluator
from repro.errors import AnalysisError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger


@dataclass(frozen=True)
class ArchitectureCandidate:
    """One design point of the exploration."""

    node: SensorNode
    database: PowerDatabase
    scavenger: EnergyScavenger
    label: str


@dataclass(frozen=True)
class ExplorationResult:
    """Break-even figures of one evaluated candidate."""

    label: str
    break_even_kmh: float | None
    energy_per_rev_at_60_j: float
    generated_per_rev_at_60_j: float

    @property
    def activates(self) -> bool:
        """True when the candidate reaches a positive balance somewhere."""
        return self.break_even_kmh is not None

    def as_row(self) -> dict[str, object]:
        """Tabular view of the candidate."""
        return {
            "candidate": self.label,
            "break_even_kmh": self.break_even_kmh
            if self.break_even_kmh is not None
            else float("nan"),
            "required_uj_per_rev_60kmh": self.energy_per_rev_at_60_j * 1e6,
            "generated_uj_per_rev_60kmh": self.generated_per_rev_at_60_j * 1e6,
            "activates": self.activates,
        }


def evaluate_candidate(
    candidate: ArchitectureCandidate,
    point_factory: Callable[[float], OperatingPoint] | None = None,
    high_kmh: float = 250.0,
    evaluator: "EnergyEvaluator | None" = None,
) -> ExplorationResult:
    """Break-even speed and 60 km/h snapshot of one candidate.

    The break-even search runs through the vectorized batch path of
    :class:`EnergyBalanceAnalysis` (each bracket-refinement level is one
    compiled-table sweep).  ``evaluator`` lets callers sweeping only the
    scavenger share one compiled table across candidates.
    """
    analysis = EnergyBalanceAnalysis(
        candidate.node, candidate.database, candidate.scavenger, evaluator=evaluator
    )
    break_even = analysis.break_even_speed_kmh(
        high_kmh=high_kmh, point_factory=point_factory
    )
    snapshot_point = (
        point_factory(60.0) if point_factory is not None else OperatingPoint(speed_kmh=60.0)
    )
    return ExplorationResult(
        label=candidate.label,
        break_even_kmh=break_even,
        energy_per_rev_at_60_j=analysis.required_energy_j(snapshot_point),
        generated_per_rev_at_60_j=analysis.generated_energy_j(60.0),
    )


def explore_design_space(
    candidates: Iterable[ArchitectureCandidate],
    point_factory: Callable[[float], OperatingPoint] | None = None,
    high_kmh: float = 250.0,
) -> list[ExplorationResult]:
    """Evaluate every candidate and return the results sorted by break-even speed.

    Candidates that never activate sort last.
    """
    results = [
        evaluate_candidate(candidate, point_factory=point_factory, high_kmh=high_kmh)
        for candidate in candidates
    ]
    if not results:
        raise AnalysisError("the design-space exploration received no candidates")
    return sorted(
        results,
        key=lambda r: (r.break_even_kmh is None, r.break_even_kmh or float("inf")),
    )


def scavenger_size_sweep(
    node: SensorNode,
    database: PowerDatabase,
    scavenger: EnergyScavenger,
    size_factors: Sequence[float],
    point_factory: Callable[[float], OperatingPoint] | None = None,
) -> list[ExplorationResult]:
    """Break-even speed as a function of the scavenger size.

    This is the paper's "the available energy depends almost on the size of
    such a scavenging device" knob: the sweep shows how much device area buys
    how much activation-speed reduction.
    """
    if not size_factors:
        raise AnalysisError("the size sweep needs at least one size factor")
    candidates = [
        ArchitectureCandidate(
            node=node,
            database=database,
            scavenger=scavenger.scaled(float(factor)),
            label=f"{node.name} + scavenger x{float(factor):.2f}",
        )
        for factor in size_factors
    ]
    # Only the scavenger varies across the sweep, so the re-targeted database
    # and its compiled power table are built once and shared.
    shared_evaluator = EnergyEvaluator(node, database)
    return [
        evaluate_candidate(
            candidate, point_factory=point_factory, evaluator=shared_evaluator
        )
        for candidate in candidates
    ]
