"""Cross-process advisory file locking shared by the on-disk subsystems.

Both the serving layer's persistent :class:`~repro.serve.store.ResultStore`
and the checkpoint journal (:mod:`repro.scenario.checkpoint`) are
directories that several *processes* — serve replicas, CLI runs, CI smoke
jobs — mutate concurrently.  Their individual files are already safe via
the write-then-rename discipline; what needs a lock is the *read-modify-
write* of shared metadata (the store index, the checkpoint manifest), so
two writers cannot interleave a load and a save and silently drop each
other's entries.

:class:`FileLock` combines an in-process re-entrant lock (threads of one
replica serialize cheaply, and nesting is safe) with an ``fcntl.flock``
advisory lock on a dedicated lock file (processes serialize).  Each
outermost acquisition opens a fresh file descriptor, so the flock is held
exactly as long as the context manager.  On platforms without ``fcntl``
the lock degrades to the in-process lock alone — single-process use stays
correct, multi-replica deployments are documented as POSIX-only.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["FileLock"]


class FileLock:
    """A re-entrant advisory lock backed by ``flock`` on a lock file.

    Args:
        path: the lock file; created (with parents) on first acquisition.
            The file exists only to carry the lock — it stays empty.

    Use as a context manager::

        lock = FileLock(directory / ".lock")
        with lock:
            ...  # read-modify-write shared state
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._thread_lock = threading.RLock()
        self._fd: int | None = None
        self._depth = 0

    def __enter__(self) -> "FileLock":
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth == 1 and fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:  # pragma: no cover - exotic filesystems
                os.close(fd)
                self._depth -= 1
                self._thread_lock.release()
                raise
            self._fd = fd
        return self

    def __exit__(self, *exc_info) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        self._thread_lock.release()

    def locked_by_this_thread(self) -> bool:
        """Whether the calling thread currently holds the lock (for asserts)."""
        acquired = self._thread_lock.acquire(blocking=False)
        if not acquired:
            return False
        try:
            return self._depth > 0
        finally:
            self._thread_lock.release()
