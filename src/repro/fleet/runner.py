"""The fleet runner: cohort-shared emulation of a whole vehicle population.

Running ``NodeEmulator.emulate()`` once per vehicle is correct but wasteful
at fleet scale: every vehicle would rebuild the evaluator (and compiled
power table), re-walk its drive cycle round by round, re-classify the same
quantized speed bins and re-evaluate the same revolution energies.  The
runner shares all of that across the population:

* **Groups** — vehicles with the same (architecture, workload, power
  database) share one :class:`~repro.core.evaluator.EnergyEvaluator` and
  therefore one compiled power table, exactly like study grid points.
* **Cohorts** — vehicles with the same (group, drive cycle, quantized
  speed scale) share one materialized cycle: the per-unit arrays, the
  quantized speed-bin classification, the per-round bin indices and the
  state-log sampling walk are computed once per cohort, not per vehicle.
  Thermal fleets (``FleetSpec.thermal``) add the quantized ambient as a
  third cohort axis: the in-tyre
  :class:`~repro.conditions.temperature.TyreThermalModel` is replayed once
  per (cycle, speed-scale, ambient-bin) cohort — ambients are snapped to
  the shared :func:`~repro.core.quantize.ambient_bin` centers at
  materialization — producing a per-unit temperature trajectory next to
  the speed/duration arrays, so the fast path survives thermally
  realistic populations instead of demoting every vehicle to ``emulate()``.
* **One cross-vehicle sweep** — the union of quantized
  (speed, temperature, phase-pattern) energy bins over all vehicles of a
  group — per-unit trajectory temperatures included — is evaluated in ONE
  vectorized batch call
  (:meth:`~repro.core.emulator.NodeEmulator.evaluate_energy_bins`) before
  any emulation starts; the batch kernel is bitwise-identical to the
  per-miss path, so shared bins cannot change results.  After the sweep
  the per-cohort demand side is gathered ONCE — a full per-unit load
  vector for thermal cohorts, a per-(cohort, temperature-bin) energy
  gather for constant ones — instead of being rebuilt per vehicle.

Each vehicle then reduces to pure array work — its own harvest sweep, load
referral and :func:`~repro.scavenger.storage.trajectory` kernel — streamed
through the shared :class:`~repro.scenario.engine.ChunkedEngine` into the
fleet accumulators.  Per-vehicle figures are bit-identical to a naive
``emulate()`` of the same vehicle scenario (the storage-ledger and batch
contracts guarantee it; the throughput benchmark asserts it), which is what
makes the aggregates independent of worker counts and backends.

Cycles the shared path cannot cover — a speed bin whose schedule cannot be
built (feasibility straddles), or a thermal trajectory that leaves the
modelled temperature range — fall back to the ordinary per-vehicle
``emulate()`` with the shared bins seeded into its cache, so error timing
and results stay exactly those of the scalar path.  Every vehicle outcome
is tagged with the path it took (and the fallback reason), surfaced as
``fast_path_vehicles`` / ``fallback_vehicles`` / ``fallback_reasons`` on the
result metadata — a fast-path regression shows up as a counter, not as a
silent slowdown.
"""

from __future__ import annotations

import numpy as np

from repro.backend import resolve_backend
from repro.conditions.operating_point import TEMPERATURE_RANGE_C
from repro.core.emulator import EmulationResult, NodeEmulator
from repro.core.evaluator import EnergyEvaluator
from repro.core.quantize import (
    AMBIENT_QUANTUM_C,
    SPEED_QUANTUM_KMH,
    TEMPERATURE_QUANTUM_C,
    ambient_bin,
    temperature_bin,
    temperature_bin_center_c,
    temperature_bins,
)
from repro.errors import ConfigError, EmulationError, ScheduleError
from repro.fleet.aggregate import (
    DEFAULT_SURVIVAL_BUCKETS,
    FleetAccumulator,
    FleetResult,
)
from repro.fleet.spec import FleetSpec, FleetVehicle, ThermalSpec
from repro.scavenger.storage import scaled_storage, trajectory
from repro.scenario.checkpoint import CheckpointStore
from repro.scenario.engine import ChunkedEngine
from repro.scenario.spec import ScenarioSpec

__all__ = ["FleetRunner", "run_fleet"]


def _group_key(spec: ScenarioSpec) -> str:
    """The evaluator-sharing key of one vehicle scenario.

    Single-sourced on the spec (``ScenarioSpec.evaluator_group_key``) so
    fleet groups can never drift from the study evaluator cache keyed the
    same way.
    """
    return spec.evaluator_group_key()


def _cohort_key(vehicle: FleetVehicle, thermal: ThermalSpec | None = None) -> str:
    """The cycle-materialization key: (group, cycle reference, speed scale).

    Thermal fleets add the quantized ambient bin: the replayed temperature
    trajectory is a function of the ambient, so only vehicles in one
    ambient bin (whose ambients were snapped to the *same* bin-center float
    at materialization) can share one trajectory bitwise.
    """
    if thermal is None:
        return repr(
            (
                _group_key(vehicle.scenario),
                vehicle.scenario.drive_cycle,
                vehicle.speed_scale,
            )
        )
    return repr(
        (
            _group_key(vehicle.scenario),
            vehicle.scenario.drive_cycle,
            vehicle.speed_scale,
            ambient_bin(vehicle.scenario.temperature_c),
        )
    )


class _CohortTable:
    """Shared per-cohort cycle materialization (read-only after build).

    Holds everything about one (cycle, speed scale[, ambient bin]) pairing
    that does not depend on the individual vehicle: the per-unit arrays of
    the walked cycle, the per-round quantized bin structure, the replayed
    temperature trajectory (thermal cohorts), and the state-log sampling
    walk.  ``fallback`` marks cohorts the fast path cannot cover —
    ``fallback_reason`` says why (``"schedule"``: a bin straddles the node's
    feasibility limit; ``"temperature-range"``: the thermal trajectory
    leaves the modelled range) — their vehicles run the ordinary
    per-vehicle ``emulate()`` so errors surface at exactly the simulated
    instant the scalar path raises them.

    After the cross-vehicle sweep the runner attaches the precomputed
    demand side: ``unit_load`` (thermal cohorts — the full per-unit load
    vector, identical for every member vehicle) or ``energies_by_temp_bin``
    (constant cohorts — one gathered energy array per temperature bin seen
    in the population, replacing the per-vehicle list comprehension).
    """

    __slots__ = (
        "group_key",
        "cycle_name",
        "duration_s",
        "is_round",
        "durations",
        "speeds",
        "ends",
        "round_indices",
        "unique_bins",
        "inverse",
        "sample_times",
        "sample_units",
        "fallback",
        "fallback_reason",
        "thermal",
        "temps",
        "unit_temp_bins",
        "unit_bin_inverse",
        "triples",
        "round_triple",
        "unit_load",
        "energies_by_temp_bin",
        "seen_temp_bins",
    )

    def __init__(self) -> None:
        self.fallback = False
        self.fallback_reason = None
        self.thermal = False
        self.unique_bins = []
        self.temps = None
        self.unit_temp_bins = None
        self.unit_bin_inverse = None
        self.triples = []
        self.round_triple = None
        self.unit_load = None
        self.energies_by_temp_bin = {}
        self.seen_temp_bins = set()


def _build_cohort_table(
    probe: NodeEmulator,
    cycle,
    record_interval_s: float,
    idle_step_s: float,
    thermal_model=None,
) -> _CohortTable:
    """Materialize one cohort's cycle through the probe emulator.

    The probe supplies the exact walk (`materialize_cycle`) and speed-bin
    classification (`_speed_key_for`) the per-vehicle emulator would run, so
    the table can never drift from what ``emulate()`` does.  ``thermal_model``
    — a freshly built model at the cohort's bin-center ambient — switches the
    walk to the thermal replay: the per-unit temperature trajectory is kept
    on the table and the bin structure spans full
    (speed, temperature, phase-pattern) triples instead of pinning one
    temperature bin per vehicle.
    """
    table = _CohortTable()
    table.cycle_name = cycle.name
    table.duration_s = cycle.duration_s
    units, is_round, durations, speeds, ends, temps = probe.materialize_cycle(
        cycle, idle_step_s, thermal_model=thermal_model
    )
    table.is_round = is_round
    table.durations = durations
    table.speeds = speeds
    table.ends = ends
    table.round_indices = np.flatnonzero(is_round)
    table.thermal = thermal_model is not None

    node = probe.node
    if table.thermal:
        low_t, high_t = TEMPERATURE_RANGE_C
        if not bool(np.all((temps >= low_t) & (temps <= high_t))):
            # Self-heating pushed the trajectory out of the modelled range:
            # the per-vehicle emulate() path raises on the exact offending
            # unit (stepwise-loop timing), which the fast path cannot
            # reproduce — every member vehicle falls back.
            table.fallback = True
            table.fallback_reason = "temperature-range"
            return table
        table.temps = temps
        # Per-unit temperature bins for the standstill sweep — the same
        # np.unique(temperature_bins(...)) walk emulate()'s pure kernel runs.
        table.unit_temp_bins, table.unit_bin_inverse = np.unique(
            temperature_bins(temps), return_inverse=True
        )

        # Per-round (speed, temperature, pattern) triple structure: one
        # entry per distinct triple, plus the per-round index into that
        # list.  Schedules are shared per (speed key, pattern) — triples
        # differing only in temperature reuse one schedule object, which
        # groups them into one vectorized accumulation in the sweep.
        positions: dict[tuple, int] = {}
        built: dict[tuple, object] = {}
        triples: list[tuple[tuple, float, float, object]] = []
        round_triple = np.empty(len(table.round_indices), dtype=np.intp)
        for position, i in enumerate(table.round_indices):
            unit = units[i]
            pattern = node.phase_pattern(unit.index)
            speed_key, eval_speed, _use_bin = probe._speed_key_for(
                unit.speed_kmh, unit.index, pattern
            )
            temp_bin = temperature_bin(float(temps[i]))
            key = (speed_key, temp_bin, *pattern)
            slot = positions.get(key)
            if slot is None:
                schedule_key = (speed_key, pattern)
                schedule = built.get(schedule_key)
                if schedule is None:
                    try:
                        schedule = node.schedule_for_pattern(eval_speed, *pattern)
                    except ScheduleError:
                        table.fallback = True
                        table.fallback_reason = "schedule"
                        return table
                    built[schedule_key] = schedule
                slot = len(triples)
                positions[key] = slot
                triples.append(
                    (key, eval_speed, temperature_bin_center_c(temp_bin), schedule)
                )
            round_triple[position] = slot
        table.triples = triples
        table.round_triple = round_triple
    else:
        # Per-round quantized bin structure: one (speed key, pattern) entry
        # per distinct bin, plus the per-round index into that list.
        # Schedules are built once per entry (pattern-addressed), for the
        # cross-vehicle sweep.
        positions = {}
        unique: list[tuple[tuple, tuple, float, object]] = []
        inverse = np.empty(len(table.round_indices), dtype=np.intp)
        for position, i in enumerate(table.round_indices):
            unit = units[i]
            pattern = node.phase_pattern(unit.index)
            speed_key, eval_speed, _use_bin = probe._speed_key_for(
                unit.speed_kmh, unit.index, pattern
            )
            ukey = (speed_key, pattern)
            slot = positions.get(ukey)
            if slot is None:
                try:
                    schedule = node.schedule_for_pattern(eval_speed, *pattern)
                except ScheduleError:
                    # The bin straddles the node's feasibility limit (or the
                    # speed is unsustainable): this cohort's vehicles take
                    # the per-vehicle emulate() path, which raises — or
                    # recovers — with the scalar path's exact timing.
                    table.fallback = True
                    table.fallback_reason = "schedule"
                    return table
                slot = len(unique)
                positions[ukey] = slot
                unique.append((speed_key, pattern, eval_speed, schedule))
            inverse[position] = slot
        table.unique_bins = unique
        table.inverse = inverse

    # State-log sampling walk: the exact accumulation emulate() performs
    # when recording the log, shared by every vehicle of the cohort (sample
    # times — and their unit assignment — depend only on the cycle).
    sample_times: list[float] = []
    sample_units: list[int] = []
    next_record_s = 0.0
    for i in range(len(units)):
        end_time = ends[i]
        while next_record_s <= end_time:
            sample_times.append(next_record_s)
            sample_units.append(i)
            next_record_s += record_interval_s
    table.sample_times = np.array(sample_times)
    table.sample_units = np.array(sample_units, dtype=np.intp)
    return table


def _survival_from_samples(
    times: np.ndarray, active: np.ndarray, duration_s: float, buckets: int
) -> tuple:
    """Per-bucket active fraction of one vehicle's sampled state log.

    Used identically by the cohort fast path (samples reconstructed from the
    trajectory) and the per-vehicle fallback (samples from the recorded
    log), so both paths bucket the same values the same way.
    """
    if times.size == 0 or duration_s <= 0.0:
        return tuple([float("nan")] * buckets)
    index = np.minimum((times / duration_s * buckets).astype(np.intp), buckets - 1)
    counts = np.bincount(index, minlength=buckets)
    active_counts = np.bincount(index, weights=active.astype(float), minlength=buckets)
    with np.errstate(invalid="ignore"):
        fractions = np.where(counts > 0, active_counts / np.maximum(counts, 1), np.nan)
    return tuple(float(value) for value in fractions)


def _vehicle_row(
    vehicle_index: int,
    spec: ScenarioSpec,
    speed_scale: float,
    storage_scale: float,
    result: EmulationResult,
    active_at_end: bool,
) -> dict[str, object]:
    """The per-vehicle result row (identical key order on every path)."""
    summary = result.summary()
    hours = result.duration_s / 3600.0
    row: dict[str, object] = {
        "vehicle": vehicle_index,
        "scenario": spec.name,
        "cycle": result.cycle_name,
        "speed_scale": speed_scale,
        "temperature_c": spec.temperature_c,
        "scavenger_size": spec.scavenger_size,
        "storage_scale": storage_scale,
    }
    row.update(summary)
    row["brownout_per_hour"] = summary["brownout_events"] / hours if hours > 0.0 else float("nan")
    row["active_at_end"] = bool(active_at_end)
    return row


def _thermal_unit_load(
    table: _CohortTable, node, bins: dict, standstill: dict
) -> np.ndarray:
    """The per-unit load vector of one thermal cohort (vehicle-independent).

    Element for element what ``emulate()``'s pure kernel computes: referred
    revolution energies gathered from the shared bins at each round's
    trajectory temperature, and referred sleep energy at each idle unit's
    temperature bin (the same ``np.unique`` gather as
    ``_standstill_power_sweep``).  Nothing here depends on the vehicle —
    scavenger size and storage scale enter elsewhere — so the vector is
    computed once per cohort and shared read-only.
    """
    count = len(table.is_round)
    load = np.zeros(count)
    if table.round_indices.size:
        energies_unique = np.array(
            [bins[key][0] for key, _speed, _temp, _schedule in table.triples]
        )
        load[table.round_indices] = node.pmu.referred_to_storage(
            energies_unique[table.round_triple]
        )
    per_bin = np.array([standstill[int(b)] for b in table.unit_temp_bins])
    sleep_power = per_bin[table.unit_bin_inverse]
    idle = ~table.is_round
    load[idle] = node.pmu.referred_to_storage(sleep_power[idle] * table.durations[idle])
    load.setflags(write=False)
    return load


def _cohort_vehicle_outcome(
    vehicle_index: int,
    spec: ScenarioSpec,
    speed_scale: float,
    storage_scale: float,
    node,
    table: _CohortTable,
    bins: dict,
    standstill: dict,
    buckets: int,
    array_backend=None,
) -> dict[str, object]:
    """One vehicle through the shared-cohort fast path (pure array work).

    Mirrors the pure-kernel branch of ``NodeEmulator.emulate()`` operation
    for operation — harvest sweep, bin gather, load referral, trajectory
    kernel, summary — against the cohort's shared cycle table and the
    group's shared bin store, so the figures are bit-identical to a naive
    per-vehicle ``emulate()`` (with the fleet's thermal model, for thermal
    cohorts).
    """
    scavenger = spec.build_scavenger()
    storage = scaled_storage(spec.build_storage(), storage_scale)

    # Supply side: every wheel round's harvest in one vectorized sweep.
    count = len(table.is_round)
    harvest = np.zeros(count)
    round_indices = table.round_indices
    harvest[round_indices] = scavenger.energy_sweep_j(table.speeds[round_indices])
    if np.any(harvest < 0.0):
        raise EmulationError("cannot deposit negative energy")

    # Demand side.  Thermal cohorts: the whole load vector is a function of
    # the cohort (trajectory temperatures, shared bins, group node), not of
    # the vehicle — precomputed once after the sweep and reused read-only.
    if table.thermal:
        load = table.unit_load
        if load is None:  # pragma: no cover - post-sweep tables always carry it
            load = _thermal_unit_load(table, node, bins, standstill)
    else:
        # Constant-temperature cohorts: gather the shared bins at this
        # vehicle's temperature.  The per-bin energy gather is precomputed
        # per (cohort, temperature bin) after the sweep; the inline
        # comprehension remains as the defensive path for bins the
        # discovery pass never saw.
        temp_bin = temperature_bin(spec.temperature_c)
        energies_unique = table.energies_by_temp_bin.get(temp_bin)
        if energies_unique is None:
            energies_unique = np.array(
                [
                    bins[(speed_key, temp_bin, *pattern)][0]
                    for speed_key, pattern, _eval_speed, _schedule in table.unique_bins
                ]
            )
        load = np.zeros(count)
        if round_indices.size:
            load[round_indices] = node.pmu.referred_to_storage(
                energies_unique[table.inverse]
            )
        sleep_power_w = standstill[temp_bin]
        idle = ~table.is_round
        load[idle] = node.pmu.referred_to_storage(sleep_power_w * table.durations[idle])

    # initial_charge_j=None replays the element's own (construction-time
    # validated) initial charge — the per-call range check is skipped in
    # this per-vehicle hot loop.
    traj = trajectory(
        storage,
        harvest,
        load,
        table.durations,
        initially_active=not storage.is_depleted,
        backend=array_backend,
    )

    result = EmulationResult(
        node_name=node.name,
        cycle_name=table.cycle_name,
        duration_s=table.duration_s,
    )
    result.revolutions = int(table.is_round.sum())
    result.moving_time_s = float(table.durations[table.is_round].sum())
    result.harvested_j = float(traj.banked_j.sum())
    result.discarded_j = float(np.maximum(0.0, harvest - traj.banked_j).sum())
    result.consumed_j = float(traj.drawn_j.sum())
    result.active_revolutions = int((table.is_round & traj.withdrew).sum())
    result.active_time_s = float(table.durations[traj.withdrew].sum())
    result.brownout_events = traj.brownout_events

    sample_active = traj.active[table.sample_units]
    survival = _survival_from_samples(table.sample_times, sample_active, table.duration_s, buckets)
    active_at_end = bool(sample_active[-1]) if sample_active.size else False
    return {
        "row": _vehicle_row(
            vehicle_index, spec, speed_scale, storage_scale, result, active_at_end
        ),
        "survival": survival,
    }


def _emulate_vehicle_outcome(
    vehicle_index: int,
    spec: ScenarioSpec,
    speed_scale: float,
    storage_scale: float,
    node,
    database,
    evaluator: EnergyEvaluator,
    bins: dict,
    buckets: int,
    record_interval_s: float,
    idle_step_s: float,
    thermal: ThermalSpec | None = None,
) -> dict[str, object]:
    """One vehicle through the ordinary per-vehicle ``emulate()`` path.

    The fallback for cohorts the fast path cannot cover (and for worker
    processes without the fork-inherited shared tables); shared bins — when
    available — still seed the emulator's cache, and the outcome is
    bit-identical to the fast path by the emulator's byte-identity contract.
    Thermal fleets hand their :class:`~repro.fleet.spec.ThermalSpec` down so
    the fallback drives the same in-tyre model — built at the vehicle's
    (bin-centered) ambient — that the cohort replay used.
    """
    cycle = spec.build_drive_cycle()
    if cycle is None:  # pragma: no cover - FleetSpec validation prevents it
        raise ConfigError("fleet vehicles need a drive cycle")
    cycle = cycle.scaled(speed_scale)
    storage = scaled_storage(spec.build_storage(), storage_scale)
    emulator = NodeEmulator(
        node,
        database,
        spec.build_scavenger(),
        storage,
        base_point=spec.operating_point(),
        thermal_model=thermal.build(spec.temperature_c) if thermal is not None else None,
        evaluator=evaluator,
    )
    if bins:
        emulator.seed_energy_cache(bins)
    result = emulator.emulate(cycle, record_interval_s=record_interval_s, idle_step_s=idle_step_s)
    arrays = result.sample_arrays()
    survival = _survival_from_samples(
        arrays["time_s"], arrays["node_active"], result.duration_s, buckets
    )
    active = arrays["node_active"]
    active_at_end = bool(active[-1]) if active.size else False
    return {
        "row": _vehicle_row(
            vehicle_index, spec, speed_scale, storage_scale, result, active_at_end
        ),
        "survival": survival,
    }


# ---------------------------------------------------------------------------
# Process-backend sharing
#
# The shared cohort tables, bin stores and standstill memos are stashed in
# module globals *before* the engine creates its process pool: the fork
# context snapshots them into every worker for free (the same mechanism that
# carries user registry registrations).  On platforms without fork the
# workers simply find the globals empty and take the per-vehicle emulate()
# path — slower, bit-identical.
# ---------------------------------------------------------------------------

_SHARED_TABLES: dict[str, _CohortTable] = {}
_SHARED_BINS: dict[str, dict] = {}
_SHARED_STANDSTILL: dict[str, dict[int, float]] = {}

#: Per-worker-process component memo, keyed by (group key, array backend).
_WORKER_COMPONENTS: dict[tuple[str, str], tuple] = {}


def _worker_components(spec: ScenarioSpec, array_backend: str):
    """The (node, database, evaluator) triple of one worker-side vehicle."""
    key = (_group_key(spec), array_backend)
    cached = _WORKER_COMPONENTS.get(key)
    if cached is None:
        cached = spec.build_components(backend=array_backend)
        _WORKER_COMPONENTS[key] = cached
    return cached


def _process_vehicle(payload) -> dict[str, object]:
    """Worker entry of the process backend: one vehicle, self-contained."""
    (
        document,
        vehicle_index,
        speed_scale,
        storage_scale,
        cohort_key,
        group_key,
        buckets,
        record_interval_s,
        idle_step_s,
        array_backend,
        thermal_document,
        force_fallback,
    ) = payload
    spec = ScenarioSpec.from_dict(document)
    thermal = (
        ThermalSpec.coerce(thermal_document) if thermal_document is not None else None
    )
    node, database, evaluator = _worker_components(spec, array_backend)
    table = _SHARED_TABLES.get(cohort_key)
    bins = _SHARED_BINS.get(group_key, {})
    usable = table is not None and not table.fallback
    if usable and table.thermal and table.unit_load is None:
        usable = False  # pragma: no cover - post-sweep tables always carry it
    if usable and not force_fallback:
        outcome = _cohort_vehicle_outcome(
            vehicle_index,
            spec,
            speed_scale,
            storage_scale,
            node,
            table,
            bins,
            _SHARED_STANDSTILL.get(group_key, {}),
            buckets,
            array_backend=evaluator.backend,
        )
        outcome["path"] = "cohort"
        return outcome
    if force_fallback:
        reason = "forced"
    elif table is None:
        reason = "no-shared-table"
    else:
        reason = table.fallback_reason or "schedule"
    outcome = _emulate_vehicle_outcome(
        vehicle_index,
        spec,
        speed_scale,
        storage_scale,
        node,
        database,
        evaluator,
        bins,
        buckets,
        record_interval_s,
        idle_step_s,
        thermal=thermal,
    )
    outcome["path"] = "fallback"
    outcome["fallback_reason"] = reason
    return outcome


class FleetRunner:
    """Materializes a fleet and runs it on the shared execution engine.

    Args:
        fleet: the population description.
        workers: engine pool width (``None``/1 = sequential).
        backend: ``"thread"`` (default) or ``"process"`` — the same
            semantics as ``Study.run``; aggregate rows are identical across
            all settings.
        survival_buckets: normalized-time resolution of the survival curve.
        keep_vehicle_rows: keep per-vehicle rows on the result (``False``
            aggregates streaming-only).
        record_interval_s: state-log sampling interval of each vehicle.
        idle_step_s: stationary-time step of each vehicle.
        checkpoint: optional checkpoint directory.  Completed vehicle chunks
            are journaled there (crash-safe, see
            :class:`~repro.scenario.checkpoint.CheckpointStore`); rerunning
            with the same fleet/seed/parameters replays journaled chunks and
            computes only the rest — byte-identical to an uninterrupted run.
        max_chunks: stop after computing this many NEW chunks this run
            (replayed chunks are free); the result is marked partial.
        retries: per-vehicle retry budget for transient worker failures
            (exceptions and process-worker death).  With ``retries > 0`` the
            run degrades gracefully — failed vehicles are reported on the
            result metadata instead of aborting the whole fleet.
        retry_backoff_s: pause before each retry.
        progress: optional engine observer (per-vehicle and per-chunk
            events, see :meth:`~repro.scenario.engine.ChunkedEngine.run_chunks`);
            the serving layer uses it for live job progress.
        should_stop: optional cancellation hook polled before each new
            chunk; with a checkpoint, stopping this way is equivalent to a
            resumable interruption (the result is marked partial).
        evaluator_cache: optional shared evaluator cache exposing
            ``get(key, builder)`` (the serving layer's bounded LRU); groups
            then reuse evaluators/compiled tables across runs, observable
            through ``evaluator_builds``/``evaluator_cache_hits``.
        array_backend: array-backend selection for the hot kernels (a name,
            an :class:`~repro.backend.base.ArrayBackend`, or ``None`` for
            argument > ``REPRO_ARRAY_BACKEND`` > numpy).  An execution
            policy only: it never enters the fleet digest or
            :meth:`checkpoint_key`, and the default numpy backend is
            bit-identical to the pre-seam runner.  Callers sharing one
            ``evaluator_cache`` across runs should use one backend per
            process — the cache key is (rightly) backend-free.
        force_fallback: route EVERY vehicle through the per-vehicle
            ``emulate()`` fallback (reason ``"forced"``) even where the
            cohort fast path applies.  A benchmarking/debug knob — the
            results are bit-identical either way (that is the fast path's
            contract), only slower; like ``array_backend`` it is an
            execution policy and never enters :meth:`checkpoint_key`.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        workers: int | None = None,
        backend: str = "thread",
        survival_buckets: int = DEFAULT_SURVIVAL_BUCKETS,
        keep_vehicle_rows: bool = True,
        record_interval_s: float = 1.0,
        idle_step_s: float = 1.0,
        checkpoint: str | None = None,
        max_chunks: int | None = None,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        progress=None,
        should_stop=None,
        evaluator_cache=None,
        array_backend=None,
        force_fallback: bool = False,
    ) -> None:
        if not isinstance(fleet, FleetSpec):
            raise ConfigError(f"a fleet runner needs a FleetSpec, got {type(fleet).__name__}")
        if record_interval_s <= 0.0:
            raise ConfigError("record interval must be positive")
        if idle_step_s <= 0.0:
            raise ConfigError("idle step must be positive")
        if evaluator_cache is not None and not callable(
            getattr(evaluator_cache, "get", None)
        ):
            raise ConfigError(
                "evaluator_cache must expose get(key, builder) "
                f"(e.g. repro.serve.EvaluatorLRU), got {type(evaluator_cache).__name__}"
            )
        self.fleet = fleet
        self.workers = workers
        self.backend = backend
        self.survival_buckets = FleetAccumulator.validate_buckets(survival_buckets)
        self.keep_vehicle_rows = keep_vehicle_rows
        self.record_interval_s = record_interval_s
        self.idle_step_s = idle_step_s
        self.checkpoint = checkpoint
        self.max_chunks = max_chunks
        self.array_backend = resolve_backend(array_backend)
        self.force_fallback = bool(force_fallback)
        self.progress = progress
        self.should_stop = should_stop
        self._evaluator_cache = evaluator_cache
        # Validates workers/backend/retries eagerly (same rules as studies).
        # Failed vehicles are collected (not raised) whenever a retry budget
        # is given: a caller asking for degradation wants the partial fleet.
        self._engine = ChunkedEngine(
            workers=workers,
            backend=backend,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
            failure_mode="collect" if retries > 0 else "raise",
        )
        self.evaluator_builds = 0
        self.evaluator_cache_hits = 0

    # -- shared-state construction ------------------------------------------

    def _components_for(self, spec: ScenarioSpec) -> tuple:
        """One group's (node, database, evaluator) — via the shared LRU if given."""
        if self._evaluator_cache is None:
            self.evaluator_builds += 1
            return spec.build_components(backend=self.array_backend)
        built: list[bool] = []

        def builder():
            built.append(True)
            return spec.build_components(backend=self.array_backend)

        components = self._evaluator_cache.get(spec.evaluator_group_key(), builder)
        if built:
            self.evaluator_builds += 1
        else:
            self.evaluator_cache_hits += 1
        return components

    def _build_shared_state(self, chunks):
        """Groups, cohort tables, standstill memos and the cross-vehicle sweep.

        One streaming discovery pass: vehicles arrive chunk by chunk and are
        *discarded* after inspection — the parent only retains the per-group
        and per-cohort structures (whose cardinality is bounded by the
        distinct (architecture, cycle, scale, temperature) combinations, not
        by the population size).  Group/cohort/bin insertion order matches
        the vehicle order exactly, so the cross-vehicle sweep sees the same
        bin sequence an eagerly materialized population would produce.
        """
        thermal = self.fleet.thermal
        groups: dict[str, tuple] = {}
        probes: dict[str, NodeEmulator] = {}
        tables: dict[str, _CohortTable] = {}
        standstill: dict[str, dict[int, float]] = {}
        pending: dict[str, dict] = {}
        for chunk in chunks:
            for vehicle in chunk:
                spec = vehicle.scenario
                gkey = _group_key(spec)
                if gkey not in groups:
                    groups[gkey] = self._components_for(spec)
                    standstill[gkey] = {}
                    pending[gkey] = {}
                ckey = _cohort_key(vehicle, thermal)
                table = tables.get(ckey)
                if table is None:
                    node, database, evaluator = groups[gkey]
                    probe = probes.get(gkey)
                    if probe is None:
                        probe = NodeEmulator(
                            node,
                            database,
                            spec.build_scavenger(),
                            spec.build_storage(),
                            base_point=spec.operating_point(),
                            evaluator=evaluator,
                        )
                        probes[gkey] = probe
                    cycle = spec.build_drive_cycle().scaled(vehicle.speed_scale)
                    # Thermal cohorts replay a freshly built model at the
                    # cohort's bin-center ambient — which IS the vehicle's
                    # (materialization-snapped) ambient, so the replayed
                    # trajectory equals each member vehicle's own.
                    table = _build_cohort_table(
                        probe,
                        cycle,
                        self.record_interval_s,
                        self.idle_step_s,
                        thermal_model=(
                            thermal.build(spec.temperature_c)
                            if thermal is not None
                            else None
                        ),
                    )
                    table.group_key = gkey
                    tables[ckey] = table
                    if table.thermal and not table.fallback:
                        # Trajectory-driven demand: the bin union spans the
                        # cohort's (speed, temperature, pattern) triples, and
                        # the standstill memo must cover every unit's
                        # trajectory temperature, not one ambient pin.
                        group_pending = pending[gkey]
                        for key, eval_speed, temp_center, schedule in table.triples:
                            if key not in group_pending:
                                group_pending[key] = (eval_speed, temp_center, schedule)
                        group_standstill = standstill[gkey]
                        for raw_bin in table.unit_temp_bins:
                            unit_bin = int(raw_bin)
                            if unit_bin not in group_standstill:
                                group_standstill[unit_bin] = probe._standstill_power(
                                    temperature_bin_center_c(unit_bin)
                                )
                if table.thermal:
                    continue
                temp_bin = temperature_bin(spec.temperature_c)
                if temp_bin not in standstill[gkey]:
                    standstill[gkey][temp_bin] = probes[gkey]._standstill_power(
                        temperature_bin_center_c(temp_bin)
                    )
                if table.fallback:
                    continue
                table.seen_temp_bins.add(temp_bin)
                group_pending = pending[gkey]
                for speed_key, pattern, eval_speed, schedule in table.unique_bins:
                    key = (speed_key, temp_bin, *pattern)
                    if key not in group_pending:
                        group_pending[key] = (
                            eval_speed,
                            temperature_bin_center_c(temp_bin),
                            schedule,
                        )

        # ONE cross-vehicle sweep per group: the union of quantized bins over
        # every vehicle of the group, evaluated in a single batch call.
        bins: dict[str, dict] = {}
        for gkey, group_pending in pending.items():
            bins[gkey] = probes[gkey].evaluate_energy_bins(group_pending)

        # Post-sweep gather precompute: the per-vehicle demand side is a
        # pure gather over the swept bins, so hoist it out of the per-vehicle
        # kernel — the full per-unit load vector for thermal cohorts (it is
        # vehicle-independent), one energy array per (cohort, temperature
        # bin) for constant ones.
        for table in tables.values():
            if table.fallback:
                continue
            node = groups[table.group_key][0]
            group_bins = bins[table.group_key]
            if table.thermal:
                table.unit_load = _thermal_unit_load(
                    table, node, group_bins, standstill[table.group_key]
                )
            else:
                for temp_bin in sorted(table.seen_temp_bins):
                    table.energies_by_temp_bin[temp_bin] = np.array(
                        [
                            group_bins[(speed_key, temp_bin, *pattern)][0]
                            for speed_key, pattern, _eval_speed, _schedule in table.unique_bins
                        ]
                    )
        return groups, tables, bins, standstill

    # -- execution ----------------------------------------------------------

    def checkpoint_key(self) -> dict[str, object]:
        """The run-identifying document journaled checkpoints are keyed by.

        Everything that shapes a vehicle row is in here — the full fleet
        document (population + chunking), and the runner parameters the
        kernels read — so a checkpoint directory can never silently resume
        under different results.
        """
        return {
            "kind": "fleet",
            "fleet": self.fleet.to_dict(),
            "record_interval_s": self.record_interval_s,
            "idle_step_s": self.idle_step_s,
            "survival_buckets": self.survival_buckets,
        }

    def run(self) -> FleetResult:
        """Discover (streaming), share, fan out chunk by chunk, aggregate."""
        fleet = self.fleet
        # Discovery pass: stream the population once to find the groups,
        # cohorts and energy bins; individual vehicles are discarded, so the
        # parent never holds more than one chunk of them.
        groups, tables, bins, standstill = self._build_shared_state(fleet.iter_chunks())
        store = (
            CheckpointStore(self.checkpoint, self.checkpoint_key())
            if self.checkpoint is not None
            else None
        )

        accumulator = FleetAccumulator(
            buckets=self.survival_buckets,
            keep_vehicle_rows=self.keep_vehicle_rows,
        )
        buckets = self.survival_buckets
        thermal = fleet.thermal
        thermal_document = thermal.to_dict() if thermal is not None else None
        force_fallback = self.force_fallback

        def kernel(vehicle: FleetVehicle) -> dict[str, object]:
            spec = vehicle.scenario
            gkey = _group_key(spec)
            node, database, evaluator = groups[gkey]
            table = tables[_cohort_key(vehicle, thermal)]
            if not table.fallback and not force_fallback:
                outcome = _cohort_vehicle_outcome(
                    vehicle.index,
                    spec,
                    vehicle.speed_scale,
                    vehicle.storage_scale,
                    node,
                    table,
                    bins[gkey],
                    standstill[gkey],
                    buckets,
                    array_backend=self.array_backend,
                )
                outcome["path"] = "cohort"
                return outcome
            outcome = _emulate_vehicle_outcome(
                vehicle.index,
                spec,
                vehicle.speed_scale,
                vehicle.storage_scale,
                node,
                database,
                evaluator,
                bins[gkey],
                buckets,
                self.record_interval_s,
                self.idle_step_s,
                thermal=thermal,
            )
            outcome["path"] = "fallback"
            outcome["fallback_reason"] = (
                "forced" if force_fallback else (table.fallback_reason or "schedule")
            )
            return outcome

        def payload(vehicle: FleetVehicle):
            return (
                vehicle.scenario.to_dict(),
                vehicle.index,
                vehicle.speed_scale,
                vehicle.storage_scale,
                _cohort_key(vehicle, thermal),
                _group_key(vehicle.scenario),
                buckets,
                self.record_interval_s,
                self.idle_step_s,
                self.array_backend.name,
                thermal_document,
                force_fallback,
            )

        if self.backend == "process":
            # Fork-inherited sharing: stash the shared state where worker
            # processes (created by the engine below) will find it.  One
            # process-backend fleet run at a time per parent process — a
            # concurrent run would clobber these and silently demote the
            # first run's workers to the per-vehicle fallback.
            _SHARED_TABLES.clear()
            _SHARED_TABLES.update(tables)
            _SHARED_BINS.clear()
            _SHARED_BINS.update(bins)
            _SHARED_STANDSTILL.clear()
            _SHARED_STANDSTILL.update(standstill)
        # Path observability: every outcome is tagged with the path it took,
        # so a fast-path regression (new fallback reason, demoted cohort)
        # shows up as a counter instead of a silent slowdown.  Outcomes
        # replayed from a pre-tagging checkpoint journal carry no tag and
        # are counted as untagged.
        path_counts = {"cohort": 0, "fallback": 0, "untagged": 0}
        fallback_reasons: dict[str, int] = {}

        def sink(_index, outcome) -> None:
            path = outcome.get("path")
            if path == "cohort":
                path_counts["cohort"] += 1
            elif path == "fallback":
                path_counts["fallback"] += 1
                reason = outcome.get("fallback_reason") or "unspecified"
                fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
            else:
                path_counts["untagged"] += 1
            accumulator.add(outcome)

        try:
            report = self._engine.run_chunks(
                fleet.iter_chunks(),
                kernel,
                sink,
                checkpoint=store,
                max_new_chunks=self.max_chunks,
                process_worker=_process_vehicle,
                process_payload=payload,
                progress=self.progress,
                should_stop=self.should_stop,
            )
        finally:
            if self.backend == "process":
                # The forked pool snapshotted the globals at creation; the
                # parent must not keep the cohort tables/bin stores alive
                # (or visible to a later run) once the run is over.
                _SHARED_TABLES.clear()
                _SHARED_BINS.clear()
                _SHARED_STANDSTILL.clear()

        shared_bin_count = sum(len(group_bins) for group_bins in bins.values())
        partial = report.stopped_early or bool(report.failures)
        metadata = {
            "kind": "fleet",
            "fleet": fleet.name,
            "vehicles": fleet.vehicles,
            "seed": fleet.seed,
            "base_scenario": fleet.base.to_dict(),
            "fleet_document": fleet.to_dict(),
            "groups": len(groups),
            "cohorts": len(tables),
            "fallback_cohorts": sum(1 for table in tables.values() if table.fallback),
            "fast_path_vehicles": path_counts["cohort"],
            "fallback_vehicles": path_counts["fallback"],
            "untagged_vehicles": path_counts["untagged"],
            "fallback_reasons": {
                reason: fallback_reasons[reason] for reason in sorted(fallback_reasons)
            },
            "force_fallback": force_fallback,
            "thermal": thermal_document,
            "shared_energy_bins": shared_bin_count,
            "speed_quantum_kmh": SPEED_QUANTUM_KMH,
            "temperature_quantum_c": TEMPERATURE_QUANTUM_C,
            "ambient_quantum_c": AMBIENT_QUANTUM_C if thermal is not None else None,
            "scale_quantum": fleet.scale_quantum,
            "evaluator_builds": self.evaluator_builds,
            "evaluator_cache_hits": self.evaluator_cache_hits,
            "survival_buckets": buckets,
            "workers": self.workers or 1,
            "backend": self.backend,
            "array_backend": self.array_backend.name,
            "engine_backend": report.backend,
            "wall_time_s": report.wall_time_s,
            "vehicle_wall_times_s": report.item_wall_times_s,
            "chunk_vehicles": fleet.chunk_vehicles,
            "chunks_total": fleet.chunk_count(),
            "chunks_completed": report.chunks,
            "resumed_chunks": report.resumed_chunks,
            "resumed_vehicles": report.resumed_items,
            "vehicles_run": report.items,
            "vehicles_failed": len(report.failures),
            "failures": [failure.to_dict() for failure in report.failures],
            "retries": report.retries,
            "pool_rebuilds": report.pool_rebuilds,
            "partial": partial,
            "checkpoint": self.checkpoint,
        }
        return FleetResult(
            name=fleet.name,
            summary=accumulator.summary_row(fleet.name, fleet.seed),
            survival=accumulator.survival_rows(fleet.name),
            vehicle_rows=accumulator.vehicle_rows if self.keep_vehicle_rows else None,
            metadata=metadata,
        )


def run_fleet(
    fleet: FleetSpec,
    workers: int | None = None,
    backend: str = "thread",
    **options,
) -> FleetResult:
    """One-call convenience wrapper: build a :class:`FleetRunner` and run it."""
    return FleetRunner(fleet, workers=workers, backend=backend, **options).run()
