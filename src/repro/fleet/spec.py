"""The :class:`FleetSpec` — a frozen, declarative description of a vehicle population.

A fleet is a base :class:`~repro.scenario.spec.ScenarioSpec` plus named
per-vehicle *distributions*: how drive styles scale the cycle speeds, how
ambient temperature varies (correlated across the fleet), which drive cycles
the population mixes, and how manufacturing tolerance spreads the scavenger
size and storage capacity.  Like a scenario, a fleet spec is plain data — it
round-trips through :meth:`FleetSpec.to_dict` / :meth:`FleetSpec.from_dict`
exactly (``from_dict(to_dict()) == spec``, property-tested) — and
materializing the population is a pure function of ``(seed, fleet
document)``: the same document draws the same vehicles whichever worker
count or backend executes them.

A minimal JSON document::

    {
        "name": "winter-fleet",
        "vehicles": 500,
        "seed": 42,
        "base": {"name": "base", "drive_cycle": {"name": "urban",
                                                 "params": {"repetitions": 2}}},
        "distributions": {
            "speed_scale": {"kind": "lognormal", "params": {"sigma": 0.1}},
            "temperature_c": {"kind": "correlated-normal",
                              "params": {"mean": -5.0, "std": 8.0,
                                         "correlation": 0.6}}
        }
    }
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.conditions.operating_point import TEMPERATURE_RANGE_C
from repro.conditions.temperature import TyreThermalModel
from repro.core.quantize import ambient_bin, ambient_bin_center_c
from repro.errors import ConfigError
from repro.fleet.distributions import DistributionSpec
from repro.scenario.spec import ComponentRef, ScenarioSpec

#: The per-vehicle axes a fleet may distribute.  ``speed_scale`` multiplies
#: the drive-cycle speeds and the cruising speed, ``temperature_c`` replaces
#: the ambient temperature (clipped to the modelled range),
#: ``drive_cycle`` draws each vehicle's cycle from a categorical mix,
#: ``scavenger_size`` / ``storage_capacity`` are multiplicative tolerance
#: factors on the base scavenger size and storage capacity, and
#: ``ambient_offset_c`` adds a per-vehicle offset to the *base* scenario's
#: ambient temperature (mutually exclusive with ``temperature_c``; the
#: natural axis for zero-mean climate spreads around one deployment site).
#: New targets are appended, never inserted: chunks sample targets in this
#: fixed order, so appending can never perturb the draws of earlier targets.
FLEET_TARGETS = (
    "speed_scale",
    "temperature_c",
    "drive_cycle",
    "scavenger_size",
    "storage_capacity",
    "ambient_offset_c",
)


def default_fleet_distributions(base: ScenarioSpec) -> dict[str, DistributionSpec]:
    """The default population around ``base`` (the ROADMAP's open item).

    Log-normal drive-style speed scales, fleet-correlated ambient
    temperature around the base scenario's temperature, and 5% Gaussian
    manufacturing tolerance on the scavenger size and storage capacity.
    The drive cycle stays the base scenario's cycle for every vehicle;
    add a ``categorical`` ``drive_cycle`` distribution for a mix.
    """
    low_t, high_t = TEMPERATURE_RANGE_C
    std_c = 8.0
    return {
        "speed_scale": DistributionSpec(
            "lognormal", (("sigma", 0.1), ("low", 0.6), ("high", 1.4))
        ),
        "temperature_c": DistributionSpec(
            "correlated-normal",
            (
                ("mean", float(np.clip(base.temperature_c, low_t + 3 * std_c, high_t - 3 * std_c))),
                ("std", std_c),
                ("correlation", 0.6),
            ),
        ),
        "scavenger_size": DistributionSpec("gaussian-tolerance", (("rel_std", 0.05),)),
        "storage_capacity": DistributionSpec("gaussian-tolerance", (("rel_std", 0.05),)),
    }


@dataclass(frozen=True)
class ThermalSpec:
    """Declarative in-tyre thermal model of a thermal fleet (plain data).

    Names the :class:`~repro.conditions.temperature.TyreThermalModel`
    parameters *without* the ambient: the ambient is per vehicle (the
    ``temperature_c`` / ``ambient_offset_c`` axes), and :meth:`build`
    instantiates the stateful model for one vehicle's ambient.

    Setting a thermal spec on a fleet changes its materialization contract:
    sampled ambients are snapped to the shared ambient-bin centers
    (:func:`repro.core.quantize.ambient_bin`), because a thermal trajectory
    is a function of its exact ambient — only vehicles sharing the *same*
    float ambient can share one replayed trajectory bitwise.
    """

    rise_coefficient: float = 0.045
    max_rise_c: float = 55.0
    time_constant_s: float = 600.0

    def __post_init__(self) -> None:
        for name in ("rise_coefficient", "max_rise_c", "time_constant_s"):
            value = getattr(self, name)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not math.isfinite(value)
            ):
                raise ConfigError(f"thermal {name} must be a finite number, got {value!r}")
            object.__setattr__(self, name, float(value))
        if self.rise_coefficient < 0.0:
            raise ConfigError("thermal rise_coefficient must be non-negative")
        if self.max_rise_c < 0.0:
            raise ConfigError("thermal max_rise_c must be non-negative")
        if self.time_constant_s <= 0.0:
            raise ConfigError("thermal time_constant_s must be positive")

    @classmethod
    def coerce(cls, value: object) -> "ThermalSpec":
        """Accept a ``ThermalSpec`` or its ``to_dict`` document."""
        if isinstance(value, ThermalSpec):
            return value
        if isinstance(value, Mapping):
            known = {"rise_coefficient", "max_rise_c", "time_constant_s"}
            unknown = set(value) - known
            if unknown:
                raise ConfigError(
                    f"fleet thermal has unknown field(s) {sorted(unknown)}; "
                    f"known fields: {sorted(known)}"
                )
            return cls(**value)
        raise ConfigError(
            f"fleet thermal must be a ThermalSpec or its document, "
            f"got {type(value).__name__}"
        )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form, JSON-serializable and accepted by :meth:`coerce`."""
        return {
            "rise_coefficient": self.rise_coefficient,
            "max_rise_c": self.max_rise_c,
            "time_constant_s": self.time_constant_s,
        }

    def build(self, ambient_celsius: float) -> TyreThermalModel:
        """A fresh stateful thermal model at one vehicle's ambient."""
        return TyreThermalModel(
            ambient_celsius=ambient_celsius,
            rise_coefficient=self.rise_coefficient,
            max_rise_c=self.max_rise_c,
            time_constant_s=self.time_constant_s,
        )


@dataclass(frozen=True)
class FleetVehicle:
    """One materialized vehicle: the sampled axes plus its derived scenario.

    Attributes:
        index: position in the population (stable across runs).
        speed_scale: drive-style factor applied to the cycle speeds (already
            quantized to the fleet's ``scale_quantum``).
        temperature_c: the vehicle's ambient temperature (clipped to the
            modelled range).
        storage_scale: capacity tolerance factor applied to the storage
            element (capacity, initial charge and thresholds all scale).
        scenario: the derived :class:`ScenarioSpec` of this vehicle — it
            encodes the sampled temperature, cruising speed and scavenger
            size, but NOT the two axes a scenario cannot express: the
            runner additionally plays ``build_drive_cycle().scaled(speed_scale)``
            and ``scaled_storage(build_storage(), storage_scale)``.  Apply
            both to reproduce a fleet vehicle with the per-scenario tools.
    """

    index: int
    speed_scale: float
    temperature_c: float
    storage_scale: float
    scenario: ScenarioSpec


@dataclass(frozen=True)
class FleetSpec:
    """A frozen, validated description of one fleet-simulation experiment.

    Attributes:
        name: fleet label used in result rows and reports.
        base: the scenario every vehicle derives from; must name a storage
            element, and a drive cycle unless a ``drive_cycle`` distribution
            supplies one per vehicle.
        vehicles: population size.
        seed: base seed of the deterministic materialization stream.
        scale_quantum: granularity the sampled ``speed_scale`` is rounded
            to.  Vehicles sharing a (cycle, quantized scale) pair share one
            materialized cycle — the fleet runner's cohort axis — so the
            quantum trades resolution of the drive-style axis against
            fleet-level throughput; ``0`` keeps the exact draws.
        chunk_vehicles: vehicles per materialization chunk.  Part of the
            document (it shapes the per-chunk sample draws), so chunked
            materialization stays a pure function of (seed, document, chunk
            index); it also bounds the runner's resident vehicle buffer and
            sets the checkpoint granularity.
        distributions: mapping of :data:`FLEET_TARGETS` entries to
            :class:`~repro.fleet.distributions.DistributionSpec` references
            (stored as a sorted tuple of pairs so equal documents compare
            equal).
        thermal: optional :class:`ThermalSpec`.  When set, every vehicle
            drives a :class:`~repro.conditions.temperature.TyreThermalModel`
            at its ambient instead of a constant temperature, and sampled
            ambients are snapped to the shared ambient-bin centers
            (:func:`repro.core.quantize.ambient_bin`) so vehicles in one
            ambient bin share one replayed trajectory — the fleet runner's
            thermal cohort axis.  Omitted from the document when ``None``,
            so pre-thermal fleet documents (and their digests, which seed
            the materialization streams) are byte-for-byte unchanged.
    """

    name: str = "fleet"
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    vehicles: int = 200
    seed: int = 2011
    scale_quantum: float = 0.05
    chunk_vehicles: int = 64
    distributions: tuple[tuple[str, DistributionSpec], ...] = ()
    thermal: ThermalSpec | None = None

    # -- validation ---------------------------------------------------------

    def __post_init__(self) -> None:
        set_attr = object.__setattr__
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("fleet name must be a non-empty string")
        if isinstance(self.base, Mapping):
            set_attr(self, "base", ScenarioSpec.from_dict(self.base))
        if not isinstance(self.base, ScenarioSpec):
            raise ConfigError(
                f"fleet base must be a ScenarioSpec (or its document), "
                f"got {type(self.base).__name__}"
            )
        if (
            not isinstance(self.vehicles, int)
            or isinstance(self.vehicles, bool)
            or self.vehicles < 1
        ):
            raise ConfigError("fleet vehicles must be a positive integer")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ConfigError("fleet seed must be a non-negative integer")
        if (
            not isinstance(self.scale_quantum, (int, float))
            or isinstance(self.scale_quantum, bool)
            or not math.isfinite(self.scale_quantum)
            or self.scale_quantum < 0.0
        ):
            raise ConfigError("fleet scale_quantum must be a non-negative finite number")
        if (
            not isinstance(self.chunk_vehicles, int)
            or isinstance(self.chunk_vehicles, bool)
            or self.chunk_vehicles < 1
        ):
            raise ConfigError("fleet chunk_vehicles must be a positive integer")

        entries = self.distributions
        if isinstance(entries, Mapping):
            entries = tuple(entries.items())
        try:
            entries = tuple(entries)
        except TypeError:
            raise ConfigError(
                "fleet distributions must be a mapping of target -> distribution"
            ) from None
        normalized: dict[str, DistributionSpec] = {}
        for entry in entries:
            try:
                target, value = entry
            except (TypeError, ValueError):
                raise ConfigError(
                    "fleet distributions must be a mapping of target -> distribution"
                ) from None
            if target not in FLEET_TARGETS:
                raise ConfigError(
                    f"unknown fleet distribution target {target!r}; "
                    f"known targets: {list(FLEET_TARGETS)}"
                )
            if target in normalized:
                raise ConfigError(f"fleet distribution target {target!r} given twice")
            normalized[target] = DistributionSpec.coerce(value, target)
        set_attr(
            self,
            "distributions",
            tuple(sorted(normalized.items())),
        )
        if "ambient_offset_c" in normalized and "temperature_c" in normalized:
            raise ConfigError(
                "fleet distributions 'ambient_offset_c' and 'temperature_c' are "
                "mutually exclusive: distribute offsets around the base ambient "
                "OR absolute ambients, not both"
            )

        if self.thermal is not None:
            set_attr(self, "thermal", ThermalSpec.coerce(self.thermal))

        if self.base.storage is None:
            raise ConfigError("fleet base scenario must name a storage element")
        if self.base.drive_cycle is None and "drive_cycle" not in dict(self.distributions):
            raise ConfigError(
                "fleet base scenario must name a drive_cycle (or the fleet must "
                "distribute one)"
            )

    # -- convenience constructors -------------------------------------------

    @classmethod
    def from_base(
        cls,
        base: ScenarioSpec,
        vehicles: int = 200,
        seed: int = 2011,
        name: str | None = None,
        chunk_vehicles: int = 64,
        thermal: ThermalSpec | None = None,
    ) -> "FleetSpec":
        """A fleet around ``base`` with the default population distributions."""
        return cls(
            name=name or f"{base.name}-fleet",
            base=base,
            vehicles=vehicles,
            seed=seed,
            chunk_vehicles=chunk_vehicles,
            distributions=tuple(default_fleet_distributions(base).items()),
            thermal=thermal,
        )

    def distribution_for(self, target: str) -> DistributionSpec | None:
        """The distribution of one target, or ``None`` when not distributed."""
        if target not in FLEET_TARGETS:
            raise ConfigError(
                f"unknown fleet distribution target {target!r}; "
                f"known targets: {list(FLEET_TARGETS)}"
            )
        return dict(self.distributions).get(target)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form, JSON-serializable and accepted by :meth:`from_dict`.

        ``thermal`` is OMITTED when unset (not serialized as ``null``): the
        document digest seeds every materialization stream, so adding an
        always-present key would silently redraw every existing fleet.
        """
        document: dict[str, object] = {
            "name": self.name,
            "vehicles": self.vehicles,
            "seed": self.seed,
            "scale_quantum": self.scale_quantum,
            "chunk_vehicles": self.chunk_vehicles,
            "base": self.base.to_dict(),
            "distributions": {
                target: spec.to_dict() for target, spec in self.distributions
            },
        }
        if self.thermal is not None:
            document["thermal"] = self.thermal.to_dict()
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "FleetSpec":
        """Build a validated fleet spec from a plain dict (e.g. parsed JSON)."""
        if not isinstance(document, Mapping):
            raise ConfigError(f"a fleet document must be a mapping, got {type(document).__name__}")
        known = {
            "name",
            "vehicles",
            "seed",
            "scale_quantum",
            "chunk_vehicles",
            "base",
            "distributions",
            "thermal",
        }
        unknown = set(document) - known
        if unknown:
            raise ConfigError(
                f"unknown fleet field(s) {sorted(unknown)}; known fields: {sorted(known)}"
            )
        kwargs: dict[str, object] = {
            key: document[key] for key in known if key in document
        }
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The fleet spec as a JSON document string."""
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> Path:
        """Write the fleet spec as a JSON file and return the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    def with_population(
        self,
        vehicles: int | None = None,
        seed: int | None = None,
        chunk_vehicles: int | None = None,
    ) -> "FleetSpec":
        """A copy with the population size, seed and/or chunk size overridden."""
        changes: dict[str, object] = {}
        if vehicles is not None:
            changes["vehicles"] = vehicles
        if seed is not None:
            changes["seed"] = seed
        if chunk_vehicles is not None:
            changes["chunk_vehicles"] = chunk_vehicles
        return replace(self, **changes) if changes else self

    # -- materialization ----------------------------------------------------
    #
    # The population is sampled chunk by chunk: chunk ``c`` (of
    # ``chunk_vehicles`` vehicles) draws from its own generator seeded
    # ``(seed, document digest, c)``, while distribution kinds with a
    # population-wide component (the correlated-normal climate draw) pull it
    # once from the fleet-level generator ``(seed, document digest)``.  Every
    # chunk is therefore a pure function of (seed, fleet document, chunk
    # index) — reproducible in isolation, which is what checkpointed resume
    # and the streaming runner rest on — and the concatenation of all chunks
    # IS the population (``materialize()`` is that concatenation, kept as the
    # eager reference the chunking property tests compare against).

    def document_digest(self) -> int:
        """CRC digest of the fleet document, the seed-stream discriminator."""
        return zlib.crc32(self.to_json().encode("utf-8"))

    def rng(self) -> np.random.Generator:
        """The fleet-level deterministic generator.

        Seeded from the fleet seed plus a digest of the fleet document
        (mirroring the Monte-Carlo ``(seed, scenario document)`` stream
        derivation), so materialization is a pure function of the document —
        independent of worker counts, backends and execution order.  Chunk
        generators extend the same seed tuple with the chunk index; this
        fleet-level stream only feeds the population-wide shared draws.
        """
        return np.random.default_rng((self.seed, self.document_digest()))

    def chunk_rng(self, chunk_index: int) -> np.random.Generator:
        """The generator of one chunk: seeded (seed, document digest, chunk)."""
        return np.random.default_rng((self.seed, self.document_digest(), chunk_index))

    def chunk_count(self) -> int:
        """Number of materialization chunks (the last one may be short)."""
        return -(-self.vehicles // self.chunk_vehicles)

    def chunk_bounds(self, chunk_index: int) -> tuple[int, int]:
        """The ``(first vehicle index, vehicle count)`` of one chunk."""
        total = self.chunk_count()
        if (
            not isinstance(chunk_index, int)
            or isinstance(chunk_index, bool)
            or not 0 <= chunk_index < total
        ):
            raise ConfigError(
                f"chunk index must be an integer in [0, {total}), got {chunk_index!r}"
            )
        start = chunk_index * self.chunk_vehicles
        return start, min(self.chunk_vehicles, self.vehicles - start)

    def _samplers(self) -> dict[str, object]:
        """Built distribution samplers of the configured targets."""
        configured = dict(self.distributions)
        return {
            target: configured[target].build()
            for target in FLEET_TARGETS
            if target in configured
        }

    def _shared_states(self, samplers: Mapping[str, object]) -> dict[str, object]:
        """Population-wide components, drawn once in fixed target order."""
        rng = self.rng()
        return {
            target: samplers[target].shared_state(rng)
            for target in FLEET_TARGETS
            if target in samplers
        }

    def _sample_chunk(
        self,
        samplers: Mapping[str, object],
        shared: Mapping[str, object],
        chunk_index: int,
        count: int,
    ) -> dict[str, np.ndarray]:
        """Draw one chunk's target arrays from the chunk's own generator.

        Targets are sampled in the fixed :data:`FLEET_TARGETS` order (absent
        targets draw nothing), so adding a distribution never perturbs the
        draws of the targets before it.
        """
        rng = self.chunk_rng(chunk_index)
        samples: dict[str, np.ndarray] = {}
        for target in FLEET_TARGETS:
            sampler = samplers.get(target)
            if sampler is not None:
                samples[target] = sampler.sample_with_shared(rng, count, shared.get(target))
        return samples

    def _vehicles_from_samples(
        self, start: int, count: int, samples: Mapping[str, np.ndarray]
    ) -> list[FleetVehicle]:
        """Build the vehicles of one chunk from its sampled target arrays."""
        low_t, high_t = TEMPERATURE_RANGE_C
        vehicles: list[FleetVehicle] = []
        digits = len(str(self.vehicles - 1)) if self.vehicles > 1 else 1
        for offset in range(count):
            index = start + offset
            scale = float(samples["speed_scale"][offset]) if "speed_scale" in samples else 1.0
            if scale <= 0.0:
                raise ConfigError(
                    f"fleet speed_scale distribution produced {scale!r}; "
                    "scales must be positive"
                )
            if self.scale_quantum > 0.0:
                scale = max(
                    round(scale / self.scale_quantum) * self.scale_quantum,
                    self.scale_quantum,
                )
            if "temperature_c" in samples:
                temperature = float(np.clip(samples["temperature_c"][offset], low_t, high_t))
            elif "ambient_offset_c" in samples:
                temperature = float(
                    np.clip(
                        self.base.temperature_c + float(samples["ambient_offset_c"][offset]),
                        low_t,
                        high_t,
                    )
                )
            else:
                temperature = self.base.temperature_c
            if self.thermal is not None:
                # Thermal fleets snap the ambient to its bin center: a
                # replayed trajectory is a function of its exact float
                # ambient, so only bin-centered ambients let one
                # per-(cohort, ambient-bin) replay be bitwise identical to
                # every member vehicle's own emulate().  The bounds of the
                # modelled range are themselves bin centers, so the snap
                # never leaves the range.
                temperature = ambient_bin_center_c(ambient_bin(temperature))
            size_factor = (
                float(samples["scavenger_size"][offset])
                if "scavenger_size" in samples
                else 1.0
            )
            storage_scale = (
                float(samples["storage_capacity"][offset])
                if "storage_capacity" in samples
                else 1.0
            )
            if size_factor <= 0.0 or storage_scale <= 0.0:
                raise ConfigError("fleet tolerance distributions must produce positive factors")
            scenario = self.base.with_axes(
                name=f"{self.name}-{index:0{digits}d}",
                temperature=temperature,
                speed=self.base.speed_kmh * scale,
                size=self.base.scavenger_size * size_factor,
            )
            if "drive_cycle" in samples:
                cycle_ref = ComponentRef.coerce(samples["drive_cycle"][offset], "drive_cycle")
                scenario = scenario.with_axis("drive_cycle", cycle_ref)
            vehicles.append(
                FleetVehicle(
                    index=index,
                    speed_scale=scale,
                    temperature_c=temperature,
                    storage_scale=storage_scale,
                    scenario=scenario,
                )
            )
        return vehicles

    def materialize_chunk(self, chunk_index: int) -> list[FleetVehicle]:
        """Draw ONE chunk of the population, reproducible in isolation.

        A pure function of ``(seed, fleet document, chunk_index)``: a resumed
        run (or a remote worker handed only the document and a chunk index)
        rebuilds exactly the vehicles an uninterrupted run would have drawn
        for that chunk, without sampling any other chunk.
        """
        samplers = self._samplers()
        shared = self._shared_states(samplers)
        start, count = self.chunk_bounds(chunk_index)
        samples = self._sample_chunk(samplers, shared, chunk_index, count)
        return self._vehicles_from_samples(start, count, samples)

    def iter_chunks(self):
        """Stream the population as chunk lists of ≤ ``chunk_vehicles`` vehicles.

        The generator the fleet runner consumes: at most one chunk of
        vehicles is resident at a time, and the concatenation of the yielded
        chunks equals :meth:`materialize` vehicle for vehicle (samplers and
        shared states are built once and reused, which cannot change the
        draws — each chunk still samples from its own generator).
        """
        samplers = self._samplers()
        shared = self._shared_states(samplers)
        for chunk_index in range(self.chunk_count()):
            start, count = self.chunk_bounds(chunk_index)
            samples = self._sample_chunk(samplers, shared, chunk_index, count)
            yield self._vehicles_from_samples(start, count, samples)

    def materialize(self) -> list[FleetVehicle]:
        """Draw the whole population: one :class:`FleetVehicle` per vehicle.

        The eager reference path: every chunk is drawn independently through
        :meth:`materialize_chunk` and concatenated, so this is by
        construction what the streaming/chunked paths must reproduce
        (property-tested).  Prefer :meth:`iter_chunks` at fleet scale — this
        buffer is O(population).
        """
        vehicles: list[FleetVehicle] = []
        for chunk_index in range(self.chunk_count()):
            vehicles.extend(self.materialize_chunk(chunk_index))
        return vehicles

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        distributed = ", ".join(
            f"{target}={spec.describe()}" for target, spec in self.distributions
        )
        thermal = (
            f"; thermal(tau={self.thermal.time_constant_s:g}s, "
            f"rise<={self.thermal.max_rise_c:g}C)"
            if self.thermal is not None
            else ""
        )
        return (
            f"{self.vehicles} vehicles around [{self.base.describe()}]"
            + (f"; {distributed}" if distributed else "")
            + thermal
        )


def load_fleet(path: str | Path) -> FleetSpec:
    """Read a fleet JSON file into a validated :class:`FleetSpec`.

    Raises:
        ConfigError: when the file is missing, is not valid JSON, or the
            document fails fleet validation.
    """
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read fleet file {target}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"fleet file {target} is not valid JSON: {exc}") from exc
    return FleetSpec.from_dict(document)
