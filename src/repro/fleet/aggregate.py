"""Fleet aggregation: streaming accumulators and the :class:`FleetResult`.

Per-vehicle emulation outcomes stream out of the chunked execution engine in
vehicle order; this module folds them into population statistics without
ever materializing the per-vehicle state logs — the figures a fleet
operator actually asks for:

* **survival fraction vs time** — the fraction of the fleet whose node is
  operational at each (normalized) point of its drive, bucketed over the
  cycle duration;
* **brown-out-rate percentiles** — the p50/p90/p99 of per-vehicle brown-out
  events per hour;
* **energy-margin distribution** — percentiles of the per-vehicle net
  (harvested minus consumed) energy.

The aggregate surfaces as ``StudyResult``-compatible rows
(:meth:`FleetResult.to_study_result`), so every existing export/report path
— CSV/JSON export, plain-text tables — works on fleet results unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.reporting.export import rows_to_csv, rows_to_json
from repro.reporting.tables import render_table

#: Default number of normalized-time buckets of the survival curve.
DEFAULT_SURVIVAL_BUCKETS = 50


class FleetAccumulator:
    """Streaming accumulator over per-vehicle outcomes (one pass, any order
    of arrival is *not* supported: the engine sink feeds it in vehicle
    order, which keeps every floating-point reduction deterministic).

    Args:
        buckets: number of normalized-time buckets of the survival curve;
            every vehicle outcome must carry a ``survival`` tuple of this
            length.
        keep_vehicle_rows: keep the per-vehicle rows for inspection/export
            (a few hundred small dicts); ``False`` drops them after
            aggregation so fleet size is bounded only by the aggregate
            arrays.
    """

    @staticmethod
    def validate_buckets(buckets: int) -> int:
        """Validate a survival-bucket count (shared with the fleet runner)."""
        if not isinstance(buckets, int) or isinstance(buckets, bool) or buckets < 1:
            raise ConfigError(f"survival buckets must be a positive integer, got {buckets!r}")
        return buckets

    def __init__(
        self,
        buckets: int = DEFAULT_SURVIVAL_BUCKETS,
        keep_vehicle_rows: bool = True,
    ) -> None:
        self.buckets = self.validate_buckets(buckets)
        self.keep_vehicle_rows = keep_vehicle_rows
        self.vehicle_rows: list[dict[str, object]] = []
        self._survival_sum = np.zeros(buckets)
        self._survival_count = np.zeros(buckets)
        self._brownout_rates: list[float] = []
        self._net_mj: list[float] = []
        self._coverage_pct: list[float] = []
        self._moving_active_pct: list[float] = []
        self._active_at_end: list[bool] = []
        self.vehicles = 0

    def add(self, outcome: dict[str, object]) -> None:
        """Fold one vehicle outcome (see the runner's kernel) into the stats."""
        row = outcome["row"]
        survival = np.asarray(outcome["survival"], dtype=float)
        if survival.shape != (self.buckets,):
            raise ConfigError(
                f"vehicle outcome survival curve has {survival.shape} buckets; "
                f"expected ({self.buckets},)"
            )
        valid = np.isfinite(survival)
        self._survival_sum[valid] += survival[valid]
        self._survival_count[valid] += 1.0
        self._brownout_rates.append(float(row["brownout_per_hour"]))
        self._net_mj.append(float(row["net_mj"]))
        self._coverage_pct.append(float(row["revolution_coverage_pct"]))
        self._moving_active_pct.append(float(row["moving_active_fraction_pct"]))
        self._active_at_end.append(bool(row["active_at_end"]))
        if self.keep_vehicle_rows:
            self.vehicle_rows.append(dict(row))
        self.vehicles += 1

    # -- aggregate views ----------------------------------------------------

    def survival_curve(self) -> np.ndarray:
        """Mean fleet-active fraction per normalized-time bucket (NaN = no data)."""
        with np.errstate(invalid="ignore"):
            return np.where(
                self._survival_count > 0.0,
                self._survival_sum / np.maximum(self._survival_count, 1.0),
                np.nan,
            )

    def survival_rows(self, fleet_name: str) -> list[dict[str, object]]:
        """The survival curve as uniform rows (one per time bucket)."""
        curve = self.survival_curve()
        rows = []
        for bucket, fraction in enumerate(curve):
            rows.append(
                {
                    "fleet": fleet_name,
                    "time_pct": 100.0 * (bucket + 0.5) / self.buckets,
                    "surviving_pct": 100.0 * float(fraction),
                    "vehicles": int(self._survival_count[bucket]),
                }
            )
        return rows

    def summary_row(self, fleet_name: str, seed: int) -> dict[str, object]:
        """The one-row fleet aggregate (StudyResult-compatible columns)."""
        if self.vehicles == 0:
            raise ConfigError("cannot summarize an empty fleet")
        brownouts = np.asarray(self._brownout_rates)
        margins = np.asarray(self._net_mj)
        curve = self.survival_curve()
        finite = curve[np.isfinite(curve)]
        return {
            "fleet": fleet_name,
            "vehicles": self.vehicles,
            "seed": seed,
            "surviving_at_end_pct": 100.0 * float(np.mean(self._active_at_end)),
            "min_surviving_pct": 100.0 * float(np.min(finite)) if finite.size else float("nan"),
            "mean_coverage_pct": float(np.mean(self._coverage_pct)),
            "mean_moving_active_pct": float(np.mean(self._moving_active_pct)),
            "brownout_per_hour_p50": float(np.percentile(brownouts, 50.0)),
            "brownout_per_hour_p90": float(np.percentile(brownouts, 90.0)),
            "brownout_per_hour_p99": float(np.percentile(brownouts, 99.0)),
            "net_mj_p05": float(np.percentile(margins, 5.0)),
            "net_mj_p50": float(np.percentile(margins, 50.0)),
            "net_mj_p95": float(np.percentile(margins, 95.0)),
        }


class FleetResult:
    """Outcome of one fleet run: aggregates, curves and (optional) per-vehicle rows.

    Attributes:
        name: the fleet label.
        summary: the one-row aggregate (see
            :meth:`FleetAccumulator.summary_row`).
        survival: survival-curve rows (one per normalized-time bucket).
        vehicle_rows: per-vehicle rows, or ``None`` when the runner was
            asked not to keep them.
        metadata: run bookkeeping — population/seed, evaluator builds,
            cohort/bin-sharing counters, engine timing, backend.
    """

    def __init__(
        self,
        name: str,
        summary: dict[str, object],
        survival: list[dict[str, object]],
        vehicle_rows: list[dict[str, object]] | None,
        metadata: dict[str, object],
    ) -> None:
        self.name = name
        self.summary = summary
        self.survival = survival
        self.vehicle_rows = vehicle_rows
        self.metadata = metadata

    def __len__(self) -> int:
        return int(self.summary["vehicles"])

    def to_study_result(self):
        """The aggregate as a ``StudyResult`` (kind ``"fleet"``), so every
        existing table/export consumer works on fleet aggregates unchanged."""
        # Imported lazily: repro.scenario.study sits above this module in the
        # import graph (montecarlo -> fleet.distributions pulls this package
        # in while the scenario package is still initializing).
        from repro.scenario.study import StudyResult

        return StudyResult(
            kind="fleet",
            axes=(),
            rows=(self.summary,),
            metadata=dict(self.metadata),
        )

    def as_table(self, float_digits: int = 2) -> str:
        """Plain-text table of the aggregate row."""
        return render_table(
            [dict(self.summary)],
            title=f"Fleet — {self.name}",
            float_digits=float_digits,
        )

    def survival_table(self, float_digits: int = 1) -> str:
        """Plain-text table of the survival curve."""
        return render_table(
            [dict(row) for row in self.survival],
            title=f"Fleet survival vs time — {self.name}",
            float_digits=float_digits,
        )

    def to_csv(self, path) -> object:
        """Export the aggregate row as CSV (see :mod:`repro.reporting.export`)."""
        return rows_to_csv([dict(self.summary)], path)

    def to_json(self, path) -> object:
        """Export the aggregate row as JSON."""
        return rows_to_json([dict(self.summary)], path)

    def survival_to_csv(self, path) -> object:
        """Export the survival curve as CSV."""
        return rows_to_csv([dict(row) for row in self.survival], path)

    def vehicles_to_csv(self, path) -> object:
        """Export the per-vehicle rows as CSV (requires them to be kept)."""
        if self.vehicle_rows is None:
            raise ConfigError(
                "per-vehicle rows were not kept; run the fleet with "
                "keep_vehicle_rows=True"
            )
        return rows_to_csv([dict(row) for row in self.vehicle_rows], path)
