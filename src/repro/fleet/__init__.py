"""Fleet-scale population simulation: spec → distributions → runner → aggregates.

The :mod:`repro.scenario` package answers "what happens to ONE configured
node"; this package scales the question to a *population*: a frozen,
JSON-round-trippable :class:`FleetSpec` (base scenario plus named
per-vehicle distributions — drive-style speed scales, correlated ambient
temperature, drive-cycle mix, manufacturing tolerances), a
:class:`FleetRunner` that materializes N vehicles, shares compiled tables
and quantized energy bins across them (one cross-vehicle sweep before
emulation) and fans the per-vehicle trajectories out through the chunked
execution engine, and an aggregation layer (survival fraction vs time,
brown-out-rate percentiles, energy-margin distribution) exposed through
``StudyResult``-compatible rows.

Quickstart::

    from repro.fleet import FleetSpec, FleetRunner
    from repro.scenario import ScenarioSpec

    base = ScenarioSpec(drive_cycle={"name": "urban", "params": {"repetitions": 2}})
    fleet = FleetSpec.from_base(base, vehicles=200, seed=7)
    result = FleetRunner(fleet, workers=4).run()
    print(result.as_table())
"""

from repro.fleet.distributions import (
    DISTRIBUTIONS,
    Distribution,
    DistributionSpec,
    register_distribution,
)
from repro.fleet.spec import (
    FLEET_TARGETS,
    FleetSpec,
    ThermalSpec,
    default_fleet_distributions,
    load_fleet,
)
from repro.fleet.aggregate import FleetResult
from repro.fleet.runner import FleetRunner, run_fleet

__all__ = [
    "DISTRIBUTIONS",
    "Distribution",
    "DistributionSpec",
    "register_distribution",
    "FLEET_TARGETS",
    "FleetSpec",
    "ThermalSpec",
    "default_fleet_distributions",
    "load_fleet",
    "FleetResult",
    "FleetRunner",
    "run_fleet",
]
