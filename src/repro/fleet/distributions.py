"""User-extensible distribution registry for population sampling.

Fleet simulation (and the Monte-Carlo study kind) describe *populations*:
per-vehicle speed scales, correlated ambient temperatures, manufacturing
tolerances, drive-cycle mixes.  A :class:`DistributionSpec` names one such
distribution declaratively — kind plus parameters, JSON-round-trippable
exactly like a :class:`~repro.scenario.spec.ComponentRef` — and the
:data:`DISTRIBUTIONS` registry maps kinds to sampler factories, so fleet
documents stay plain data and third parties can register their own kinds::

    from repro.fleet import register_distribution

    @register_distribution("bimodal")
    def bimodal(low: float, high: float, weight: float = 0.5):
        return MyBimodalSampler(low, high, weight)

Samplers are deterministic pure functions of ``(rng, count)``: every random
number they consume comes from the generator they are handed, never from
global state, which is what keeps fleet materialization a pure function of
``(seed, fleet document)`` — independent of worker counts and execution
order.

The built-in kinds fold in (and extend) the ad-hoc samplers that
:mod:`repro.scenario.montecarlo` used to hard-code: ``normal`` and
``uniform`` reproduce its clipped speed/temperature/activity draws
rng-call-for-rng-call, while ``lognormal`` (drive-style speed scales),
``correlated-normal`` (fleet-wide climate plus per-vehicle weather) and
``gaussian-tolerance`` (manufacturing spread) serve the fleet axes the
ROADMAP flags.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ConfigError
from repro.registry import Registry


def _canonical_param(value: object) -> object:
    """Normalize a parameter value so JSON round trips compare equal.

    JSON has no tuple, so ``("urban", "nedc")`` comes back as a list;
    canonicalizing every sequence to a tuple keeps
    ``DistributionSpec.coerce(spec.to_dict()) == spec`` regardless of which
    side of a serialization boundary built the spec.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_param(item) for item in value)
    return value


@dataclass(frozen=True)
class DistributionSpec:
    """A reference to a registered distribution: a kind plus parameters.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so two
    specs built from differently-ordered documents compare equal, mirroring
    :class:`~repro.scenario.spec.ComponentRef`.
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigError("distribution kind must be a non-empty string")
        normalized = tuple(sorted((str(k), _canonical_param(v)) for k, v in self.params))
        object.__setattr__(self, "params", normalized)

    @classmethod
    def coerce(cls, value: object, field_name: str) -> "DistributionSpec":
        """Accept a ``DistributionSpec``, a bare kind, or a ``{kind, params}`` mapping."""
        if isinstance(value, DistributionSpec):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"kind", "params"}
            if unknown:
                raise ConfigError(
                    f"distribution {field_name!r} has unknown keys {sorted(unknown)}; "
                    "expected 'kind' and optional 'params'"
                )
            if "kind" not in value:
                raise ConfigError(f"distribution {field_name!r} needs a 'kind'")
            params = value.get("params", {})
            if not isinstance(params, Mapping):
                raise ConfigError(f"distribution {field_name!r}: 'params' must be a mapping")
            return cls(kind=value["kind"], params=tuple(params.items()))
        raise ConfigError(
            f"distribution {field_name!r} must be a kind name or a "
            f"{{'kind', 'params'}} mapping, got {type(value).__name__}"
        )

    def to_dict(self) -> object:
        """Compact serialized form: the bare kind when there are no params."""
        if not self.params:
            return self.kind
        return {"kind": self.kind, "params": dict(self.params)}

    def build(self) -> "Distribution":
        """Instantiate the referenced sampler from :data:`DISTRIBUTIONS`."""
        sampler = DISTRIBUTIONS.create(self.kind, **dict(self.params))
        if not isinstance(sampler, Distribution):
            raise ConfigError(f"distribution kind {self.kind!r} did not produce a Distribution")
        return sampler

    def describe(self) -> str:
        """Short human-readable form used in labels and tables."""
        if not self.params:
            return self.kind
        inner = ", ".join(f"{key}={value}" for key, value in self.params)
        return f"{self.kind}({inner})"


class Distribution(ABC):
    """One population-sampling distribution.

    Subclasses draw ``count`` values from ``rng`` and nothing else; drawing
    must consume a deterministic number of generator calls for a given
    ``count`` so downstream draws stay aligned whichever kinds a document
    mixes.

    Chunked materialization splits a population into independently
    reproducible chunks, each sampled from its own generator.  Kinds with a
    population-wide component (the fleet-shared climate draw of
    ``correlated-normal``) override :meth:`shared_state` to pull that
    component from the *fleet* generator once, and :meth:`sample_with_shared`
    to fold it into every chunk — so correlation spans chunk boundaries
    while each chunk stays a pure function of (seed, document, chunk index).
    """

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` values from ``rng``."""

    def shared_state(self, rng: np.random.Generator) -> object | None:
        """Draw the population-wide component of this distribution, if any.

        Called once per materialization with the fleet-level generator,
        *before* any chunk is sampled.  The default has no shared component
        and consumes **no** generator draws (so kinds without one never
        perturb the fleet stream).
        """
        return None

    def sample_with_shared(
        self, rng: np.random.Generator, count: int, shared: object | None = None
    ) -> np.ndarray:
        """Draw ``count`` values from ``rng`` given a :meth:`shared_state`.

        The default ignores ``shared`` (there is none) and delegates to
        :meth:`sample`, so existing third-party kinds work on the chunked
        path unchanged.
        """
        return self.sample(rng, count)


def _require_finite(name: str, value: object) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) or not math.isfinite(value):
        raise ConfigError(f"distribution parameter {name!r} must be a finite number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class NormalDistribution(Distribution):
    """Gaussian draw — the Monte-Carlo speed/temperature default."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        _require_finite("mean", self.mean)
        if _require_finite("std", self.std) < 0.0:
            raise ConfigError("normal std must be non-negative")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.normal(self.mean, self.std, count)


@dataclass(frozen=True)
class ClippedNormalDistribution(Distribution):
    """Gaussian draw clipped into ``[low, high]`` (one rng call, then clip)."""

    mean: float
    std: float
    low: float = -math.inf
    high: float = math.inf

    def __post_init__(self) -> None:
        _require_finite("mean", self.mean)
        if _require_finite("std", self.std) < 0.0:
            raise ConfigError("clipped-normal std must be non-negative")
        if not self.low < self.high:
            raise ConfigError("clipped-normal needs low < high")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.clip(rng.normal(self.mean, self.std, count), self.low, self.high)


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform draw on ``[low, high)`` — the Monte-Carlo activity default."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not _require_finite("low", self.low) <= _require_finite("high", self.high):
            raise ConfigError("uniform needs low <= high")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, count)


@dataclass(frozen=True)
class LogNormalDistribution(Distribution):
    """Multiplicative (log-normal) spread around ``median`` — speed scales.

    ``sigma`` is the standard deviation of the underlying normal; optional
    ``low``/``high`` clip the tail (a fleet's fastest driver still keeps the
    drive cycle inside the node's feasible speed range).
    """

    sigma: float
    median: float = 1.0
    low: float = -math.inf
    high: float = math.inf

    def __post_init__(self) -> None:
        if _require_finite("sigma", self.sigma) < 0.0:
            raise ConfigError("lognormal sigma must be non-negative")
        if _require_finite("median", self.median) <= 0.0:
            raise ConfigError("lognormal median must be positive")
        if not self.low < self.high:
            raise ConfigError("lognormal needs low < high")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.clip(self.median * rng.lognormal(0.0, self.sigma, count), self.low, self.high)


@dataclass(frozen=True)
class CorrelatedNormalDistribution(Distribution):
    """Gaussian draw with one fleet-shared component — ambient temperature.

    A fleet does not sample its climate independently per vehicle: a cold
    snap hits everyone.  ``correlation`` in ``[0, 1]`` splits the variance
    into one shared draw (the season) plus per-vehicle noise (parking, trip
    timing)::

        value_i = mean + std * (sqrt(c) * shared + sqrt(1 - c) * noise_i)

    so pairwise correlation between vehicles is exactly ``c`` while each
    marginal stays N(mean, std).

    ``mean`` defaults to zero: the fleet's ``ambient_offset_c`` axis
    distributes *offsets around the base scenario's ambient*, where a
    zero-centered draw is the natural parameterization (the absolute
    ``temperature_c`` axis keeps passing an explicit mean).
    """

    std: float
    mean: float = 0.0
    correlation: float = 0.5

    def __post_init__(self) -> None:
        _require_finite("mean", self.mean)
        if _require_finite("std", self.std) < 0.0:
            raise ConfigError("correlated-normal std must be non-negative")
        if not 0.0 <= _require_finite("correlation", self.correlation) <= 1.0:
            raise ConfigError("correlated-normal correlation must lie in [0, 1]")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return self.sample_with_shared(rng, count)

    def shared_state(self, rng: np.random.Generator) -> float:
        """The season: one fleet-wide standard-normal draw shared by every chunk."""
        return float(rng.normal())

    def sample_with_shared(
        self, rng: np.random.Generator, count: int, shared: object | None = None
    ) -> np.ndarray:
        if shared is None:
            # Single-stream path (eager sampling, Monte-Carlo): the shared
            # component rides the same generator, one draw ahead of the noise.
            shared = rng.normal()
        noise = rng.normal(size=count)
        mix = math.sqrt(self.correlation) * float(shared) + (
            math.sqrt(1.0 - self.correlation) * noise
        )
        return self.mean + self.std * mix


@dataclass(frozen=True)
class GaussianToleranceDistribution(Distribution):
    """Manufacturing tolerance: a Gaussian factor around ``nominal``.

    ``rel_std`` is the relative standard deviation; the draw is clipped to
    ``[low, high]`` (default ±3 sigma, floored away from zero) so a tail
    sample can never produce a non-physical negative size or capacity.
    """

    rel_std: float
    nominal: float = 1.0
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if _require_finite("rel_std", self.rel_std) < 0.0:
            raise ConfigError("gaussian-tolerance rel_std must be non-negative")
        if _require_finite("nominal", self.nominal) <= 0.0:
            raise ConfigError("gaussian-tolerance nominal must be positive")
        spread = 3.0 * self.rel_std * self.nominal
        if self.low is None:
            object.__setattr__(self, "low", max(self.nominal - spread, 0.05 * self.nominal))
        if self.high is None:
            object.__setattr__(self, "high", self.nominal + spread)
        if not _require_finite("low", self.low) < _require_finite("high", self.high):
            raise ConfigError("gaussian-tolerance needs low < high")
        if self.low <= 0.0:
            raise ConfigError("gaussian-tolerance low bound must be positive")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        draws = rng.normal(self.nominal, self.rel_std * self.nominal, count)
        return np.clip(draws, self.low, self.high)


@dataclass(frozen=True)
class CategoricalDistribution(Distribution):
    """Weighted choice over a fixed list — the drive-cycle mix.

    ``choices`` may hold any JSON values (bare component names or
    ``{name, params}`` mappings); :meth:`sample` returns an object array of
    the chosen values.
    """

    choices: tuple
    weights: tuple | None = None

    def __post_init__(self) -> None:
        choices = tuple(self.choices) if not isinstance(self.choices, tuple) else self.choices
        object.__setattr__(self, "choices", choices)
        if not choices:
            raise ConfigError("categorical needs at least one choice")
        if self.weights is not None:
            weights = tuple(float(w) for w in self.weights)
            object.__setattr__(self, "weights", weights)
            if len(weights) != len(choices):
                raise ConfigError("categorical weights must match the choices")
            if any(w < 0.0 or not math.isfinite(w) for w in weights) or sum(weights) <= 0.0:
                raise ConfigError("categorical weights must be non-negative with a positive sum")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        probabilities = None
        if self.weights is not None:
            total = sum(self.weights)
            probabilities = [w / total for w in self.weights]
        indices = rng.choice(len(self.choices), size=count, p=probabilities)
        values = np.empty(count, dtype=object)
        for position, index in enumerate(indices):
            values[position] = self.choices[int(index)]
        return values


@dataclass(frozen=True)
class ConstantDistribution(Distribution):
    """Degenerate distribution: every vehicle gets ``value`` (no rng draw)."""

    value: Any

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        values = np.empty(count, dtype=object)
        values[:] = [self.value] * count
        return values


#: Population-sampling distributions (see the module docstring).
DISTRIBUTIONS = Registry("distribution")


def register_distribution(name: str, factory: Callable[..., object] | None = None):
    """Register a distribution factory (decorator-friendly)."""
    return DISTRIBUTIONS.register(name, factory)


DISTRIBUTIONS.register("normal", NormalDistribution)
DISTRIBUTIONS.register("clipped-normal", ClippedNormalDistribution)
DISTRIBUTIONS.register("uniform", UniformDistribution)
DISTRIBUTIONS.register("lognormal", LogNormalDistribution)
DISTRIBUTIONS.register("correlated-normal", CorrelatedNormalDistribution)
DISTRIBUTIONS.register("gaussian-tolerance", GaussianToleranceDistribution)
DISTRIBUTIONS.register("categorical", CategoricalDistribution)
DISTRIBUTIONS.register("constant", ConstantDistribution)
