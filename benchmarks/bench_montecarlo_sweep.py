"""Monte-Carlo workload sweep: vectorized batch engine vs scalar reference.

The ``montecarlo`` study kind samples thousands of (speed, temperature,
activity, phase-pattern) conditions per grid point and pushes them through
``EnergyEvaluator.schedule_energy_sweep`` — the workload-vectorized batch
path.  This benchmark quantifies that choice against the scalar reference
(one ``schedule_report`` per sample, the semantics-defining path) and
*asserts*:

* >= 5x speedup of the sweep over the per-sample scalar loop;
* sweep energies matching the scalar reference within 1e-9 relative
  tolerance.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit_result, emit_timing
from repro.core.evaluator import EnergyEvaluator
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import ScenarioSpec

SAMPLES = 4000
#: Local headroom is far above the 5x acceptance bar; shared CI runners are
#: noisy, so workflows may lower the enforced floor via the environment while
#: the measured number is still reported.
REQUIRED_SPEEDUP = float(os.environ.get("MONTECARLO_SPEEDUP_FLOOR", "5.0"))
RTOL = 1e-9


def test_montecarlo_sweep_speedup(node, database):
    """>=5x on a 4000-sample workload population, equal to scalar at 1e-9."""
    spec = ScenarioSpec(name="bench-montecarlo")
    config = MonteCarloConfig(samples=SAMPLES, seed=7)
    draws = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
    evaluator = EnergyEvaluator(node, database)
    evaluator.compiled  # build the table outside the timed regions

    start = time.perf_counter()
    energies = evaluator.schedule_energy_sweep(draws.conditions, draws.patterns)
    sweep_s = time.perf_counter() - start

    batch = draws.conditions
    point = spec.operating_point()
    start = time.perf_counter()
    scalar = np.empty(len(batch))
    for i in range(len(batch)):
        speed = float(batch.speed_kmh[i])
        sample_point = point.at_speed(speed).at_temperature(
            float(batch.temperature_c[i])
        )
        schedule = node.schedule_for_pattern(
            speed,
            transmits=bool(draws.patterns[i, 0]),
            refreshes_slow=bool(draws.patterns[i, 1]),
            writes_nvm=bool(draws.patterns[i, 2]),
        )
        scalar[i] = evaluator.schedule_report(
            schedule, sample_point, activity_scale=float(batch.activity[i])
        ).total_energy_j
    scalar_s = time.perf_counter() - start
    speedup = scalar_s / sweep_s

    emit_result(
        "montecarlo_sweep",
        [
            {
                "workload": f"{SAMPLES}-sample seeded workload population",
                "samples": SAMPLES,
                "scalar_ms": scalar_s * 1e3,
                "vectorized_ms": sweep_s * 1e3,
                "speedup_x": speedup,
            }
        ],
        title="Monte-Carlo workload sweep: schedule_energy_sweep vs scalar reference",
    )
    emit_timing(
        "montecarlo_sweep",
        wall_times_s={"scalar": scalar_s, "vectorized": sweep_s},
        speedups={"vectorized_vs_scalar": speedup},
        extra={"samples": SAMPLES, "required_speedup": REQUIRED_SPEEDUP},
    )

    assert np.allclose(energies, scalar, rtol=RTOL, atol=0.0), (
        "the vectorized sweep diverged from the scalar reference"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"the vectorized sweep is only {speedup:.1f}x faster "
        f"(scalar {scalar_s * 1e3:.1f} ms vs vectorized {sweep_s * 1e3:.1f} ms); "
        f"the acceptance bar is {REQUIRED_SPEEDUP:.0f}x"
    )
