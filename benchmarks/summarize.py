"""Collate ``benchmarks/results/*.timing.json`` into one trajectory table.

Every benchmark that calls :func:`benchmarks.conftest.emit_timing` leaves a
``<name>.timing.json`` behind — wall times, speedup factors, and the
environment stamp that makes the numbers comparable across commits.  This
script merges them into a single table (one row per measured speedup, with
the slowest/fastest wall time of its benchmark alongside) and a combined
``summary.json`` so a perf trajectory across PRs is one artifact diff, not
a directory crawl.

Usage::

    PYTHONPATH=src python benchmarks/summarize.py
    PYTHONPATH=src python benchmarks/summarize.py --results-dir benchmarks/results

Exit status is non-zero when no timing artifacts are found (an empty
summary usually means the benchmarks did not run).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.reporting.export import rows_to_csv
from repro.reporting.tables import render_table


def load_timings(results_dir: Path) -> list[dict]:
    """All ``*.timing.json`` documents under ``results_dir``, sorted by bench."""
    documents = []
    for path in sorted(results_dir.glob("*.timing.json")):
        with path.open(encoding="utf-8") as handle:
            document = json.load(handle)
        document.setdefault("bench", path.name.removesuffix(".timing.json"))
        documents.append(document)
    return documents


def trajectory_rows(documents: list[dict]) -> list[dict]:
    """One row per measured speedup (benches without speedups still get one)."""
    rows = []
    for document in documents:
        wall_times = document.get("wall_times_s") or {}
        speedups = document.get("speedups") or {}
        environment = document.get("environment") or {}
        base = {
            "bench": document["bench"],
            "slowest_s": max(wall_times.values(), default=None),
            "fastest_s": min(wall_times.values(), default=None),
            "python": environment.get("python"),
            "numpy": environment.get("numpy"),
            "cpu_count": environment.get("cpu_count"),
        }
        if not speedups:
            rows.append({**base, "metric": "-", "speedup_x": None})
            continue
        for metric, value in sorted(speedups.items()):
            rows.append({**base, "metric": metric, "speedup_x": value})
    return rows


def summarize(results_dir: Path, output: Path | None) -> int:
    documents = load_timings(results_dir)
    if not documents:
        print(f"no *.timing.json artifacts under {results_dir}", file=sys.stderr)
        return 1
    rows = trajectory_rows(documents)
    print(
        render_table(
            rows,
            columns=[
                "bench",
                "metric",
                "speedup_x",
                "fastest_s",
                "slowest_s",
                "python",
                "numpy",
                "cpu_count",
            ],
            title=f"Benchmark trajectory ({len(documents)} bench(es))",
        )
    )
    if output is not None:
        payload = {"benches": documents, "rows": rows}
        output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        rows_to_csv(rows, output.with_suffix(".csv"))
        print(f"\nwrote {output} and {output.with_suffix('.csv')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=Path(__file__).parent / "results",
        help="directory holding *.timing.json artifacts (default: benchmarks/results)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the merged summary JSON (and CSV twin) here; "
        "default: <results-dir>/summary.json",
    )
    args = parser.parse_args(argv)
    output = args.output if args.output is not None else args.results_dir / "summary.json"
    return summarize(args.results_dir, output)


if __name__ == "__main__":
    raise SystemExit(main())
