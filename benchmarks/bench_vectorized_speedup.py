"""Vectorized batch-evaluation engine vs the scalar reference path.

The compiled power table (:mod:`repro.power.compiled`) turns every
figure-reproduction sweep from O(points x blocks x modes) Python dispatch
into a handful of array operations.  This benchmark quantifies that claim on
a >= 1000-point speed x temperature condition grid and *asserts* the
acceptance criteria of the perf work:

* >= 10x speedup of the grid evaluation versus per-point scalar
  ``average_report`` calls;
* vectorized energies matching the scalar ones within 1e-9 relative
  tolerance.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit_result, emit_timing
from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator

SPEEDS_KMH = np.linspace(20.0, 180.0, 40)
TEMPERATURES_C = np.linspace(-40.0, 125.0, 25)
GRID_POINTS = len(SPEEDS_KMH) * len(TEMPERATURES_C)
#: The acceptance bar is 10x (local headroom is ~50x).  Shared CI runners are
#: noisy, so workflows may lower the enforced floor via the environment while
#: the measured number is still reported; the default stays the strict bar.
REQUIRED_SPEEDUP = float(os.environ.get("VECTORIZED_SPEEDUP_FLOOR", "10.0"))
RTOL = 1e-9


def _scalar_grid(evaluator: EnergyEvaluator) -> np.ndarray:
    """Reference path: one ``average_report`` per grid point."""
    energies = np.empty((len(SPEEDS_KMH), len(TEMPERATURES_C)))
    for i, speed in enumerate(SPEEDS_KMH):
        for j, temperature in enumerate(TEMPERATURES_C):
            point = OperatingPoint(speed_kmh=float(speed), temperature_c=float(temperature))
            energies[i, j] = evaluator.average_report(point).total_energy_j
    return energies


def _time(callable_, repeats: int) -> tuple[float, object]:
    """Best-of-N wall time of ``callable_`` and its (last) return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_vectorized_grid_speedup(node, database):
    """>=10x on a 1000-point grid, equal to the scalar path within 1e-9."""
    assert GRID_POINTS >= 1000
    evaluator = EnergyEvaluator(node, database)
    evaluator.compiled  # build the table outside the timed region

    scalar_s, scalar_energies = _time(lambda: _scalar_grid(evaluator), repeats=2)
    vector_s, grid = _time(
        lambda: evaluator.energy_grid(SPEEDS_KMH, TEMPERATURES_C), repeats=5
    )
    speedup = scalar_s / vector_s

    emit_result(
        "vectorized_speedup",
        [
            {
                "workload": f"{len(SPEEDS_KMH)}x{len(TEMPERATURES_C)} speed x temperature grid",
                "points": GRID_POINTS,
                "scalar_ms": scalar_s * 1e3,
                "vectorized_ms": vector_s * 1e3,
                "speedup_x": speedup,
            }
        ],
        title="Vectorized batch evaluation vs scalar reference (energy per wheel round)",
    )
    emit_timing(
        "vectorized_speedup",
        wall_times_s={"scalar": scalar_s, "vectorized": vector_s},
        speedups={"vectorized_vs_scalar": speedup},
        extra={"points": GRID_POINTS, "required_speedup": REQUIRED_SPEEDUP},
    )

    assert np.allclose(grid.energy_j, scalar_energies, rtol=RTOL, atol=0.0), (
        "vectorized grid diverged from the scalar reference"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized path is only {speedup:.1f}x faster "
        f"(scalar {scalar_s * 1e3:.1f} ms vs vectorized {vector_s * 1e3:.1f} ms); "
        f"the acceptance bar is {REQUIRED_SPEEDUP:.0f}x"
    )


def test_vectorized_sweep_matches_scalar_everywhere(node, database):
    """Spot equivalence on mixed conditions (supply corners, process corners)."""
    from repro.conditions.process import ProcessCorner, ProcessVariation
    from repro.conditions.supply import SupplyCondition, SupplyRail

    evaluator = EnergyEvaluator(node, database)
    points = []
    for speed in (25.0, 60.0, 140.0):
        for corner in ProcessCorner:
            for supply in (1.1, 1.2, 1.3):
                rail = SupplyRail(name="vdd_core", nominal_v=supply, tolerance=0.0)
                points.append(
                    OperatingPoint(
                        speed_kmh=speed,
                        temperature_c=85.0,
                        supply=SupplyCondition(rail=rail),
                        process=ProcessVariation(corner=corner),
                    )
                )
    batch = evaluator.average_energy_sweep(points)
    scalar = np.array([evaluator.energy_per_revolution_j(p) for p in points])
    assert np.allclose(batch, scalar, rtol=RTOL, atol=0.0)
