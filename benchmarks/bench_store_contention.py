"""Throughput of the budgeted persistent store under thread contention.

The multi-replica store serializes every metadata read-modify-write — the
index update, the first-write-wins check, LRU eviction — behind one
cross-process advisory lock, so the lock is on the serving hot path: a
store that crawls under contention would throttle every replica sharing
the directory.  This benchmark hammers one budgeted on-disk store from
several threads (put + read-back per operation, distinct digests, so the
budget churns constantly), *asserts* the correctness invariants hold
mid-churn — exact bytes or a miss, never a torn read; the budget never
observed exceeded — and enforces a conservative ops/s floor.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import emit_result, emit_timing
from repro.serve import ResultStore, StoreBudget

#: Locally the locked put+get pair runs in the low hundreds of
#: microseconds (thousands of ops/s); the floor is far below that so only
#: a pathological regression — lock convoy, index rewrite blowup — trips
#: it on noisy shared runners.  CI can adjust via the environment.
REQUIRED_OPS_PER_S = float(os.environ.get("STORE_CONTENTION_FLOOR", "200.0"))

_THREADS = 4
_OPS_PER_THREAD = 150
_BUDGET = StoreBudget(max_entries=32, max_bytes=32 * 4096)


def _payload(digest: str) -> bytes:
    return (digest * 8).encode("utf-8")  # 512 deterministic bytes


def _worker(store: ResultStore, worker: int) -> tuple[int, int, int]:
    torn = 0
    max_entries = 0
    max_bytes = 0
    for item in range(_OPS_PER_THREAD):
        digest = ResultStore.key_digest({"worker": worker, "item": item})
        store.put(digest, _payload(digest))
        # Read a digest another thread churns through, racing its eviction.
        other = ResultStore.key_digest(
            {"worker": (worker + 1) % _THREADS, "item": item}
        )
        found = store.get(other)
        if found is not None and found != _payload(other):
            torn += 1
        stats = store.stats()
        max_entries = max(max_entries, stats["entries"])
        max_bytes = max(max_bytes, stats["bytes"])
    return torn, max_entries, max_bytes


def test_budgeted_store_sustains_contended_throughput(tmp_path):
    store = ResultStore(tmp_path / "store", budget=_BUDGET)
    operations = _THREADS * _OPS_PER_THREAD
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=_THREADS) as pool:
        outcomes = list(pool.map(lambda w: _worker(store, w), range(_THREADS)))
    elapsed_s = time.perf_counter() - start
    ops_per_s = operations / elapsed_s

    # Correctness before speed: no torn reads, budget never exceeded.
    assert all(torn == 0 for torn, _, _ in outcomes), "torn read under contention"
    assert max(entries for _, entries, _ in outcomes) <= _BUDGET.max_entries
    assert max(size for _, _, size in outcomes) <= _BUDGET.max_bytes
    stats = store.stats()
    assert stats["entries"] <= _BUDGET.max_entries

    emit_result(
        "store_contention",
        [
            {
                "threads": _THREADS,
                "operations": operations,
                "budget_entries": _BUDGET.max_entries,
                "budget_bytes": _BUDGET.max_bytes,
                "evictions": stats["evictions"],
                "wall_s": elapsed_s,
                "ops_per_s": ops_per_s,
            }
        ],
        title="Budgeted persistent store under thread contention",
        workers=_THREADS,
        backend="thread",
    )
    emit_timing(
        "store_contention",
        wall_times_s={"contended_ops": elapsed_s},
        speedups={},
        extra={
            "threads": _THREADS,
            "operations": operations,
            "ops_per_s": ops_per_s,
            "evictions": stats["evictions"],
            "required_ops_per_s": REQUIRED_OPS_PER_S,
        },
        workers=_THREADS,
        backend="thread",
    )

    assert ops_per_s >= REQUIRED_OPS_PER_S, (
        f"contended store throughput {ops_per_s:.0f} ops/s is below the "
        f"{REQUIRED_OPS_PER_S:.0f} ops/s floor ({operations} ops in {elapsed_s:.2f} s)"
    )
