"""Thermal fleet fast path vs the per-vehicle thermal ``emulate()`` loop.

With a :class:`ThermalSpec` on the fleet, each (cycle, speed-scale,
ambient-bin) cohort replays the tyre thermal model ONCE and the group's
bin union spans (speed, temperature, phase-pattern) triples in the same
single cross-vehicle sweep — so thermal variation rides the fast path
instead of demoting every vehicle to a cold ``NodeEmulator.emulate()``.

This benchmark measures that on a 200-vehicle fleet (log-normal speed
scales, correlated zero-mean ambient offsets snapped to ambient-bin
centers, Gaussian tolerances) and *asserts*:

* >= 3x throughput of the thermal fast path over the forced per-vehicle
  fallback (``FleetRunner(force_fallback=True)`` — the same engine with
  the cohort sharing switched off);
* bitwise-identical per-vehicle figures against the naive thermal loop
  (fresh emulator + fresh thermal model per vehicle) AND against the
  forced fallback, across worker counts and backends.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit_result, emit_timing
from repro.core.emulator import NodeEmulator
from repro.fleet import FleetRunner, FleetSpec, ThermalSpec, default_fleet_distributions
from repro.scavenger.storage import scaled_storage
from repro.scenario import ScenarioSpec

#: Local headroom is above the 3x acceptance bar (~3.5-4x measured); shared CI
#: runners are noisy, so workflows may lower the enforced floor via the
#: environment while the measured number is still reported.
REQUIRED_SPEEDUP = float(os.environ.get("FLEET_THERMAL_FLOOR", "3.0"))

VEHICLES = 200


def _bench_fleet() -> FleetSpec:
    base = ScenarioSpec(
        name="bench-thermal",
        drive_cycle={"name": "urban", "params": {"repetitions": 2}},
    )
    distributions = {
        key: value
        for key, value in default_fleet_distributions(base).items()
        if key != "temperature_c"
    }
    distributions["ambient_offset_c"] = {
        "kind": "correlated-normal",
        "params": {"std": 6.0, "correlation": 0.6},
    }
    return FleetSpec(
        name="bench-thermal",
        base=base,
        vehicles=VEHICLES,
        seed=11,
        distributions=distributions,
        thermal=ThermalSpec(),
    )


def test_thermal_fast_path_beats_per_vehicle_fallback():
    """The thermal cohort fast path is >= 3x the forced per-vehicle path.

    Three runs over the identical 200-vehicle population: the naive loop
    (fresh emulator and thermal model per vehicle — what a user would write
    without the fleet subsystem), the forced fallback (fleet engine, cohort
    sharing off), and the thermal fast path.  All three must agree bit for
    bit; only the wall clock may differ.
    """
    fleet = _bench_fleet()
    thermal = fleet.thermal
    vehicles = fleet.materialize()

    # Naive baseline: one fresh thermal emulator per vehicle.
    start = time.perf_counter()
    naive_summaries = []
    for vehicle in vehicles:
        spec = vehicle.scenario
        emulator = NodeEmulator(
            spec.build_node(),
            spec.build_database(),
            spec.build_scavenger(),
            scaled_storage(spec.build_storage(), vehicle.storage_scale),
            base_point=spec.operating_point(),
            thermal_model=thermal.build(spec.temperature_c),
        )
        cycle = spec.build_drive_cycle().scaled(vehicle.speed_scale)
        naive_summaries.append(emulator.emulate(cycle).summary())
    naive_s = time.perf_counter() - start

    # Forced fallback: the fleet engine with the cohort fast path disabled —
    # isolates the cohort sharing itself from chunking/aggregation overhead.
    start = time.perf_counter()
    forced = FleetRunner(fleet, force_fallback=True).run()
    forced_s = time.perf_counter() - start

    # Thermal fast path (sequential, so the comparison is CPU-for-CPU).
    start = time.perf_counter()
    result = FleetRunner(fleet).run()
    fleet_s = time.perf_counter() - start

    speedup_vs_forced = forced_s / fleet_s
    speedup_vs_naive = naive_s / fleet_s

    metadata = result.metadata
    assert metadata["fast_path_vehicles"] == VEHICLES
    assert metadata["fallback_vehicles"] == 0

    emit_result(
        "fleet_thermal",
        [
            {
                "vehicles": VEHICLES,
                "cohorts": metadata["cohorts"],
                "shared_energy_bins": metadata["shared_energy_bins"],
                "fast_path_vehicles": metadata["fast_path_vehicles"],
                "naive_s": naive_s,
                "forced_fallback_s": forced_s,
                "fleet_s": fleet_s,
                "speedup_vs_forced_x": speedup_vs_forced,
                "speedup_vs_naive_x": speedup_vs_naive,
            }
        ],
        title="Thermal fleet: cohort fast path vs per-vehicle thermal emulate",
        workers=1,
        backend="thread",
    )
    emit_timing(
        "fleet_thermal",
        wall_times_s={
            "naive_loop": naive_s,
            "forced_fallback": forced_s,
            "fleet_runner": fleet_s,
        },
        speedups={
            "fast_vs_forced": speedup_vs_forced,
            "fast_vs_naive": speedup_vs_naive,
        },
        extra={
            "vehicles": VEHICLES,
            "cohorts": metadata["cohorts"],
            "groups": metadata["groups"],
            "shared_energy_bins": metadata["shared_energy_bins"],
            "ambient_quantum_c": metadata["ambient_quantum_c"],
            "required_speedup": REQUIRED_SPEEDUP,
        },
        workers=1,
        backend="thread",
    )

    # Correctness before speed: fast path == naive thermal emulate(), bit
    # for bit, and == the forced fallback and parallel variants.
    assert len(result.vehicle_rows) == len(naive_summaries)
    for row, summary in zip(result.vehicle_rows, naive_summaries):
        for key, value in summary.items():
            assert row[key] == value, (
                f"thermal fleet row diverged from naive emulate() on {key!r}: "
                f"{row[key]!r} != {value!r}"
            )
    assert forced.vehicle_rows == result.vehicle_rows

    threaded = FleetRunner(fleet, workers=2, backend="thread").run()
    assert threaded.vehicle_rows == result.vehicle_rows
    processed = FleetRunner(fleet, workers=2, backend="process").run()
    assert processed.vehicle_rows == result.vehicle_rows

    assert speedup_vs_forced >= REQUIRED_SPEEDUP, (
        f"thermal cohort fast path is only {speedup_vs_forced:.1f}x faster than "
        f"the forced per-vehicle fallback (forced {forced_s:.2f} s vs fast "
        f"{fleet_s:.2f} s for {VEHICLES} vehicles); the acceptance bar is "
        f"{REQUIRED_SPEEDUP:.0f}x"
    )
