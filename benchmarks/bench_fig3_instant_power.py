"""E3 / Fig. 3 — instant power consumption over a limited timing window.

Regenerates the paper's Fig. 3: the per-revolution burst pattern of the
Sensor Node (acquire, compute, transmit, sleep) at a constant cruise, sampled
over a one-second window.
"""

from __future__ import annotations

from benchmarks.conftest import emit_result
from repro.core.emulator import NodeEmulator

CRUISE_KMH = 60.0
WINDOW_S = 1.0


def test_fig3_instant_power_trace(benchmark, node, database, scavenger, storage):
    """Time the steady-state trace generation and emit the segment series."""
    emulator = NodeEmulator(node, database, scavenger, storage)

    trace = benchmark(emulator.steady_state_trace, CRUISE_KMH, WINDOW_S)

    rows = trace.as_rows()
    emit_result(
        "fig3_instant_power",
        rows,
        title=(
            f"Fig. 3 — instant power over {WINDOW_S:.1f} s at {CRUISE_KMH:.0f} km/h "
            f"(peak {trace.peak_power_w() * 1e3:.2f} mW, "
            f"average {trace.average_power_w() * 1e6:.1f} uW)"
        ),
    )

    # Shape assertions: bursty trace, peak set by the radio, quiet floor.
    assert trace.peak_to_average_ratio() > 3.0
    labels = {label for _, _, _, label in trace.segments()}
    assert {"acquire", "compute", "transmit", "sleep"} <= labels


def test_fig3_trace_inside_drive_cycle_emulation(benchmark, node, database, scavenger, storage):
    """The same view extracted from a full emulation (storage included)."""
    from repro.vehicle.drive_cycle import constant_cruise

    emulator = NodeEmulator(node, database, scavenger, storage)
    cycle = constant_cruise(CRUISE_KMH, duration_s=30.0)

    result = benchmark(emulator.emulate, cycle, 1.0, (10.0, 11.0))

    assert result.trace is not None
    emit_result(
        "fig3_instant_power_emulated",
        result.trace.as_rows(),
        title="Fig. 3 (from emulation) — instant power, window 10-11 s",
    )
    assert result.trace.peak_to_average_ratio() > 3.0


def test_fig3_energy_breakdown_by_phase(benchmark, node, database, scavenger, storage):
    """Per-phase energy split of the Fig. 3 window (who spends the budget)."""
    emulator = NodeEmulator(node, database, scavenger, storage)

    def grouped_energy():
        trace = emulator.steady_state_trace(CRUISE_KMH, WINDOW_S)
        return trace.label_energy_j()

    grouped = benchmark(grouped_energy)

    rows = [
        {"phase": label, "energy_uj": energy * 1e6}
        for label, energy in sorted(grouped.items(), key=lambda kv: -kv[1])
    ]
    emit_result(
        "fig3_phase_energy",
        rows,
        title="Fig. 3 companion — energy by phase over the window",
    )
    assert grouped["transmit"] > 0.0
