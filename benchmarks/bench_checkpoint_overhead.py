"""Checkpoint journaling overhead on a fleet run (and replay payoff).

Crash-safety must be close to free or nobody turns it on.  This benchmark
runs the 200-vehicle default fleet three ways:

* **plain** — no checkpoint directory;
* **journaled** — every chunk written through the atomic write-then-rename
  journal (fsync'd chunk files + manifest rewrites);
* **replayed** — a second run over the finished journal (zero kernels, pure
  deserialization), the resume-side payoff.

and *asserts* the journaled run stays within ``CHECKPOINT_OVERHEAD_MAX``
(default 10%) of the plain run, and that the replay is faster than
computing.  Byte-identity of journaled results is asserted by the test
suite (``tests/fleet/test_fleet_resume.py``); this file pins the cost.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from benchmarks.conftest import emit_result, emit_timing
from repro.fleet import FleetRunner, FleetSpec
from repro.scenario import ScenarioSpec

#: Maximum acceptable journaling overhead, as a fraction of the plain run.
#: Local headroom is large (measured ~1-3%); shared CI runners are noisy, so
#: workflows may relax the enforced ceiling via the environment while the
#: measured number is still reported.
OVERHEAD_CEILING = float(os.environ.get("CHECKPOINT_OVERHEAD_MAX", "0.10"))

VEHICLES = 200
CHUNK_VEHICLES = 25


def _bench_fleet() -> FleetSpec:
    base = ScenarioSpec(
        name="bench",
        drive_cycle={"name": "urban", "params": {"repetitions": 2}},
    )
    return FleetSpec.from_base(
        base, vehicles=VEHICLES, seed=11, chunk_vehicles=CHUNK_VEHICLES
    )


def test_checkpoint_overhead_is_bounded():
    """Journaling a fleet run costs <= 10% wall time; replay costs far less."""
    fleet = _bench_fleet()

    # Warm-up: pay one-time imports/compilations outside the timed runs.
    FleetRunner(fleet).run()

    start = time.perf_counter()
    plain = FleetRunner(fleet).run()
    plain_s = time.perf_counter() - start

    checkpoint_dir = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        start = time.perf_counter()
        journaled = FleetRunner(fleet, checkpoint=checkpoint_dir).run()
        journaled_s = time.perf_counter() - start

        start = time.perf_counter()
        replayed = FleetRunner(fleet, checkpoint=checkpoint_dir).run()
        replayed_s = time.perf_counter() - start

        journal_files = len(os.listdir(checkpoint_dir))
        journal_bytes = sum(
            os.path.getsize(os.path.join(checkpoint_dir, name))
            for name in os.listdir(checkpoint_dir)
        )
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)

    overhead = journaled_s / plain_s - 1.0
    emit_result(
        "checkpoint_overhead",
        [
            {
                "vehicles": VEHICLES,
                "chunk_vehicles": CHUNK_VEHICLES,
                "chunks": fleet.chunk_count(),
                "plain_s": plain_s,
                "journaled_s": journaled_s,
                "replayed_s": replayed_s,
                "overhead_pct": 100.0 * overhead,
                "journal_files": journal_files,
                "journal_kib": journal_bytes / 1024.0,
            }
        ],
        title="Checkpoint journaling: plain vs journaled vs full replay",
        workers=1,
        backend="thread",
    )
    emit_timing(
        "checkpoint_overhead",
        wall_times_s={
            "plain": plain_s,
            "journaled": journaled_s,
            "replayed": replayed_s,
        },
        speedups={"replay_vs_compute": plain_s / replayed_s if replayed_s > 0 else None},
        extra={
            "vehicles": VEHICLES,
            "chunk_vehicles": CHUNK_VEHICLES,
            "overhead_fraction": overhead,
            "overhead_ceiling": OVERHEAD_CEILING,
            "journal_kib": journal_bytes / 1024.0,
        },
        workers=1,
        backend="thread",
    )

    # The three paths must agree before their costs mean anything.
    digest = lambda result: json.dumps(  # noqa: E731 - local comparator
        {"summary": result.summary, "rows": result.vehicle_rows},
        sort_keys=True,
        allow_nan=True,
    )
    assert digest(journaled) == digest(plain)
    assert digest(replayed) == digest(plain)
    assert replayed.metadata["engine_backend"] == "resumed"

    assert overhead <= OVERHEAD_CEILING, (
        f"checkpoint journaling costs {100.0 * overhead:.1f}% "
        f"({journaled_s:.2f} s vs {plain_s:.2f} s plain for {VEHICLES} vehicles "
        f"in {fleet.chunk_count()} chunks); the ceiling is "
        f"{100.0 * OVERHEAD_CEILING:.0f}%"
    )
    assert replayed_s < plain_s, (
        f"replaying the journal ({replayed_s:.2f} s) should beat recomputing "
        f"({plain_s:.2f} s)"
    )
