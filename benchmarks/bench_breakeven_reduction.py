"""E7 — reducing the minimum activation speed.

The introduction's stated challenge: *"reduce the minimum speed for the
monitoring system activation"*.  This benchmark sweeps the two levers the
designer has — the scavenger size and the architecture / circuit-level
optimizations — and reports the break-even speed of every design point.
"""

from __future__ import annotations

from benchmarks.conftest import emit_result
from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator
from repro.optimization.apply import apply_assignments
from repro.optimization.exploration import (
    ArchitectureCandidate,
    explore_design_space,
    scavenger_size_sweep,
)
from repro.optimization.selection import select_techniques

SIZE_FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0, 3.0)


def test_scavenger_size_sweep(benchmark, node, database, scavenger):
    """Break-even speed versus scavenger device size."""
    results = benchmark(
        scavenger_size_sweep, node, database, scavenger, SIZE_FACTORS
    )

    rows = [result.as_row() for result in results]
    emit_result(
        "breakeven_scavenger_size",
        rows,
        title="Minimum activation speed vs scavenger size (baseline node)",
    )
    finite = [r.break_even_kmh for r in results if r.break_even_kmh is not None]
    assert finite == sorted(finite, reverse=True)


def test_architecture_and_technique_exploration(
    benchmark, node, optimized, legacy, database, scavenger
):
    """Break-even speed of every architecture, before and after the
    circuit-level optimization step."""
    point = OperatingPoint(speed_kmh=60.0)

    def build_candidates():
        candidates = []
        for architecture in (legacy, node, optimized):
            candidates.append(
                ArchitectureCandidate(
                    node=architecture,
                    database=database,
                    scavenger=scavenger,
                    label=f"{architecture.name} (as characterized)",
                )
            )
            duty = EnergyEvaluator(architecture, database).duty_cycles(point)
            outcome = apply_assignments(
                architecture,
                database,
                select_techniques(duty, database=database),
                point=point,
            )
            candidates.append(
                ArchitectureCandidate(
                    node=architecture,
                    database=outcome.database,
                    scavenger=scavenger,
                    label=f"{architecture.name} + techniques",
                )
            )
        return explore_design_space(candidates)

    results = benchmark(build_candidates)

    rows = [result.as_row() for result in results]
    emit_result(
        "breakeven_architectures",
        rows,
        title="Minimum activation speed across architectures and circuit-level techniques",
    )

    by_label = {result.label: result.break_even_kmh for result in results}
    assert (
        by_label["baseline + techniques"] < by_label["baseline (as characterized)"]
    )
    assert (
        by_label["optimized + techniques"] < by_label["baseline (as characterized)"]
    )


def test_scavenger_technology_comparison(benchmark, node, database):
    """Break-even speed of the three harvester technologies at equal size."""
    from repro.scavenger import (
        ElectromagneticScavenger,
        ElectrostaticScavenger,
        PiezoelectricScavenger,
    )

    technologies = (
        PiezoelectricScavenger(),
        ElectromagneticScavenger(),
        ElectrostaticScavenger(),
    )

    def explore():
        candidates = [
            ArchitectureCandidate(
                node=node, database=database, scavenger=technology,
                label=technology.technology,
            )
            for technology in technologies
        ]
        return explore_design_space(candidates)

    results = benchmark(explore)

    rows = [result.as_row() for result in results]
    emit_result(
        "breakeven_scavenger_technology",
        rows,
        title="Minimum activation speed per scavenger technology (baseline node)",
    )
    by_label = {result.label: result for result in results}
    assert by_label["piezoelectric"].activates
    assert not by_label["electrostatic"].activates
