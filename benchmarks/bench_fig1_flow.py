"""E1 / Fig. 1 — the end-to-end energy analysis flow.

Runs the whole Fig. 1 pipeline (estimate, evaluate, select techniques,
optimize, re-estimate, integrate the source model, emulate) on the baseline
architecture and reports the headline figures of every step.
"""

from __future__ import annotations

from benchmarks.conftest import emit_result
from repro.core.flow import EnergyAnalysisFlow
from repro.scavenger import supercapacitor
from repro.vehicle.drive_cycle import urban_cycle

SPEED_GRID = [float(v) for v in range(5, 205, 5)]


def test_fig1_full_flow(benchmark, node, database, scavenger):
    """Time the complete flow including the long-window emulation step."""

    def run_flow():
        flow = EnergyAnalysisFlow(
            node, database, scavenger, storage=supercapacitor()
        )
        return flow.run(
            speeds_kmh=SPEED_GRID, drive_cycle=urban_cycle(repetitions=2)
        )

    report = benchmark(run_flow)

    summary = report.summary()
    rows = [{"step": key, "value": value} for key, value in summary.items()]
    emit_result(
        "fig1_flow_summary",
        rows,
        title="Fig. 1 — flow summary (estimate / evaluate / optimize / integrate / emulate)",
    )

    assert report.optimization.saving_fraction > 0.0
    assert report.break_even_after_kmh < report.break_even_before_kmh
    assert report.emulation is not None


def test_fig1_per_block_energy_table(benchmark, node, database):
    """The evaluation step's core table: per-block energy over a wheel round."""
    from repro.conditions.operating_point import OperatingPoint
    from repro.core.evaluator import EnergyEvaluator

    evaluator = EnergyEvaluator(node, database)
    point = OperatingPoint(speed_kmh=60.0)

    report = benchmark(evaluator.average_report, point)

    emit_result(
        "fig1_block_energy",
        report.as_rows(),
        title=(
            "Flow step 2 — per-block energy per wheel round at 60 km/h "
            f"(total {report.total_energy_j * 1e6:.1f} uJ)"
        ),
    )
    assert report.total_energy_j > 0.0


def test_fig1_duty_cycle_table(benchmark, node, database):
    """The temporal information the optimization selection feeds on."""
    from repro.conditions.operating_point import OperatingPoint
    from repro.core.evaluator import EnergyEvaluator

    evaluator = EnergyEvaluator(node, database)
    point = OperatingPoint(speed_kmh=60.0)

    report = benchmark(evaluator.duty_cycles, point)

    rows = [
        {
            "block": entry.block,
            "duty_cycle_pct": entry.duty_cycle * 100.0,
            "active_power_uw": entry.active_power_w * 1e6,
            "static_energy_share_pct": entry.static_energy_fraction * 100.0,
            "short_duty_cycle": entry.is_short_duty_cycle,
        }
        for entry in sorted(report.entries, key=lambda e: e.duty_cycle)
    ]
    emit_result(
        "fig1_duty_cycles",
        rows,
        title="Flow step 2 — per-block duty cycles within one wheel round (60 km/h)",
    )
    assert report.for_block("rf_tx").is_short_duty_cycle
