"""Batch prefill of the emulator's revolution-energy cache vs scalar misses.

The emulator's integration loop used to discover its quantized
(speed, temperature, phase-pattern) bins one cache miss at a time, paying one
scalar ``schedule_energy_compiled`` call per bin.  ``emulate()`` now
pre-scans the drive cycle and fills every bin with ONE vectorized
``_schedule_energy_batch`` call before the state-of-charge loop.

This benchmark measures exactly that replacement on a thermally varying,
wide-speed-range cycle (hundreds of unique bins) and *asserts*:

* >= 5x speedup of the one-batch-call fill versus the sequential scalar
  fill of the same bins (the old miss path);
* bitwise-identical cache contents from both fills (the emulator's
  byte-identical-log contract rests on this);
* identical ``EmulationResult`` output of a full ``emulate()`` run with and
  without prefill.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit_result, emit_timing
from repro.conditions.temperature import TyreThermalModel
from repro.core.emulator import NodeEmulator
from repro.scavenger.storage import supercapacitor
from repro.vehicle.drive_cycle import DriveCycle, DriveCyclePhase

#: Local headroom is comfortably above the 5x acceptance bar; shared CI
#: runners are noisy, so workflows may lower the enforced floor via the
#: environment while the measured number is still reported.
REQUIRED_SPEEDUP = float(os.environ.get("PREFILL_SPEEDUP_FLOOR", "5.0"))


def _varied_cycle() -> DriveCycle:
    """An hour-long cycle sweeping 20..170 km/h so many speed bins are touched."""
    times = np.linspace(0.0, 3600.0, 121)
    speeds = 95.0 + 75.0 * np.sin(times / 240.0)
    phases = [
        DriveCyclePhase(
            duration_s=float(times[i + 1] - times[i]),
            start_kmh=float(speeds[i]),
            end_kmh=float(speeds[i + 1]),
        )
        for i in range(len(times) - 1)
    ]
    return DriveCycle(phases=phases, name="bench-varied")


def _make_emulator(node, database, scavenger) -> NodeEmulator:
    return NodeEmulator(
        node,
        database,
        scavenger,
        supercapacitor(initial_fraction=0.5),
        thermal_model=TyreThermalModel(time_constant_s=120.0, max_rise_c=70.0),
    )


def test_prefill_beats_sequential_scalar_fill(node, database, scavenger):
    """One batch call fills the bins >= 5x faster than per-bin scalar misses.

    Both variants receive the identical pre-scanned bin set (straight from
    the production pre-scan, ``_pending_energy_bins`` — the walk is shared
    bookkeeping the integration loop pays either way); what is timed is
    exactly what the prefill replaced — the per-bin scalar
    ``schedule_energy_compiled`` evaluations — against the single vectorized
    ``_schedule_energy_batch`` call.
    """
    from repro.conditions.batch import BatchConditions

    cycle = _varied_cycle()
    emulator = _make_emulator(node, database, scavenger)
    emulator.evaluator.compiled  # build the table outside the timed regions
    pending = emulator._pending_energy_bins(cycle, idle_step_s=1.0)
    keys = list(pending)
    assert len(keys) >= 200, "the bench cycle should produce hundreds of bins"

    # Scalar baseline: the old miss path, one compiled-scalar call per bin.
    start = time.perf_counter()
    scalar_values = {}
    for key in keys:
        speed, temperature_c, schedule = pending[key]
        point = emulator._operating_point(speed, temperature_c)
        scalar_values[key] = emulator.evaluator.schedule_energy_compiled(
            schedule, point
        )
    scalar_s = time.perf_counter() - start

    # Batch fill: the same bins through ONE _schedule_energy_batch call.
    start = time.perf_counter()
    batch = BatchConditions.from_arrays(
        np.array([pending[key][0] for key in keys]),
        np.array([pending[key][1] for key in keys]),
        base_point=emulator.base_point,
    )
    energies, phase_lists = emulator.evaluator._schedule_energy_batch(
        batch, [pending[key][2] for key in keys], include_phases=True
    )
    batch_values = {
        key: (float(energies[i]), phase_lists[i]) for i, key in enumerate(keys)
    }
    batch_s = time.perf_counter() - start
    speedup = scalar_s / batch_s

    emit_result(
        "emulate_prefill",
        [
            {
                "workload": "hour-long 20-170 km/h thermal cycle",
                "bins": len(keys),
                "scalar_fill_ms": scalar_s * 1e3,
                "batch_fill_ms": batch_s * 1e3,
                "speedup_x": speedup,
            }
        ],
        title="Revolution-energy cache fill: one batch call vs scalar misses",
    )
    emit_timing(
        "emulate_prefill",
        wall_times_s={"scalar_fill": scalar_s, "batch_fill": batch_s},
        speedups={"batch_vs_scalar": speedup},
        extra={"bins": len(keys), "required_speedup": REQUIRED_SPEEDUP},
    )

    for key, value in scalar_values.items():
        assert batch_values[key] == value, (
            "batch prefill diverged bitwise from the scalar miss path"
        )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batch prefill is only {speedup:.1f}x faster "
        f"(scalar {scalar_s * 1e3:.1f} ms vs batch {batch_s * 1e3:.1f} ms); "
        f"the acceptance bar is {REQUIRED_SPEEDUP:.0f}x"
    )


def test_emulate_output_identical_with_and_without_prefill(node, database, scavenger):
    """Full emulate() runs agree sample-for-sample with prefill on and off."""
    cycle = _varied_cycle()
    with_prefill = _make_emulator(node, database, scavenger).emulate(cycle, prefill=True)
    without = _make_emulator(node, database, scavenger).emulate(cycle, prefill=False)
    assert with_prefill == without
