"""Backend matrix: every available array backend over the three hot kernels.

The array-backend seam (:mod:`repro.backend`) lets the three hottest
kernels — the batch schedule-energy engine
(``EnergyEvaluator._schedule_energy_batch``), the storage ledger scan
(:func:`repro.scavenger.storage.trajectory`) and the emulator's bin-union
sweep (:meth:`NodeEmulator.evaluate_energy_bins`) — run on alternative
implementations (``numba`` JIT, ``float32`` precision policy) without
touching their call sites.  This benchmark runs each *available* backend
over all three kernels against the numpy floor and asserts:

* the numpy reference numbers exist and are positive (the floor itself);
* every non-default backend first passes its equivalence gate against the
  numpy results (numba: 1e-9 relative; float32: the pinned reduced-precision
  tolerance) — a backend that fails the gate fails the bench, its timings
  are never reported;
* every non-default backend clears the conservative no-regression floor
  ``numpy_s / backend_s >= BACKEND_MATRIX_FLOOR`` (default 0.2 — a policy
  backend may trade some straight-line speed for precision or warmup, but a
  5x regression means the seam broke something).

The per-(kernel, backend) wall times land in
``benchmarks/results/backend_matrix.timing.json``; the environment stamp
records the *ambient* backend plus the numba version when the package is
present, so the trajectory stays machine-readable across commits.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit_result, emit_timing
from repro.backend import available_backends, resolve_backend
from repro.conditions.temperature import TyreThermalModel
from repro.core.emulator import NodeEmulator
from repro.core.evaluator import EnergyEvaluator
from repro.scavenger.storage import supercapacitor, trajectory
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import ScenarioSpec
from repro.vehicle.drive_cycle import DriveCycle, DriveCyclePhase

SWEEP_SAMPLES = 2000
TRAJECTORY_STEPS = 200_000
REPEATS = 3
#: Conservative no-regression floor for non-default backends relative to the
#: numpy reference.  CI may tighten or loosen it through the environment;
#: the measured speedups are always reported regardless of the floor.
FLOOR = float(os.environ.get("BACKEND_MATRIX_FLOOR", "0.2"))
#: Equivalence gates: numba mirrors the float64 operation set, so it must
#: match at the suite-wide 1e-9 everywhere; float32 is a declared precision
#: policy — energies carry its pinned relative tolerance, while the ledger
#: recurrence is gated in *absolute* charge terms (a fraction of capacity),
#: because near-empty steps make relative error meaningless (see
#: tests/backend/test_float32_policy.py for the same pins).
NUMBA_RTOL = 1e-9
FLOAT32_RTOL = 5e-4
#: Charge-trajectory gate for float32, as a fraction of storage capacity.
FLOAT32_CHARGE_FRAC = 0.02

_GATES = {"numba": NUMBA_RTOL, "float32": FLOAT32_RTOL}


def _timed(kernel, repeats: int = REPEATS):
    """Best-of-N wall time and the (final) result of ``kernel()``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = kernel()
        best = min(best, time.perf_counter() - start)
    return best, result


def _hour_cycle() -> DriveCycle:
    """An hour-long mixed profile: many distinct speed/temperature bins."""
    phases = [
        DriveCyclePhase(duration_s=600.0, start_kmh=30.0, end_kmh=120.0),
        DriveCyclePhase(duration_s=900.0, start_kmh=120.0, end_kmh=120.0),
        DriveCyclePhase(duration_s=300.0, start_kmh=120.0, end_kmh=0.0),
        DriveCyclePhase(duration_s=300.0, start_kmh=0.0, end_kmh=0.0),
        DriveCyclePhase(duration_s=600.0, start_kmh=0.0, end_kmh=90.0),
        DriveCyclePhase(duration_s=900.0, start_kmh=90.0, end_kmh=45.0),
    ]
    return DriveCycle(phases=phases, name="bench-hour")


def _sweep_inputs(node, spec):
    config = MonteCarloConfig(samples=SWEEP_SAMPLES, seed=11)
    draws = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
    return draws.conditions, draws.patterns


def _trajectory_inputs():
    rng = np.random.default_rng(23)
    harvest = rng.uniform(0.0, 2e-4, TRAJECTORY_STEPS)
    load = rng.uniform(0.0, 2.5e-4, TRAJECTORY_STEPS)
    leak = np.full(TRAJECTORY_STEPS, 0.05)
    return harvest, load, leak


def test_backend_matrix(node, database, scavenger):
    """Every available backend over all three kernels vs the numpy floor."""
    backends = available_backends()
    assert "numpy" in backends, backends
    # Time the reference first so every other backend has its denominator.
    ordered = ["numpy"] + [name for name in backends if name != "numpy"]

    spec = ScenarioSpec(name="bench-backend-matrix")
    conditions, patterns = _sweep_inputs(node, spec)
    harvest, load, leak = _trajectory_inputs()
    cycle = _hour_cycle()

    wall_times: dict[str, float] = {}
    speedups: dict[str, float] = {}
    reference: dict[str, object] = {}
    rows: list[dict[str, object]] = []

    for name in ordered:
        backend = resolve_backend(name)

        evaluator = EnergyEvaluator(node, database, backend=backend)
        evaluator.compiled  # table compilation stays outside the timed region
        storage = supercapacitor(initial_fraction=0.3)
        emulator = NodeEmulator(
            node,
            database,
            scavenger,
            supercapacitor(initial_fraction=0.3),
            thermal_model=TyreThermalModel(time_constant_s=120.0),
            evaluator=evaluator,
        )
        pending = emulator._pending_energy_bins(cycle, idle_step_s=1.0)
        assert pending, "the bin-union kernel needs a non-empty pending map"

        # One untimed call per kernel: numba pays its JIT compilation here,
        # every backend pays cache warmup, so the timed region measures the
        # steady state the fleet runner actually lives in.
        evaluator.schedule_energy_sweep(conditions, patterns)
        trajectory(storage, harvest, load, leak, backend=backend)

        sweep_s, energies = _timed(
            lambda: evaluator.schedule_energy_sweep(conditions, patterns)
        )
        traj_s, ledger = _timed(
            lambda: trajectory(storage, harvest, load, leak, backend=backend)
        )
        bins_s, bins = _timed(lambda: emulator.evaluate_energy_bins(dict(pending)))
        bin_keys = sorted(bins, key=repr)
        bin_energies = np.array([bins[key][0] for key in bin_keys])

        if name == "numpy":
            reference = {
                "sweep": energies,
                "trajectory": ledger.charge_j,
                "final_charge": ledger.final_charge_j,
                "bins": bin_energies,
            }
        else:
            # Equivalence gate: numbers are only reported for a backend that
            # reproduces the numpy reference within its declared tolerance.
            rtol = _GATES[name]
            np.testing.assert_allclose(energies, reference["sweep"], rtol=rtol)
            np.testing.assert_allclose(bin_energies, reference["bins"], rtol=rtol)
            if name == "float32":
                atol = FLOAT32_CHARGE_FRAC * storage.capacity_j
                np.testing.assert_allclose(
                    ledger.charge_j, reference["trajectory"], rtol=0.0, atol=atol
                )
                np.testing.assert_allclose(
                    ledger.final_charge_j,
                    reference["final_charge"],
                    rtol=0.0,
                    atol=atol,
                )
            else:
                np.testing.assert_allclose(
                    ledger.charge_j, reference["trajectory"], rtol=rtol, atol=rtol
                )
                np.testing.assert_allclose(
                    ledger.final_charge_j,
                    reference["final_charge"],
                    rtol=rtol,
                    atol=rtol,
                )

        for kernel, seconds in (
            ("schedule_sweep", sweep_s),
            ("trajectory", traj_s),
            ("bin_union", bins_s),
        ):
            wall_times[f"{kernel}:{name}"] = seconds
            row: dict[str, object] = {
                "kernel": kernel,
                "backend": name,
                "wall_time_s": seconds,
                "speedup_vs_numpy": 1.0,
            }
            if name != "numpy":
                speedup = wall_times[f"{kernel}:numpy"] / seconds
                speedups[f"{kernel}:{name}"] = speedup
                row["speedup_vs_numpy"] = speedup
            rows.append(row)

    # The numpy floor: the reference numbers must exist and be positive...
    for kernel in ("schedule_sweep", "trajectory", "bin_union"):
        assert wall_times[f"{kernel}:numpy"] > 0.0
    # ...and no gated backend may regress past the conservative floor.
    for label, speedup in speedups.items():
        assert speedup >= FLOOR, (
            f"{label} speedup {speedup:.3f} fell below the no-regression "
            f"floor {FLOOR} (BACKEND_MATRIX_FLOOR)"
        )

    emit_result(
        "backend_matrix",
        rows,
        title="Array-backend matrix over the three hot kernels",
        columns=["kernel", "backend", "wall_time_s", "speedup_vs_numpy"],
    )
    emit_timing(
        "backend_matrix",
        wall_times,
        speedups,
        extra={
            "backends": ordered,
            "floor": FLOOR,
            "sweep_samples": SWEEP_SAMPLES,
            "trajectory_steps": TRAJECTORY_STEPS,
            "bin_count": len(reference["bins"]),
            "gates_rtol": _GATES,
            "repeats": REPEATS,
        },
    )
