"""Warm store-hit requests vs a cold run through the serving layer.

The serving layer's claim: a repeated request never recomputes.  The
content-addressed :class:`~repro.serve.ResultStore` keys each job on the
sha256 of its canonical spec document (plus seed and result-shaping
runner parameters), so re-POSTing the same study document is answered
from stored bytes — the job is born ``done`` with ``store_hit`` set and
never touches the evaluator cache or the engine.

This benchmark runs a real :class:`~repro.serve.ServeServer` on an
ephemeral port, times the full HTTP round trip (submit + wait + fetch
result bytes) cold and warm through the in-repo client, and *asserts*:

* >= 5x wall-time speedup of the warm (store-hit) request over the cold
  request that actually computed the Monte-Carlo study;
* byte-identical response bodies from both paths (the store serves the
  exact bytes the cold run produced — never a re-serialization).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit_result, emit_timing
from repro.serve import JobManager, ServeClient, ServeServer

#: Local headroom is far above the 5x acceptance bar (the warm path is a
#: dictionary lookup plus one HTTP exchange); shared CI runners are noisy,
#: so workflows may lower the enforced floor via the environment while the
#: measured number is still reported.
REQUIRED_SPEEDUP = float(os.environ.get("SERVE_CACHE_FLOOR", "5.0"))

#: A Monte-Carlo study big enough that the cold run does real work (the
#: warm path's cost is independent of the workload, so the measured
#: speedup scales with this; 256 samples x 3 grid points keeps the cold
#: side around a second).
STUDY_DOC = {
    "scenario": {"name": "serve-bench", "architecture": "baseline"},
    "axes": {"temperature": [-10.0, 25.0, 60.0]},
    "analysis": "montecarlo",
    "montecarlo": {"samples": 256, "seed": 2011},
}


def _request(client: ServeClient) -> tuple[float, bytes, dict]:
    """One full round trip: submit, poll to completion, fetch the bytes."""
    start = time.perf_counter()
    job = client.submit_study(STUDY_DOC)
    final = client.wait(job["id"])
    payload = client.result_bytes(job["id"])
    return time.perf_counter() - start, payload, final


def test_warm_store_hit_beats_cold_run():
    """A re-POSTed study is >= 5x faster than the run that computed it.

    Both requests travel the same path — HTTP submit, job-status polling,
    result fetch — so the comparison isolates exactly what the store
    removes: the Monte-Carlo study itself.
    """
    server = ServeServer(JobManager(), port=0).start()
    try:
        client = ServeClient(port=server.port)
        cold_s, cold_payload, cold_job = _request(client)
        warm_s, warm_payload, warm_job = _request(client)
    finally:
        server.stop()
    speedup = cold_s / warm_s

    # Correctness before speed: the warm request must be a store hit that
    # serves the cold run's bytes verbatim.
    assert not cold_job["store_hit"]
    assert warm_job["store_hit"], "second request did not hit the result store"
    assert warm_payload == cold_payload, "store-hit bytes diverged from the cold run"

    emit_result(
        "serve_cache",
        [
            {
                "samples": STUDY_DOC["montecarlo"]["samples"],
                "grid_points": len(STUDY_DOC["axes"]["temperature"]),
                "result_bytes": len(cold_payload),
                "cold_s": cold_s,
                "warm_s": warm_s,
                "speedup_x": speedup,
            }
        ],
        title="Serving layer: warm store-hit request vs cold run",
        workers=1,
        backend="thread",
    )
    emit_timing(
        "serve_cache",
        wall_times_s={"cold_request": cold_s, "warm_request": warm_s},
        speedups={"warm_vs_cold": speedup},
        extra={
            "samples": STUDY_DOC["montecarlo"]["samples"],
            "grid_points": len(STUDY_DOC["axes"]["temperature"]),
            "result_bytes": len(cold_payload),
            "required_speedup": REQUIRED_SPEEDUP,
        },
        workers=1,
        backend="thread",
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm store-hit request is only {speedup:.1f}x faster "
        f"(cold {cold_s:.3f} s vs warm {warm_s:.3f} s); the acceptance "
        f"bar is {REQUIRED_SPEEDUP:.0f}x"
    )
