"""E4 — duty-cycle-driven optimization-technique selection.

Quantifies the methodology claim of Section II: using temporal information
(duty cycles) changes which techniques are selected and improves the energy
return of the optimization step.  Includes the ablation of the duty-cycle
threshold called out in DESIGN.md.
"""

from __future__ import annotations

from benchmarks.conftest import emit_result
from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator
from repro.optimization.apply import apply_assignments
from repro.optimization.selection import SelectionPolicy, select_techniques

POINT = OperatingPoint(speed_kmh=60.0)

#: Working condition of the ablation: a warm in-tyre environment, where the
#: leakage of the resting blocks is a visible share of the wheel-round energy
#: and the value of the duty-cycle information shows clearly.
HOT_POINT = OperatingPoint(speed_kmh=60.0, temperature_c=85.0)


def test_technique_selection_and_application(benchmark, node, database):
    """Time the select + apply + re-estimate loop and emit the decisions."""
    evaluator = EnergyEvaluator(node, database)
    duty = evaluator.duty_cycles(POINT)

    def optimize():
        assignments = select_techniques(duty, database=database)
        return apply_assignments(node, database, assignments, point=POINT)

    outcome = benchmark(optimize)

    rows = outcome.as_rows()
    emit_result(
        "optimization_assignments",
        rows,
        title=(
            "Technique selection — energy "
            f"{outcome.energy_before_j * 1e6:.1f} -> {outcome.energy_after_j * 1e6:.1f} uJ/rev "
            f"({outcome.saving_fraction * 100.0:.1f}% saving)"
        ),
    )
    assert outcome.saving_fraction > 0.05


def test_duty_cycle_awareness_ablation(benchmark, node, database):
    """Ablation: dynamic-only optimization vs the duty-cycle-aware policy.

    Without the temporal information the policy would only chase dynamic
    power (the naive reading of the power figures); the paper argues the
    short-duty-cycle blocks also deserve static optimization since their idle
    time is significant.  The comparison is made at a warm in-tyre
    temperature, which is where the leakage of the idle blocks actually
    matters — at a bench-top 25 degC the two policies are nearly equivalent.
    """
    evaluator = EnergyEvaluator(node, database)
    duty = evaluator.duty_cycles(HOT_POINT)
    aware = SelectionPolicy()

    def run_both():
        # "Dynamic only": the same policy but with no block allowed to be
        # power gated — i.e. the temporal information is ignored and only the
        # dynamic techniques survive.
        naive = apply_assignments(
            node,
            database,
            select_techniques(
                duty, policy=aware, gateable_blocks=frozenset(), database=database
            ),
            point=HOT_POINT,
        )
        informed = apply_assignments(
            node,
            database,
            select_techniques(duty, policy=aware, database=database),
            point=HOT_POINT,
        )
        return naive, informed

    naive, informed = benchmark(run_both)

    rows = [
        {
            "policy": "dynamic-only (no temporal info)",
            "techniques": len(naive.assignments),
            "energy_after_uj": naive.energy_after_j * 1e6,
            "saving_pct": naive.saving_fraction * 100.0,
        },
        {
            "policy": "duty-cycle aware (paper)",
            "techniques": len(informed.assignments),
            "energy_after_uj": informed.energy_after_j * 1e6,
            "saving_pct": informed.saving_fraction * 100.0,
        },
    ]
    emit_result(
        "optimization_ablation",
        rows,
        title="Ablation — value of the duty-cycle information in technique selection",
    )
    assert informed.energy_after_j < naive.energy_after_j


def test_selection_threshold_sweep(benchmark, node, database):
    """Ablation: sweep the short-duty-cycle threshold of the selection policy."""
    evaluator = EnergyEvaluator(node, database)
    duty = evaluator.duty_cycles(POINT)
    thresholds = (0.0, 0.02, 0.05, 0.10, 0.25, 0.50)

    def sweep():
        results = []
        for threshold in thresholds:
            policy = SelectionPolicy(
                short_duty_cycle=threshold,
                aggressive_duty_cycle=min(0.02, threshold),
            )
            outcome = apply_assignments(
                node,
                database,
                select_techniques(duty, policy=policy, database=database),
                point=POINT,
            )
            results.append((threshold, outcome))
        return results

    results = benchmark(sweep)

    rows = [
        {
            "short_duty_cycle_threshold": threshold,
            "techniques": len(outcome.assignments),
            "saving_pct": outcome.saving_fraction * 100.0,
        }
        for threshold, outcome in results
    ]
    emit_result(
        "optimization_threshold_sweep",
        rows,
        title="Ablation — short-duty-cycle threshold vs optimization return",
    )
    savings = [outcome.saving_fraction for _, outcome in results]
    # Every setting of the threshold still yields a net saving; the sweep's
    # purpose is to show where the return peaks (gating long-duty-cycle
    # blocks pays the wake-up overhead without enough sleep time to recoup
    # it, so the curve is not monotone in the threshold).
    assert all(saving > 0.0 for saving in savings)
    assert max(savings) >= savings[0]
