"""E5 — long-window emulation and operating-window identification.

The last step of the paper's flow: play a cruising-speed profile against the
node + scavenger + storage and identify when the monitoring system can be
active.  Includes the storage-element ablation called out in DESIGN.md.
"""

from __future__ import annotations

from benchmarks.conftest import emit_result
from repro.core.emulator import NodeEmulator
from repro.core.operating_window import find_operating_windows, summarize_windows
from repro.scavenger import supercapacitor, thin_film_battery
from repro.vehicle.drive_cycle import highway_cycle, nedc_like_cycle, urban_cycle


def _coverage_row(label, result):
    windows = find_operating_windows(result)
    summary = summarize_windows(windows, result.duration_s)
    return {
        "scenario": label,
        "duration_s": result.duration_s,
        "revolutions": result.revolutions,
        "revolution_coverage_pct": result.revolution_coverage * 100.0,
        "moving_active_pct": result.moving_active_fraction * 100.0,
        "operating_windows": summary.window_count,
        "longest_window_s": summary.longest_s,
        "brownouts": result.brownout_events,
    }


def test_operating_windows_across_drive_cycles(benchmark, node, database, scavenger):
    """Emulate urban, NEDC-like and highway cycles and report the coverage."""
    cycles = {
        "urban": urban_cycle(repetitions=4),
        "nedc-like": nedc_like_cycle(),
        "highway": highway_cycle(),
    }

    def run_all():
        results = {}
        for label, cycle in cycles.items():
            emulator = NodeEmulator(
                node, database, scavenger, supercapacitor(initial_fraction=0.2)
            )
            results[label] = emulator.emulate(cycle)
        return results

    results = benchmark(run_all)

    rows = [_coverage_row(label, result) for label, result in results.items()]
    emit_result(
        "operating_windows_cycles",
        rows,
        title="Operating windows — coverage per drive cycle (baseline node, piezo scavenger)",
    )
    # Highway (fast) must give better coverage than urban (slow, stop-and-go).
    coverage = {row["scenario"]: row["moving_active_pct"] for row in rows}
    assert coverage["highway"] >= coverage["urban"]


def test_operating_windows_storage_ablation(benchmark, node, database, scavenger):
    """Ablation: supercapacitor vs thin-film battery vs no-buffer storage."""
    cycle = nedc_like_cycle()
    storages = {
        "tiny buffer (50 mJ)": lambda: supercapacitor(capacity_j=0.05, initial_fraction=0.2),
        "supercapacitor (250 mJ)": lambda: supercapacitor(initial_fraction=0.2),
        "thin-film battery (2.5 J)": lambda: thin_film_battery(initial_fraction=0.2),
    }

    def run_all():
        results = {}
        for label, factory in storages.items():
            emulator = NodeEmulator(node, database, scavenger, factory())
            results[label] = emulator.emulate(cycle)
        return results

    results = benchmark(run_all)

    rows = [_coverage_row(label, result) for label, result in results.items()]
    emit_result(
        "operating_windows_storage_ablation",
        rows,
        title="Ablation — storage element vs operating-window coverage (NEDC-like cycle)",
    )
    coverage = [row["moving_active_pct"] for row in rows]
    # Larger storage can only help (monotone non-decreasing coverage).
    assert coverage[0] <= coverage[-1] + 1e-9


def test_operating_windows_architecture_comparison(
    benchmark, node, optimized, legacy, database, scavenger
):
    """Coverage of the three reference architectures on the same urban cycle."""
    cycle = urban_cycle(repetitions=4)

    def run_all():
        results = {}
        for candidate in (legacy, optimized, node):
            emulator = NodeEmulator(
                candidate, database, scavenger, supercapacitor(initial_fraction=0.2)
            )
            results[candidate.name] = emulator.emulate(cycle)
        return results

    results = benchmark(run_all)

    rows = [_coverage_row(label, result) for label, result in results.items()]
    emit_result(
        "operating_windows_architectures",
        rows,
        title="Operating windows — architecture comparison on the urban cycle",
    )
    coverage = {row["scenario"]: row["moving_active_pct"] for row in rows}
    assert coverage["legacy-tpms"] >= coverage["baseline"]
    assert coverage["optimized"] >= coverage["baseline"]
