"""Bin-shared fleet emulation vs the naive per-vehicle ``emulate()`` loop.

The fleet runner's claim: a population of vehicles shares compiled power
tables per (architecture, workload, database) group, shares materialized
drive cycles per (cycle, speed-scale) cohort, and routes the union of
quantized (speed, temperature, phase-pattern) energy bins through ONE
cross-vehicle sweep before emulation — so each vehicle reduces to pure
array work (harvest sweep + trajectory kernel) instead of a full cold
``NodeEmulator.emulate()``.

This benchmark measures exactly that replacement on a 200-vehicle fleet
(log-normal speed scales, correlated ambient temperatures, Gaussian
scavenger/storage tolerances — the default population) and *asserts*:

* >= 5x throughput of the bin-shared fleet runner over the naive loop that
  builds one emulator per vehicle and calls ``emulate()`` (what a user
  would write without the fleet subsystem);
* bitwise-identical per-vehicle summary figures from both paths (the fleet
  aggregate rests on the emulator's byte-identity contracts).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit_result, emit_timing
from repro.core.emulator import NodeEmulator
from repro.fleet import FleetSpec, FleetRunner
from repro.scavenger.storage import scaled_storage
from repro.scenario import ScenarioSpec

#: Local headroom is comfortably above the 5x acceptance bar (~7x measured);
#: shared CI runners are noisy, so workflows may lower the enforced floor via
#: the environment while the measured number is still reported.
REQUIRED_SPEEDUP = float(os.environ.get("FLEET_THROUGHPUT_FLOOR", "5.0"))

VEHICLES = 200


def _bench_fleet() -> FleetSpec:
    base = ScenarioSpec(
        name="bench",
        drive_cycle={"name": "urban", "params": {"repetitions": 2}},
    )
    return FleetSpec.from_base(base, vehicles=VEHICLES, seed=11)


def test_fleet_beats_naive_per_vehicle_loop():
    """The shared-engine fleet run is >= 5x faster than per-vehicle emulate().

    Both variants compute the same 200 vehicles (identical materialization —
    the population is a pure function of the fleet document).  The naive
    loop pays per vehicle what the fleet path shares: an evaluator (and
    compiled-table) build, the drive-cycle walk and bin classification, and
    the revolution-energy bin evaluation.
    """
    fleet = _bench_fleet()
    vehicles = fleet.materialize()

    # Naive baseline: one fresh emulator per vehicle, default emulate().
    start = time.perf_counter()
    naive_summaries = []
    for vehicle in vehicles:
        spec = vehicle.scenario
        emulator = NodeEmulator(
            spec.build_node(),
            spec.build_database(),
            spec.build_scavenger(),
            scaled_storage(spec.build_storage(), vehicle.storage_scale),
            base_point=spec.operating_point(),
        )
        cycle = spec.build_drive_cycle().scaled(vehicle.speed_scale)
        naive_summaries.append(emulator.emulate(cycle).summary())
    naive_s = time.perf_counter() - start

    # Fleet path: shared evaluator group, cohort cycle tables, one
    # cross-vehicle bin sweep, per-vehicle trajectory kernels.  Sequential
    # (workers=1) so the comparison is CPU-for-CPU, not parallelism.
    start = time.perf_counter()
    result = FleetRunner(fleet).run()
    fleet_s = time.perf_counter() - start
    speedup = naive_s / fleet_s

    metadata = result.metadata
    emit_result(
        "fleet_throughput",
        [
            {
                "vehicles": VEHICLES,
                "cohorts": metadata["cohorts"],
                "shared_energy_bins": metadata["shared_energy_bins"],
                "naive_s": naive_s,
                "fleet_s": fleet_s,
                "speedup_x": speedup,
                "naive_vehicles_per_s": VEHICLES / naive_s,
                "fleet_vehicles_per_s": VEHICLES / fleet_s,
            }
        ],
        title="Fleet emulation: bin-shared runner vs naive per-vehicle loop",
        workers=1,
        backend="thread",
    )
    emit_timing(
        "fleet_throughput",
        wall_times_s={"naive_loop": naive_s, "fleet_runner": fleet_s},
        speedups={"fleet_vs_naive": speedup},
        extra={
            "vehicles": VEHICLES,
            "cohorts": metadata["cohorts"],
            "groups": metadata["groups"],
            "shared_energy_bins": metadata["shared_energy_bins"],
            "required_speedup": REQUIRED_SPEEDUP,
        },
        workers=1,
        backend="thread",
    )

    # Correctness before speed: the fleet rows must be the naive rows, bit
    # for bit (same key subset — the fleet row wraps the summary figures).
    assert len(result.vehicle_rows) == len(naive_summaries)
    for row, summary in zip(result.vehicle_rows, naive_summaries):
        for key, value in summary.items():
            assert row[key] == value, (
                f"fleet row diverged from naive emulate() on {key!r}: "
                f"{row[key]!r} != {value!r}"
            )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"bin-shared fleet emulation is only {speedup:.1f}x faster "
        f"(naive {naive_s:.2f} s vs fleet {fleet_s:.2f} s for {VEHICLES} "
        f"vehicles); the acceptance bar is {REQUIRED_SPEEDUP:.0f}x"
    )
