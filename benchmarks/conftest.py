"""Shared fixtures and result-emission helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or a methodology
claim from the text), times it with pytest-benchmark, prints the resulting
rows/series, and writes them to ``benchmarks/results/`` so they can be
inspected or plotted after the run.

Machine-readable trajectory: alongside each ``<name>.csv`` table the harness
writes ``<name>.json`` (the same rows plus an environment stamp) and — for
benchmarks that call :func:`emit_timing` — ``<name>.timing.json`` with the
measured wall times and speedup factors.  A session-level
``bench_wall_times.json`` records the wall time of every benchmark test that
ran, so the perf trajectory can be tracked across commits from CI artifacts
without parsing pytest output.

Every JSON artifact is stamped with the python/numpy versions, the platform
and the CPU count (plus worker/backend counts where the benchmark runs a
pool) — without the stamp, a wall-time trajectory across PRs is
uninterpretable once the interpreter, numpy build or runner hardware moves
underneath it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.blocks import baseline_node, legacy_tpms_node, optimized_node
from repro.power import reference_power_database
from repro.reporting.export import json_ready, rows_to_csv
from repro.reporting.tables import render_table

# Single-sourced from the run-package module so benchmark artifacts and run
# packages carry the exact same environment stamp (re-exported for benches).
from repro.runpkg import environment_stamp  # noqa: F401
from repro.scavenger import PiezoelectricScavenger, supercapacitor

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-test wall times collected over the session (nodeid -> seconds).
_SESSION_WALL_TIMES: dict[str, float] = {}


def emit_result(
    name: str,
    rows: list[dict[str, object]],
    title: str,
    columns=None,
    workers: int | None = None,
    backend: str | None = None,
) -> None:
    """Print a result table and persist it as CSV + JSON under benchmarks/results/.

    The JSON document wraps the rows with the environment stamp
    (``{"environment": ..., "rows": [...]}``); the CSV twin keeps the bare
    table for spreadsheet use.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    rows_to_csv(rows, RESULTS_DIR / f"{name}.csv")
    payload = {
        "environment": environment_stamp(workers=workers, backend=backend),
        "rows": json_ready(rows),
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n", encoding="utf-8"
    )
    print()
    print(render_table(rows, columns=columns, title=title))


def emit_timing(
    name: str,
    wall_times_s: dict[str, float],
    speedups: dict[str, float] | None = None,
    extra: dict[str, object] | None = None,
    workers: int | None = None,
    backend: str | None = None,
) -> None:
    """Persist a benchmark's wall times and speedup factors as JSON.

    Args:
        name: benchmark name; the payload lands in ``<name>.timing.json``.
        wall_times_s: measured wall times per labelled variant (seconds).
        speedups: speedup factors per labelled comparison (dimensionless).
        extra: any further machine-readable context (workload sizes, floors).
        workers: pool width used by the benchmark, when it ran one.
        backend: pool backend used by the benchmark, when it ran one.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload: dict[str, object] = {
        "bench": name,
        "environment": environment_stamp(workers=workers, backend=backend),
        "wall_times_s": dict(wall_times_s),
        "speedups": dict(speedups or {}),
    }
    if extra:
        payload["extra"] = dict(extra)
    target = RESULTS_DIR / f"{name}.timing.json"
    # Strict JSON throughout: a degenerate speedup (zero wall time, NaN
    # placeholder) must become null, not an unparsable Infinity literal.
    target.write_text(
        json.dumps(json_ready(payload), indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )


def pytest_runtest_logreport(report) -> None:
    """Collect each benchmark test's call-phase wall time."""
    if report.when == "call" and report.passed:
        _SESSION_WALL_TIMES[report.nodeid] = report.duration


def pytest_sessionfinish(session) -> None:
    """Merge this session's per-bench wall times into one JSON document.

    CI runs the benchmark files as separate pytest invocations, so the
    document is merged with (not overwritten by) previous sessions —
    re-running a bench refreshes its entry, and the uploaded artifact keeps
    every benchmark's wall time.
    """
    if not _SESSION_WALL_TIMES:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / "bench_wall_times.json"
    wall_times: dict[str, float] = {}
    if target.exists():
        try:
            wall_times = dict(
                json.loads(target.read_text(encoding="utf-8"))["wall_times_s"]
            )
        except (ValueError, KeyError, TypeError):
            wall_times = {}
    wall_times.update(_SESSION_WALL_TIMES)
    target.write_text(
        json.dumps(
            {"environment": environment_stamp(), "wall_times_s": wall_times},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session")
def database():
    """Reference power characterization (shared across benchmarks)."""
    return reference_power_database()


@pytest.fixture(scope="session")
def node():
    """The baseline Cyber Tyre style architecture."""
    return baseline_node()


@pytest.fixture(scope="session")
def optimized():
    """The architecture-level optimized node."""
    return optimized_node()


@pytest.fixture(scope="session")
def legacy():
    """The legacy pressure/temperature TPMS node."""
    return legacy_tpms_node()


@pytest.fixture(scope="session")
def scavenger():
    """The default piezoelectric scavenger."""
    return PiezoelectricScavenger()


@pytest.fixture
def storage():
    """A fresh supercapacitor per benchmark (the emulator mutates it)."""
    return supercapacitor()
