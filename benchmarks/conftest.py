"""Shared fixtures and result-emission helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or a methodology
claim from the text), times it with pytest-benchmark, prints the resulting
rows/series, and writes them to ``benchmarks/results/`` so they can be
inspected or plotted after the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.blocks import baseline_node, legacy_tpms_node, optimized_node
from repro.power import reference_power_database
from repro.reporting.export import rows_to_csv
from repro.reporting.tables import render_table
from repro.scavenger import PiezoelectricScavenger, supercapacitor

RESULTS_DIR = Path(__file__).parent / "results"


def emit_result(name: str, rows: list[dict[str, object]], title: str, columns=None) -> None:
    """Print a result table and persist it as CSV under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rows_to_csv(rows, RESULTS_DIR / f"{name}.csv")
    print()
    print(render_table(rows, columns=columns, title=title))


@pytest.fixture(scope="session")
def database():
    """Reference power characterization (shared across benchmarks)."""
    return reference_power_database()


@pytest.fixture(scope="session")
def node():
    """The baseline Cyber Tyre style architecture."""
    return baseline_node()


@pytest.fixture(scope="session")
def optimized():
    """The architecture-level optimized node."""
    return optimized_node()


@pytest.fixture(scope="session")
def legacy():
    """The legacy pressure/temperature TPMS node."""
    return legacy_tpms_node()


@pytest.fixture(scope="session")
def scavenger():
    """The default piezoelectric scavenger."""
    return PiezoelectricScavenger()


@pytest.fixture
def storage():
    """A fresh supercapacitor per benchmark (the emulator mutates it)."""
    return supercapacitor()
