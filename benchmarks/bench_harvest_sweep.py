"""Harvest-side sweep vs the scalar energy-curve loop.

The supply half of the energy balance used to evaluate one revolution at a
time: ``energy_curve`` was literally a Python list comprehension over scalar
``energy_per_revolution_j`` calls.  Every scavenger model now implements the
vectorized ``energy_sweep_j`` contract (the harvest-side mirror of the
compiled power table), and every sweep consumer — balance curves,
break-even refinement, sizing, the emulator's per-round harvest — rides it.

This benchmark measures exactly that replacement on a 1000-point speed sweep
and *asserts*:

* >= 5x speedup of one ``energy_sweep_j`` call versus the scalar
  per-revolution loop, for both a bare and a conditioned scavenger;
* 1e-9 relative equivalence of the two paths (the scalar method stays the
  authoritative reference).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit_result, emit_timing
from repro.scavenger.conditioning import conditioned
from repro.scavenger.piezoelectric import PiezoelectricScavenger

#: Local headroom is comfortably above the 5x acceptance bar; shared CI
#: runners are noisy, so workflows may lower the enforced floor via the
#: environment while the measured number is still reported.
REQUIRED_SPEEDUP = float(os.environ.get("HARVEST_SWEEP_FLOOR", "5.0"))

#: The acceptance workload: a 1000-point sweep across the Fig. 2 speed range.
SWEEP_POINTS = 1000

#: Timing repeats; the best of each variant is compared (noise rejection).
REPEATS = 5


def _best_of(callable_, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_harvest_sweep_beats_scalar_energy_curve():
    """One energy_sweep_j call >= 5x faster than the scalar per-point loop."""
    speeds = np.linspace(5.0, 250.0, SWEEP_POINTS)
    rows = []
    wall_times: dict[str, float] = {}
    speedups: dict[str, float] = {}
    for label, scavenger in (
        ("piezoelectric", PiezoelectricScavenger()),
        ("piezoelectric+conditioning", conditioned(PiezoelectricScavenger())),
    ):
        scalar_s, scalar_values = _best_of(
            lambda s=scavenger: np.array(
                [s.energy_per_revolution_j(float(v)) for v in speeds]
            )
        )
        sweep_s, sweep_values = _best_of(lambda s=scavenger: s.energy_sweep_j(speeds))
        np.testing.assert_allclose(sweep_values, scalar_values, rtol=1e-9, atol=0.0)
        speedup = scalar_s / sweep_s
        rows.append(
            {
                "scavenger": label,
                "points": SWEEP_POINTS,
                "scalar_ms": scalar_s * 1e3,
                "sweep_ms": sweep_s * 1e3,
                "speedup_x": speedup,
            }
        )
        wall_times[f"scalar_{label}"] = scalar_s
        wall_times[f"sweep_{label}"] = sweep_s
        speedups[f"sweep_vs_scalar_{label}"] = speedup

    emit_result(
        "harvest_sweep",
        rows,
        title="Harvest-side sweep: one energy_sweep_j call vs the scalar loop",
    )
    emit_timing(
        "harvest_sweep",
        wall_times_s=wall_times,
        speedups=speedups,
        extra={"points": SWEEP_POINTS, "required_speedup": REQUIRED_SPEEDUP},
    )
    for row in rows:
        assert row["speedup_x"] >= REQUIRED_SPEEDUP, (
            f"{row['scavenger']}: the sweep is only {row['speedup_x']:.1f}x faster "
            f"(scalar {row['scalar_ms']:.2f} ms vs sweep {row['sweep_ms']:.3f} ms); "
            f"the acceptance bar is {REQUIRED_SPEEDUP:.0f}x"
        )


def test_emulator_harvest_rides_the_sweep():
    """The emulator's per-round harvest comes from one vectorized call.

    Sanity companion to the timing assertion: a long constant-speed cruise
    must spend no scalar scavenger calls inside ``emulate()``.
    """
    from repro.blocks import baseline_node
    from repro.core.emulator import NodeEmulator
    from repro.power import reference_power_database
    from repro.scavenger.storage import supercapacitor
    from repro.vehicle.drive_cycle import constant_cruise

    calls = []
    original = PiezoelectricScavenger.energy_per_revolution_j

    class Counting(PiezoelectricScavenger):
        def energy_per_revolution_j(self, speed_kmh: float) -> float:
            calls.append(speed_kmh)
            return original(self, speed_kmh)

    emulator = NodeEmulator(
        baseline_node(),
        reference_power_database(),
        Counting(),
        supercapacitor(),
    )
    result = emulator.emulate(constant_cruise(90.0, duration_s=120.0))
    assert result.revolutions > 1000
    assert calls == [], "emulate() fell back to scalar per-revolution harvest calls"
