"""E6 — working-condition sweeps of the dynamic spreadsheet.

The paper's tools must expose the dependence of the energy figures on
temperature, supply voltage and process variation.  This benchmark sweeps all
three and reports the energy per wheel round across the spreadsheet's
condition space.
"""

from __future__ import annotations

from benchmarks.conftest import emit_result
from repro.conditions.operating_point import OperatingPoint
from repro.core.spreadsheet import Spreadsheet

TEMPERATURES_C = (-40.0, -20.0, 0.0, 25.0, 50.0, 85.0, 105.0, 125.0)
SUPPLIES_V = (1.0, 1.1, 1.2, 1.3, 1.4)
SPEEDS_KMH = (20.0, 40.0, 60.0, 90.0, 120.0, 160.0, 200.0)


def _sweep_rows(rows):
    return [
        {
            "condition": row.condition,
            "value": row.value,
            "energy_per_rev_uj": row.energy_per_rev_j * 1e6,
            "average_power_uw": row.average_power_w * 1e6,
            "static_share_pct": row.static_fraction * 100.0,
        }
        for row in rows
    ]


def test_temperature_sweep(benchmark, node, database):
    """Energy per wheel round from -40 to +125 degC (leakage dependence)."""
    sheet = Spreadsheet(node, database)

    rows = benchmark(sheet.temperature_sweep, TEMPERATURES_C)

    emit_result(
        "condition_sweep_temperature",
        _sweep_rows(rows),
        title="Spreadsheet sweep — junction temperature vs energy per wheel round (60 km/h)",
    )
    energies = [row.energy_per_rev_j for row in rows]
    assert energies == sorted(energies)


def test_supply_sweep(benchmark, node, database):
    """Energy per wheel round across core supply voltages (dynamic dependence)."""
    sheet = Spreadsheet(node, database)

    rows = benchmark(sheet.supply_sweep, SUPPLIES_V)

    emit_result(
        "condition_sweep_supply",
        _sweep_rows(rows),
        title="Spreadsheet sweep — core supply voltage vs energy per wheel round (60 km/h)",
    )
    energies = [row.energy_per_rev_j for row in rows]
    assert energies == sorted(energies)


def test_speed_sweep(benchmark, node, database):
    """Energy per wheel round and average power across cruising speeds."""
    sheet = Spreadsheet(node, database)

    rows = benchmark(sheet.speed_sweep, SPEEDS_KMH)

    emit_result(
        "condition_sweep_speed",
        _sweep_rows(rows),
        title="Spreadsheet sweep — cruising speed vs energy per wheel round",
    )
    energies = [row.energy_per_rev_j for row in rows]
    assert energies == sorted(energies, reverse=True)


def test_process_monte_carlo(benchmark, node, database):
    """Monte-Carlo spread of the per-revolution energy across process variation."""
    sheet = Spreadsheet(node, database)

    stats = benchmark(sheet.process_monte_carlo, 128, OperatingPoint(speed_kmh=60.0), 11)

    rows = [
        {"statistic": key, "value": value * 1e6 if key.endswith("_j") else value}
        for key, value in stats.items()
    ]
    emit_result(
        "condition_sweep_process",
        rows,
        title="Spreadsheet sweep — process Monte-Carlo of energy per wheel round (uJ where applicable)",
    )
    assert stats["min_j"] <= stats["mean_j"] <= stats["max_j"]


def test_corner_matrix(benchmark, node, database):
    """Cross product of temperature corners and process corners."""
    from repro.conditions.process import ProcessCorner, ProcessVariation
    from repro.core.evaluator import EnergyEvaluator

    evaluator = EnergyEvaluator(node, database)

    def sweep():
        results = []
        for temperature in (-40.0, 25.0, 125.0):
            for corner in ProcessCorner:
                point = OperatingPoint(
                    speed_kmh=60.0,
                    temperature_c=temperature,
                    process=ProcessVariation(corner=corner),
                )
                energy = evaluator.energy_per_revolution_j(point)
                results.append((temperature, corner.name, energy))
        return results

    results = benchmark(sweep)

    rows = [
        {
            "temperature_c": temperature,
            "process_corner": corner,
            "energy_per_rev_uj": energy * 1e6,
        }
        for temperature, corner, energy in results
    ]
    emit_result(
        "condition_sweep_corner_matrix",
        rows,
        title="Spreadsheet sweep — temperature x process corner matrix (60 km/h)",
    )
    by_key = {(row["temperature_c"], row["process_corner"]): row["energy_per_rev_uj"] for row in rows}
    assert by_key[(125.0, "FAST")] > by_key[(25.0, "TYPICAL")] > by_key[(-40.0, "SLOW")]
